// Fault injection for netsim: a FaultPlan is a declarative schedule of
// link outages, loss/corruption episodes, and port-pressure spikes. The
// FaultInjector arms the plan against a Network by scheduling plain
// simulator events, so a faulty run is driven by the same event loop as
// a clean one and replays bit-identically from (plan, seed).
//
// Conservation contract: every packet a fault removes is accounted in
// LinkFaultCounters (see link.hpp), and every packet a pressure spike
// adds is counted by the injector, so harnesses can assert
//   offered + injected == delivered + queue-dropped + fault-dropped
//                         + buffered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/thread_affinity.hpp"

namespace qv::netsim {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,       ///< pull the cable
    kLinkUp,         ///< plug it back in
    kSetLoss,        ///< set per-packet loss/corruption probability
    kPressureSpike,  ///< inject a burst of packets straight into a port

    // Dataplane fault kinds (src/dataplane/fault.hpp): faults against
    // the sharded run-to-completion dataplane rather than the simulated
    // network. They share the FaultPlan container so one schedule can
    // describe both layers; the netsim FaultInjector ignores them (the
    // dataplane's own injector compiles and arms them).
    kWorkerStall,         ///< wedge a shard worker (no heartbeat) for stall_ns
    kWorkerCrash,         ///< shard worker dies at a burst index
    kDescriptorCorrupt,   ///< poison one packet's descriptor (port, seq)
    kRingDesync,          ///< producer tail index runs ahead of its writes
  };

  /// True for the kinds armed by the dataplane injector, not netsim's.
  static bool is_dataplane(Kind k) {
    return k == Kind::kWorkerStall || k == Kind::kWorkerCrash ||
           k == Kind::kDescriptorCorrupt || k == Kind::kRingDesync;
  }

  Kind kind = Kind::kLinkDown;
  TimeNs at = 0;
  std::size_t link = 0;  ///< index into Network::links()

  // kSetLoss
  double loss_prob = 0.0;
  double corrupt_prob = 0.0;

  // Dataplane kinds (kWorkerStall / kWorkerCrash / kRingDesync fire on
  // a shard's MONOTONIC burst counter — it is never rolled back by a
  // checkpoint restore, so an event fires exactly once per run).
  std::size_t shard = 0;         ///< target shard
  std::uint64_t at_burst = 0;    ///< worker (stall/crash) or producer
                                 ///< (desync) burst index to fire at
  TimeNs stall_ns = 0;           ///< kWorkerStall: wedge duration cap
  std::size_t port = 0;          ///< kDescriptorCorrupt: global port id
  std::uint64_t seq = 0;         ///< kDescriptorCorrupt: packet seq
  std::size_t desync_slots = 0;  ///< kRingDesync: stale slots published

  // kPressureSpike
  int burst_packets = 0;
  std::int32_t packet_bytes = 1500;
  TenantId tenant = kInvalidTenant;
  Rank rank = 0;
  /// Destination host for spike packets. kInvalidNode lets the injector
  /// pick one deterministically from the plan seed.
  NodeId dst = kInvalidNode;
};

/// Knobs for random_fault_plan(): how violent the schedule is.
struct RandomFaultConfig {
  TimeNs start = 0;            ///< no faults before this
  TimeNs end = 0;              ///< every link is back up by this time
  int flaps = 3;               ///< link down/up pairs
  TimeNs min_down = 50'000;    ///< shortest outage (ns)
  TimeNs max_down = 500'000;   ///< longest outage (ns)
  int loss_episodes = 2;       ///< bounded loss-probability windows
  double max_loss = 0.05;      ///< peak loss probability per episode
  TimeNs loss_duration = 300'000;
  int pressure_spikes = 1;
  int spike_packets = 64;
  std::int32_t spike_bytes = 1500;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Seeds every per-link loss RNG (mixed with the link index) and any
  /// choices the injector must make itself.
  std::uint64_t seed = 1;

  // Fluent builders, so tests read as a timeline.
  FaultPlan& link_down(TimeNs at, std::size_t link);
  FaultPlan& link_up(TimeNs at, std::size_t link);
  /// down at `down_at`, back up at `up_at`.
  FaultPlan& flap(std::size_t link, TimeNs down_at, TimeNs up_at);
  FaultPlan& set_loss(TimeNs at, std::size_t link, double loss_prob,
                      double corrupt_prob = 0.0);
  FaultPlan& pressure_spike(TimeNs at, std::size_t link, int packets,
                            std::int32_t packet_bytes, TenantId tenant,
                            Rank rank, NodeId dst = kInvalidNode);

  // Dataplane fault builders (ignored by the netsim injector; compiled
  // by dataplane::FaultSchedule). `at_burst` indexes the target shard's
  // monotonic burst counter, not simulated time.
  FaultPlan& worker_stall(std::size_t shard, std::uint64_t at_burst,
                          TimeNs stall_ns);
  FaultPlan& worker_crash(std::size_t shard, std::uint64_t at_burst);
  FaultPlan& descriptor_corrupt(std::size_t port, std::uint64_t seq);
  FaultPlan& ring_desync(std::size_t shard, std::uint64_t at_burst,
                         std::size_t slots);
};

/// A randomized but fully seeded schedule: `seed` determines every link
/// choice, outage window, and loss probability. All outages and loss
/// episodes end by cfg.end so the network always converges.
FaultPlan random_fault_plan(std::uint64_t seed, std::size_t num_links,
                            const RandomFaultConfig& cfg);

/// Owned by one run: the injector, its Simulator, and its Network all
/// belong to a single sweep cell (one thread) — concurrent cells arm
/// their own injectors (asserted in debug builds via ThreadAffinity).
class FaultInjector {
 public:
  FaultInjector(Simulator& sim, Network& net) : sim_(sim), net_(net) {}

  /// Schedule every event in the plan and seed each link's fault RNG
  /// from mix(plan.seed, link index). Call once, before Simulator::run.
  void arm(const FaultPlan& plan);

  std::uint64_t link_downs() const { return link_downs_; }
  std::uint64_t link_ups() const { return link_ups_; }
  std::uint64_t pressure_injected() const { return pressure_injected_; }
  std::uint64_t pressure_injected_bytes() const {
    return pressure_injected_bytes_;
  }

  /// Counter views for the injector's own tallies plus snapshot gauges
  /// over the network's aggregate fault drops.
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  void apply(const FaultEvent& ev);

  Simulator& sim_;
  Network& net_;
  std::uint64_t injector_seed_ = 0;
  std::uint64_t spike_seq_ = 0;  ///< distinct flow ids across spikes
  std::uint64_t link_downs_ = 0;
  std::uint64_t link_ups_ = 0;
  std::uint64_t pressure_injected_ = 0;
  std::uint64_t pressure_injected_bytes_ = 0;
  [[no_unique_address]] ThreadAffinity affinity_;
};

}  // namespace qv::netsim
