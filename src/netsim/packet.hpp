// Packet: the unit every queue, link, and scheduler operates on.
//
// Packets are small value types copied into and out of queues; no
// payload bytes are simulated, only sizes and metadata. The `rank` field
// follows the PIFO convention of the paper: LOWER rank = HIGHER priority
// (scheduled first).
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace qv {

using FlowId = std::uint64_t;
using NodeId = std::uint32_t;
using TenantId = std::uint32_t;

/// Scheduling rank. Lower is scheduled first (paper Fig. 3 convention).
using Rank = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffff;
inline constexpr TenantId kInvalidTenant = 0xffffffff;
inline constexpr Rank kMaxRank = 0xffffffff;

enum class PacketKind : std::uint8_t {
  kData = 0,
  kAck = 1,  ///< reliability acknowledgement (reliable_source.hpp)
};

struct Packet {
  FlowId flow = 0;
  std::uint32_t seq = 0;  ///< index of this packet within its flow
  PacketKind kind = PacketKind::kData;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t size_bytes = 0;  ///< wire size including headers

  TenantId tenant = kInvalidTenant;
  /// Current scheduling rank. QVISOR's pre-processor rewrites this at
  /// every hop it manages.
  Rank rank = 0;
  /// The tenant-assigned rank label (paper §3.1). Set once at the
  /// source, never modified in the network: each pre-processor derives
  /// `rank` from it, so traversing several QVISOR hops is idempotent.
  Rank original_rank = 0;

  TimeNs created_at = 0;   ///< flow-source emission time
  TimeNs deadline = kTimeMax;  ///< absolute deadline (EDF tenants)

  /// Total flow size and bytes remaining *including this packet* at send
  /// time; used by size-aware rank functions (pFabric/SRPT, LSTF).
  std::int64_t flow_size_bytes = 0;
  std::int64_t remaining_bytes = 0;

  bool last_of_flow = false;
};

}  // namespace qv
