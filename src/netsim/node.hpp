// Nodes: hosts terminate traffic, switches forward it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/packet.hpp"

namespace qv::netsim {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// A packet's last bit arrived at this node.
  virtual void receive(const Packet& p) = 0;

  /// A span of packets whose last bits arrived at the CURRENT
  /// simulated time, in order — the link drain's batch delivery seam.
  /// Distinct arrival instants get distinct calls, so today's drains
  /// deliver singleton spans; nodes that can exploit a whole burst at
  /// once (switch forwarding) override this.
  virtual void receive_burst(std::span<const Packet> batch) {
    for (const Packet& p : batch) receive(p);
  }

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Outgoing links, in port order.
  const std::vector<Link*>& ports() const { return ports_; }
  void add_port(Link* link) { ports_.push_back(link); }

 private:
  NodeId id_;
  std::string name_;
  std::vector<Link*> ports_;
};

/// End host: one uplink; delivers received packets to a sink callback.
class Host final : public Node {
 public:
  using Sink = std::function<void(const Packet&)>;

  using Node::Node;

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Inject a packet into the network through the uplink queue.
  void send(const Packet& p) { ports().front()->transmit(p); }

  void receive(const Packet& p) override {
    if (sink_) sink_(p);
  }

 private:
  Sink sink_;
};

/// Output-queued switch with ECMP over equal-cost next hops.
class Switch final : public Node {
 public:
  using Node::Node;

  void receive(const Packet& p) override;

  /// Install the ECMP port set toward destination `dst` (replaces any
  /// previous entry).
  void set_route(NodeId dst, std::vector<std::uint16_t> out_ports);

  const std::vector<std::uint16_t>& route(NodeId dst) const;

  /// Packets that arrived with no route installed (counted, dropped).
  std::uint64_t unrouted() const { return unrouted_; }

 private:
  // Indexed by destination node id; empty vector = no route.
  std::vector<std::vector<std::uint16_t>> routes_;
  std::uint64_t unrouted_ = 0;
};

/// Flow-consistent ECMP hash: same flow always picks the same path.
std::uint64_t ecmp_hash(FlowId flow, NodeId node);

}  // namespace qv::netsim
