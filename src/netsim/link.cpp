#include "netsim/link.hpp"

#include <cassert>
#include <utility>

namespace qv::netsim {

Link::Link(Simulator& sim, BitsPerSec rate, TimeNs propagation_delay,
           std::unique_ptr<sched::Scheduler> queue, Deliver deliver)
    : sim_(sim), rate_(rate), prop_delay_(propagation_delay),
      queue_(std::move(queue)), deliver_(std::move(deliver)) {
  assert(rate_ > 0);
  assert(queue_ != nullptr);
  assert(deliver_ != nullptr);
}

void Link::account_queue(TimeNs now) {
  backlog_integral_ +=
      static_cast<double>(queue_->buffered_bytes()) *
      static_cast<double>(now - backlog_updated_at_);
  backlog_updated_at_ = now;
}

void Link::transmit(const Packet& p) {
  account_queue(sim_.now());
  if (obs::Tracer* tr = sched_tracer()) {
    // Counter deltas distinguish the three outcomes (acceptance,
    // rejection, eviction of a buffered victim) without touching the
    // scheduler interface.
    const sched::SchedulerCounters& c = queue_->counters();
    const std::uint64_t drops_before = c.dropped;
    queue_->enqueue(p, sim_.now());
    if (c.dropped != drops_before) {
      tr->instant(obs::TraceCategory::kSched, "drop", sim_.now(), trace_tid_,
                  "rank", p.rank);
    } else {
      tr->instant(obs::TraceCategory::kSched, "enqueue", sim_.now(),
                  trace_tid_, "rank", p.rank);
    }
  } else {
    queue_->enqueue(p, sim_.now());
  }
  if (!busy_) start_next();
}

void Link::transmit_burst(std::span<Packet> burst) {
  account_queue(sim_.now());
  if (obs::Tracer* tr = sched_tracer()) {
    const sched::SchedulerCounters& c = queue_->counters();
    const std::uint64_t drops_before = c.dropped;
    const std::size_t accepted = queue_->enqueue_batch(burst, sim_.now());
    tr->instant(obs::TraceCategory::kSched, "enqueue_burst", sim_.now(),
                trace_tid_, "accepted", accepted);
    if (c.dropped != drops_before) {
      tr->instant(obs::TraceCategory::kSched, "drop", sim_.now(), trace_tid_,
                  "count", c.dropped - drops_before);
    }
  } else {
    queue_->enqueue_batch(burst, sim_.now());
  }
  if (!busy_) start_next();
}

void Link::start_next() {
  account_queue(sim_.now());
  auto next = queue_->dequeue(sim_.now());
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  busy_since_ = sim_.now();
  const TimeNs ser = serialization_delay(next->size_bytes, rate_);
  if (obs::Tracer* tr = sched_tracer()) {
    // The dequeued packet occupies the wire for `ser` — a span in
    // SIMULATED time on this port's lane.
    tr->complete(obs::TraceCategory::kSched, "tx", sim_.now(), ser,
                 trace_tid_, "rank", next->rank);
  }
  const Packet pkt = *next;
  // Last bit leaves at now+ser; it arrives prop_delay later.
  sim_.after(ser, [this, pkt, ser] {
    busy_accum_ += ser;
    bytes_transmitted_ += pkt.size_bytes;
    sim_.after(prop_delay_, [this, pkt] { deliver_(pkt); });
    start_next();
  });
}

double Link::utilization(TimeNs now) const {
  if (now <= 0) return 0.0;
  TimeNs busy_time = busy_accum_;
  if (busy_) busy_time += now - busy_since_;
  return static_cast<double>(busy_time) / static_cast<double>(now);
}

double Link::mean_queue_bytes(TimeNs now) const {
  if (now <= 0) return 0.0;
  double integral = backlog_integral_;
  integral += static_cast<double>(queue_->buffered_bytes()) *
              static_cast<double>(now - backlog_updated_at_);
  return integral / static_cast<double>(now);
}

void Link::replace_queue(std::unique_ptr<sched::Scheduler> queue) {
  assert(queue_->empty());
  assert(queue != nullptr);
  queue_ = std::move(queue);
}

}  // namespace qv::netsim
