#include "netsim/link.hpp"

#include <cassert>
#include <utility>

namespace qv::netsim {

Link::Link(Simulator& sim, BitsPerSec rate, TimeNs propagation_delay,
           std::unique_ptr<sched::Scheduler> queue, Deliver deliver)
    : sim_(sim), rate_(rate), prop_delay_(propagation_delay),
      queue_(std::move(queue)), deliver_(std::move(deliver)) {
  assert(rate_ > 0);
  assert(queue_ != nullptr);
  assert(deliver_);
}

Link::~Link() {
  if (drain_timer_ != 0) sim_.destroy_timer(drain_timer_);
}

void Link::account_queue(TimeNs now) {
  backlog_integral_ +=
      static_cast<double>(queue_->buffered_bytes()) *
      static_cast<double>(now - backlog_updated_at_);
  backlog_updated_at_ = now;
}

void Link::transmit(const Packet& p) {
  if (!up_) {
    ++faults_.offered_while_down;
    faults_.offered_while_down_bytes +=
        static_cast<std::uint64_t>(p.size_bytes);
    return;
  }
  account_queue(sim_.now());
  if (obs::Tracer* tr = sched_tracer()) {
    // Counter deltas distinguish the three outcomes (acceptance,
    // rejection, eviction of a buffered victim) without touching the
    // scheduler interface.
    const sched::SchedulerCounters& c = queue_->counters();
    const std::uint64_t drops_before = c.dropped;
    queue_->enqueue(p, sim_.now());
    if (c.dropped != drops_before) {
      tr->instant(obs::TraceCategory::kSched, "drop", sim_.now(), trace_tid_,
                  "rank", p.rank);
    } else {
      tr->instant(obs::TraceCategory::kSched, "enqueue", sim_.now(),
                  trace_tid_, "rank", p.rank);
    }
  } else {
    queue_->enqueue(p, sim_.now());
  }
  if (!busy_) start_next();
}

void Link::transmit_burst(std::span<Packet> burst) {
  if (!up_) {
    faults_.offered_while_down += burst.size();
    for (const Packet& p : burst) {
      faults_.offered_while_down_bytes +=
          static_cast<std::uint64_t>(p.size_bytes);
    }
    return;
  }
  account_queue(sim_.now());
  if (obs::Tracer* tr = sched_tracer()) {
    const sched::SchedulerCounters& c = queue_->counters();
    const std::uint64_t drops_before = c.dropped;
    const std::size_t accepted = queue_->enqueue_batch(burst, sim_.now());
    tr->instant(obs::TraceCategory::kSched, "enqueue_burst", sim_.now(),
                trace_tid_, "accepted", accepted);
    if (c.dropped != drops_before) {
      tr->instant(obs::TraceCategory::kSched, "drop", sim_.now(), trace_tid_,
                  "count", c.dropped - drops_before);
    }
  } else {
    queue_->enqueue_batch(burst, sim_.now());
  }
  if (!busy_) start_next();
}

void Link::start_next() {
  if (sim_.coalesced_drains()) {
    start_coalesced();
  } else {
    start_per_event();
  }
}

void Link::start_per_event() {
  if (!up_) {
    busy_ = false;
    return;
  }
  account_queue(sim_.now());
  auto next = queue_->dequeue(sim_.now());
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  busy_since_ = sim_.now();
  const TimeNs ser = serialization_delay(next->size_bytes, rate_);
  if (obs::Tracer* tr = sched_tracer()) {
    // The dequeued packet occupies the wire for `ser` — a span in
    // SIMULATED time on this port's lane.
    tr->complete(obs::TraceCategory::kSched, "tx", sim_.now(), ser,
                 trace_tid_, "rank", next->rank);
  }
  const Packet pkt = *next;
  // Last bit leaves at now+ser; it arrives prop_delay later. Both
  // continuations capture the down-epoch they started under: if the
  // link went down in between, the bits on the wire are gone.
  const std::uint64_t epoch = down_epoch_;
  sim_.after(ser, [this, pkt, ser, epoch] {
    if (epoch != down_epoch_) {
      // Cable pulled mid-serialization. set_up(false) already closed
      // the busy interval; the packet never made it onto the far wire.
      ++faults_.inflight_dropped;
      faults_.inflight_dropped_bytes +=
          static_cast<std::uint64_t>(pkt.size_bytes);
      return;
    }
    busy_accum_ += ser;
    bytes_transmitted_ += pkt.size_bytes;
    if (loss_prob_ > 0.0 || corrupt_prob_ > 0.0) {
      // Loss/corruption is decided once the packet has consumed its
      // wire time, from the per-link fault RNG (replay-deterministic).
      if (fault_rng_.next_bool(loss_prob_)) {
        ++faults_.lost;
        faults_.lost_bytes += static_cast<std::uint64_t>(pkt.size_bytes);
        start_per_event();
        return;
      }
      if (fault_rng_.next_bool(corrupt_prob_)) {
        // The receiver discards a corrupted frame; on the wire it is
        // indistinguishable from loss except for the counter.
        ++faults_.corrupted;
        faults_.corrupted_bytes +=
            static_cast<std::uint64_t>(pkt.size_bytes);
        start_per_event();
        return;
      }
    }
    sim_.after(prop_delay_, [this, pkt, epoch] {
      if (epoch != down_epoch_) {
        ++faults_.inflight_dropped;
        faults_.inflight_dropped_bytes +=
            static_cast<std::uint64_t>(pkt.size_bytes);
        return;
      }
      deliver_(std::span<const Packet>(&pkt, 1));
    });
    start_per_event();
  });
}

// --- coalesced drain --------------------------------------------------
//
// Correctness frame: every sub-step below has a reference twin — the
// event the per-event path would have scheduled, at the same timestamp
// and with the SAME schedule sequence number (reserved at the exact
// moment the reference would have called schedule). A sub-step is
// executed either as a real queue event (materialized with its
// reserved sequence number, so the queue's (at, seq) order settles
// every tie exactly as the reference) or replayed inline — only while
// it falls STRICTLY before every queued event and within the run
// deadline, with the clock advanced to its timestamp first. Either
// way the handler bodies below run at the same logical time, in the
// same global order, reading the same link state (epochs, loss
// probabilities, RNG cursor) as the reference — so flows.csv and
// metrics.json come out byte-identical.

void Link::push_step(SubStep&& s) {
  // New sub-steps are almost always the latest; insertion-sort from
  // the back keeps the vector (at, seq)-ordered. The pending set is
  // tiny: one serialization finish per chain plus in-flight arrivals.
  auto it = steps_.end();
  while (it != steps_.begin()) {
    auto prev = it - 1;
    if (prev->at < s.at || (prev->at == s.at && prev->seq < s.seq)) break;
    --it;
  }
  steps_.insert(it, std::move(s));
}

void Link::begin_serialization(Packet&& pkt, TimeNs now) {
  busy_ = true;
  busy_since_ = now;
  const TimeNs ser = serialization_delay(pkt.size_bytes, rate_);
  if (obs::Tracer* tr = sched_tracer()) {
    tr->complete(obs::TraceCategory::kSched, "tx", now, ser, trace_tid_,
                 "rank", pkt.rank);
  }
  SubStep s;
  s.pkt = std::move(pkt);
  s.at = now + ser;
  s.seq = sim_.reserve_seq();  // the reference's sim_.after(ser, ...)
  s.epoch = down_epoch_;
  s.ser = ser;
  s.kind = SubStep::kSerDone;
  push_step(std::move(s));
  if (!in_drain_) refresh_drain_event();
}

void Link::start_coalesced() {
  if (!up_) {
    busy_ = false;
    return;
  }
  const TimeNs now = sim_.now();
  // Batch-popped packets continue the chain without touching the
  // queue; their pop-time accounting already happened in drain_batch.
  if (popped_head_ < popped_.size()) {
    Packet pkt = std::move(popped_[popped_head_]);
    if (++popped_head_ == popped_.size()) {
      popped_.clear();
      popped_head_ = 0;
    }
    begin_serialization(std::move(pkt), now);
    return;
  }
  account_queue(now);
  if (in_drain_ && queue_->size() > 1) {
    // Whole-backlog batch pop, exact when the total serialization time
    // fits strictly inside the current inline window: every reference
    // pop moment (each packet's wire-start) then precedes the next
    // queued event, and no enqueue can land in between — any enqueue
    // requires some other event to run first, and all of those sit at
    // or beyond the window's end. Only legal from inside a drain
    // dispatch: a transmit()-time caller may keep enqueueing after we
    // return, and those packets must compete for pop order.
    const std::int64_t backlog = queue_->buffered_bytes();
    const TimeNs total_ser = serialization_delay(backlog, rate_);
    if (now + total_ser < sim_.next_event_time() &&
        now + total_ser <= sim_.run_deadline()) {
      drain_batch(now, backlog);
      return;
    }
  }
  auto next = queue_->dequeue(now);
  if (!next) {
    busy_ = false;
    return;
  }
  begin_serialization(std::move(*next), now);
}

void Link::drain_batch(TimeNs now, std::int64_t backlog) {
  const std::size_t n = queue_->size();
  popped_.resize(n);
  const std::size_t got =
      queue_->dequeue_batch(std::span<Packet>(popped_.data(), n), now);
  popped_.resize(got);
  popped_head_ = 0;
  if (got == 0) {
    busy_ = false;
    return;
  }
  // Reference-equivalent backlog accounting: pop j happens at packet
  // j-1's serialization finish, with the not-yet-popped suffix still
  // buffered. The queue is already empty, so integrate arithmetically.
  std::int64_t remaining = backlog - popped_[0].size_bytes;
  TimeNs t = now;
  for (std::size_t j = 1; j < got; ++j) {
    t += serialization_delay(popped_[j - 1].size_bytes, rate_);
    backlog_integral_ += static_cast<double>(remaining) *
                         static_cast<double>(t - backlog_updated_at_);
    backlog_updated_at_ = t;
    remaining -= popped_[j].size_bytes;
  }
  Packet first = std::move(popped_[0]);
  if (got == 1) {
    popped_.clear();
  } else {
    popped_head_ = 1;
  }
  begin_serialization(std::move(first), now);
}

void Link::process_substeps() {
  in_drain_ = true;
  bool first = true;
  while (!steps_.empty()) {
    if (!first) {
      const SubStep& front = steps_.front();
      // Inline only while strictly ahead of every queued event (ties
      // yield: the materialized event's reserved sequence number lets
      // the queue settle the order exactly) and within the deadline.
      if (front.at > sim_.run_deadline()) break;
      if (front.at >= sim_.next_event_time()) break;
      sim_.advance_inline(front.at);
      sim_.note_replayed();
    } else {
      assert(steps_.front().at == sim_.now());
      first = false;
    }
    SubStep s = std::move(steps_.front());
    steps_.erase(steps_.begin());
    if (s.kind == SubStep::kSerDone) {
      process_ser_done(s);
    } else {
      process_arrival(s);
    }
  }
  in_drain_ = false;
  refresh_drain_event();
}

void Link::process_ser_done(SubStep& s) {
  if (s.epoch != down_epoch_) {
    // Cable pulled mid-serialization (the pull closed the busy
    // interval); the packet never made it onto the far wire.
    ++faults_.inflight_dropped;
    faults_.inflight_dropped_bytes +=
        static_cast<std::uint64_t>(s.pkt.size_bytes);
    return;
  }
  busy_accum_ += s.ser;
  bytes_transmitted_ += s.pkt.size_bytes;
  if (loss_prob_ > 0.0 || corrupt_prob_ > 0.0) {
    if (fault_rng_.next_bool(loss_prob_)) {
      ++faults_.lost;
      faults_.lost_bytes += static_cast<std::uint64_t>(s.pkt.size_bytes);
      start_coalesced();
      return;
    }
    if (fault_rng_.next_bool(corrupt_prob_)) {
      ++faults_.corrupted;
      faults_.corrupted_bytes +=
          static_cast<std::uint64_t>(s.pkt.size_bytes);
      start_coalesced();
      return;
    }
  }
  // Stage the arrival BEFORE dequeuing the next packet — the order the
  // reference schedules (and therefore draws sequence numbers) in.
  SubStep a;
  a.pkt = std::move(s.pkt);
  a.at = sim_.now() + prop_delay_;
  a.seq = sim_.reserve_seq();  // the reference's sim_.after(prop, ...)
  a.epoch = s.epoch;
  a.kind = SubStep::kArrive;
  push_step(std::move(a));
  start_coalesced();
}

void Link::process_arrival(SubStep& s) {
  if (s.epoch != down_epoch_) {
    ++faults_.inflight_dropped;
    faults_.inflight_dropped_bytes +=
        static_cast<std::uint64_t>(s.pkt.size_bytes);
    return;
  }
  deliver_(std::span<const Packet>(&s.pkt, 1));
}

void Link::on_drain() {
  drain_armed_ = false;
  process_substeps();
}

void Link::refresh_drain_event() {
  if (steps_.empty()) {
    if (drain_armed_) {
      sim_.disarm_timer(drain_timer_);
      drain_armed_ = false;
    }
    return;
  }
  const SubStep& front = steps_.front();
  if (drain_armed_) {
    if (drain_at_ == front.at && drain_seq_ == front.seq) return;
    // A nearer sub-step displaced the materialized one (a new chain
    // started behind in-flight arrivals on a long-propagation wire);
    // re-point the timer, keeping the front's reserved sequence number
    // so global order is untouched.
    sim_.disarm_timer(drain_timer_);
  }
  if (drain_timer_ == 0) {
    drain_timer_ = sim_.make_timer(
        [](void* self) { static_cast<Link*>(self)->on_drain(); }, this);
  }
  drain_at_ = front.at;
  drain_seq_ = front.seq;
  sim_.arm_timer(drain_timer_, front.at, front.seq);
  drain_armed_ = true;
}

void Link::set_up(bool up) {
  if (up == up_) return;
  const TimeNs now = sim_.now();
  if (!up) {
    up_ = false;
    ++down_epoch_;
    down_since_ = now;
    if (busy_) {
      // The wire was occupied up to the pull; the serialization
      // continuation will see the stale epoch and count the drop.
      busy_accum_ += now - busy_since_;
      busy_ = false;
    }
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "link:down", now, trace_tid_);
    }
    return;
  }
  up_ = true;
  if (obs::Tracer* tr = runtime_tracer()) {
    // One span covering the whole outage makes flaps legible in
    // Perfetto without stitching down/up instants together.
    tr->complete(obs::TraceCategory::kRuntime, "link:outage", down_since_,
                 now - down_since_, trace_tid_);
  }
  if (!busy_) start_next();
}

void Link::set_loss(double loss_prob, double corrupt_prob) {
  loss_prob_ = loss_prob < 0.0 ? 0.0 : (loss_prob > 1.0 ? 1.0 : loss_prob);
  corrupt_prob_ =
      corrupt_prob < 0.0 ? 0.0 : (corrupt_prob > 1.0 ? 1.0 : corrupt_prob);
}

double Link::utilization(TimeNs now) const {
  if (now <= 0) return 0.0;
  TimeNs busy_time = busy_accum_;
  if (busy_) busy_time += now - busy_since_;
  return static_cast<double>(busy_time) / static_cast<double>(now);
}

double Link::mean_queue_bytes(TimeNs now) const {
  if (now <= 0) return 0.0;
  double integral = backlog_integral_;
  integral += static_cast<double>(queue_->buffered_bytes()) *
              static_cast<double>(now - backlog_updated_at_);
  return integral / static_cast<double>(now);
}

void Link::replace_queue(std::unique_ptr<sched::Scheduler> queue) {
  assert(queue_->empty());
  assert(queue != nullptr);
  queue_ = std::move(queue);
}

}  // namespace qv::netsim
