#include "netsim/link.hpp"

#include <cassert>
#include <utility>

namespace qv::netsim {

Link::Link(Simulator& sim, BitsPerSec rate, TimeNs propagation_delay,
           std::unique_ptr<sched::Scheduler> queue, Deliver deliver)
    : sim_(sim), rate_(rate), prop_delay_(propagation_delay),
      queue_(std::move(queue)), deliver_(std::move(deliver)) {
  assert(rate_ > 0);
  assert(queue_ != nullptr);
  assert(deliver_ != nullptr);
}

void Link::account_queue(TimeNs now) {
  backlog_integral_ +=
      static_cast<double>(queue_->buffered_bytes()) *
      static_cast<double>(now - backlog_updated_at_);
  backlog_updated_at_ = now;
}

void Link::transmit(const Packet& p) {
  if (!up_) {
    ++faults_.offered_while_down;
    faults_.offered_while_down_bytes +=
        static_cast<std::uint64_t>(p.size_bytes);
    return;
  }
  account_queue(sim_.now());
  if (obs::Tracer* tr = sched_tracer()) {
    // Counter deltas distinguish the three outcomes (acceptance,
    // rejection, eviction of a buffered victim) without touching the
    // scheduler interface.
    const sched::SchedulerCounters& c = queue_->counters();
    const std::uint64_t drops_before = c.dropped;
    queue_->enqueue(p, sim_.now());
    if (c.dropped != drops_before) {
      tr->instant(obs::TraceCategory::kSched, "drop", sim_.now(), trace_tid_,
                  "rank", p.rank);
    } else {
      tr->instant(obs::TraceCategory::kSched, "enqueue", sim_.now(),
                  trace_tid_, "rank", p.rank);
    }
  } else {
    queue_->enqueue(p, sim_.now());
  }
  if (!busy_) start_next();
}

void Link::transmit_burst(std::span<Packet> burst) {
  if (!up_) {
    faults_.offered_while_down += burst.size();
    for (const Packet& p : burst) {
      faults_.offered_while_down_bytes +=
          static_cast<std::uint64_t>(p.size_bytes);
    }
    return;
  }
  account_queue(sim_.now());
  if (obs::Tracer* tr = sched_tracer()) {
    const sched::SchedulerCounters& c = queue_->counters();
    const std::uint64_t drops_before = c.dropped;
    const std::size_t accepted = queue_->enqueue_batch(burst, sim_.now());
    tr->instant(obs::TraceCategory::kSched, "enqueue_burst", sim_.now(),
                trace_tid_, "accepted", accepted);
    if (c.dropped != drops_before) {
      tr->instant(obs::TraceCategory::kSched, "drop", sim_.now(), trace_tid_,
                  "count", c.dropped - drops_before);
    }
  } else {
    queue_->enqueue_batch(burst, sim_.now());
  }
  if (!busy_) start_next();
}

void Link::start_next() {
  if (!up_) {
    busy_ = false;
    return;
  }
  account_queue(sim_.now());
  auto next = queue_->dequeue(sim_.now());
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  busy_since_ = sim_.now();
  const TimeNs ser = serialization_delay(next->size_bytes, rate_);
  if (obs::Tracer* tr = sched_tracer()) {
    // The dequeued packet occupies the wire for `ser` — a span in
    // SIMULATED time on this port's lane.
    tr->complete(obs::TraceCategory::kSched, "tx", sim_.now(), ser,
                 trace_tid_, "rank", next->rank);
  }
  const Packet pkt = *next;
  // Last bit leaves at now+ser; it arrives prop_delay later. Both
  // continuations capture the down-epoch they started under: if the
  // link went down in between, the bits on the wire are gone.
  const std::uint64_t epoch = down_epoch_;
  sim_.after(ser, [this, pkt, ser, epoch] {
    if (epoch != down_epoch_) {
      // Cable pulled mid-serialization. set_up(false) already closed
      // the busy interval; the packet never made it onto the far wire.
      ++faults_.inflight_dropped;
      faults_.inflight_dropped_bytes +=
          static_cast<std::uint64_t>(pkt.size_bytes);
      return;
    }
    busy_accum_ += ser;
    bytes_transmitted_ += pkt.size_bytes;
    if (loss_prob_ > 0.0 || corrupt_prob_ > 0.0) {
      // Loss/corruption is decided once the packet has consumed its
      // wire time, from the per-link fault RNG (replay-deterministic).
      if (fault_rng_.next_bool(loss_prob_)) {
        ++faults_.lost;
        faults_.lost_bytes += static_cast<std::uint64_t>(pkt.size_bytes);
        start_next();
        return;
      }
      if (fault_rng_.next_bool(corrupt_prob_)) {
        // The receiver discards a corrupted frame; on the wire it is
        // indistinguishable from loss except for the counter.
        ++faults_.corrupted;
        faults_.corrupted_bytes +=
            static_cast<std::uint64_t>(pkt.size_bytes);
        start_next();
        return;
      }
    }
    sim_.after(prop_delay_, [this, pkt, epoch] {
      if (epoch != down_epoch_) {
        ++faults_.inflight_dropped;
        faults_.inflight_dropped_bytes +=
            static_cast<std::uint64_t>(pkt.size_bytes);
        return;
      }
      deliver_(pkt);
    });
    start_next();
  });
}

void Link::set_up(bool up) {
  if (up == up_) return;
  const TimeNs now = sim_.now();
  if (!up) {
    up_ = false;
    ++down_epoch_;
    down_since_ = now;
    if (busy_) {
      // The wire was occupied up to the pull; the serialization
      // continuation will see the stale epoch and count the drop.
      busy_accum_ += now - busy_since_;
      busy_ = false;
    }
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "link:down", now, trace_tid_);
    }
    return;
  }
  up_ = true;
  if (obs::Tracer* tr = runtime_tracer()) {
    // One span covering the whole outage makes flaps legible in
    // Perfetto without stitching down/up instants together.
    tr->complete(obs::TraceCategory::kRuntime, "link:outage", down_since_,
                 now - down_since_, trace_tid_);
  }
  if (!busy_) start_next();
}

void Link::set_loss(double loss_prob, double corrupt_prob) {
  loss_prob_ = loss_prob < 0.0 ? 0.0 : (loss_prob > 1.0 ? 1.0 : loss_prob);
  corrupt_prob_ =
      corrupt_prob < 0.0 ? 0.0 : (corrupt_prob > 1.0 ? 1.0 : corrupt_prob);
}

double Link::utilization(TimeNs now) const {
  if (now <= 0) return 0.0;
  TimeNs busy_time = busy_accum_;
  if (busy_) busy_time += now - busy_since_;
  return static_cast<double>(busy_time) / static_cast<double>(now);
}

double Link::mean_queue_bytes(TimeNs now) const {
  if (now <= 0) return 0.0;
  double integral = backlog_integral_;
  integral += static_cast<double>(queue_->buffered_bytes()) *
              static_cast<double>(now - backlog_updated_at_);
  return integral / static_cast<double>(now);
}

void Link::replace_queue(std::unique_ptr<sched::Scheduler> queue) {
  assert(queue_->empty());
  assert(queue != nullptr);
  queue_ = std::move(queue);
}

}  // namespace qv::netsim
