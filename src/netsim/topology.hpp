// Topology builders. The paper's evaluation topology is a leaf-spine
// fabric: 9 leaves × 4 spines, 16 hosts per leaf (144 servers), 1 Gb/s
// access links and 4 Gb/s leaf-spine links (§4).
#pragma once

#include <cstddef>

#include "netsim/network.hpp"
#include "util/units.hpp"

namespace qv::netsim {

struct LeafSpineConfig {
  std::size_t leaves = 9;
  std::size_t spines = 4;
  std::size_t hosts_per_leaf = 16;
  BitsPerSec access_rate = gbps(1);
  BitsPerSec fabric_rate = gbps(4);
  TimeNs link_delay = microseconds(1);

  std::size_t total_hosts() const { return leaves * hosts_per_leaf; }
};

/// Handles to the nodes of a built leaf-spine fabric; host index h lives
/// under leaf h / hosts_per_leaf.
struct LeafSpine {
  LeafSpineConfig config;
  std::vector<Host*> hosts;
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;

  std::size_t leaf_of(std::size_t host) const {
    return host / config.hosts_per_leaf;
  }
};

/// Build the fabric into `net` (which may already contain other nodes)
/// and compute routes. Every port's queue comes from `factory`.
LeafSpine build_leaf_spine(Network& net, const LeafSpineConfig& config,
                           const SchedulerFactory& factory);

/// Minimal topology for focused experiments: `n` hosts on one switch
/// (single shared output queue per downlink — the classic single-
/// bottleneck dumbbell when paired with one receiver).
struct SingleSwitch {
  std::vector<Host*> hosts;
  Switch* sw = nullptr;
};

SingleSwitch build_single_switch(Network& net, std::size_t num_hosts,
                                 BitsPerSec rate, TimeNs link_delay,
                                 const SchedulerFactory& factory);

}  // namespace qv::netsim
