#include "mgmt/rollout.hpp"

#include <algorithm>
#include <cmath>

#include "netsim/packet.hpp"
#include "qvisor/qvisor.hpp"
#include "util/random.hpp"

namespace qv::mgmt {
namespace {

void put_u64_bytes(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t digest_sequence(const std::vector<std::uint64_t>& values) {
  std::string bytes;
  bytes.reserve(values.size() * 8);
  for (const std::uint64_t v : values) put_u64_bytes(bytes, v);
  return fnv1a(bytes);
}

/// Digest of "plan `pf` on every one of `n` switches" — what
/// fleet_plan_fingerprint() returns for a converged fleet.
std::uint64_t uniform_fleet_digest(std::uint64_t pf, std::size_t n) {
  return digest_sequence(std::vector<std::uint64_t>(n, pf));
}

}  // namespace

std::uint64_t plan_fingerprint(const control::CompiledGroupPlan& plan) {
  std::vector<std::uint64_t> parts = plan.fingerprints;
  parts.push_back(plan.index != nullptr ? plan.index->fingerprint() : 0);
  parts.push_back(plan.group_count());
  return digest_sequence(parts);
}

std::uint64_t fleet_plan_fingerprint(qvisor::Fleet& fleet) {
  std::vector<std::uint64_t> per_switch;
  per_switch.reserve(fleet.switch_count());
  for (std::size_t i = 0; i < fleet.switch_count(); ++i) {
    const control::CompiledGroupPlan* plan =
        fleet.hypervisor(i).group_plan();
    per_switch.push_back(plan != nullptr ? plan_fingerprint(*plan) : 0);
  }
  return digest_sequence(per_switch);
}

RolloutEngine::RolloutEngine(control::ControlPlane& cp, ConfigStore& store,
                             RolloutConfig config)
    : cp_(cp), store_(store), config_(std::move(config)) {
  if (config_.canary == 0) config_.canary = 1;
  if (config_.wave_size == 0) config_.wave_size = 1;
}

void RolloutEngine::trace(const char* name, TimeNs ts,
                          std::uint64_t arg) const {
  if (tracer_ != nullptr && tracer_->enabled(obs::TraceCategory::kMgmt)) {
    tracer_->instant(obs::TraceCategory::kMgmt, name, ts, /*tid=*/0, "arg",
                     arg);
  }
}

std::vector<std::vector<std::size_t>> RolloutEngine::plan_waves() const {
  std::vector<std::vector<std::size_t>> waves;
  const std::size_t n = cp_.fleet().switch_count();
  std::size_t at = 0;
  while (at < n) {
    const std::size_t size =
        waves.empty() ? std::min(config_.canary, n - at)
                      : std::min(config_.wave_size, n - at);
    std::vector<std::size_t> cohort(size);
    for (std::size_t i = 0; i < size; ++i) cohort[i] = at + i;
    waves.push_back(std::move(cohort));
    at += size;
  }
  return waves;
}

std::vector<std::uint32_t> RolloutEngine::victim_tenants() const {
  // Victims come from the LAST-KNOWN-GOOD policy: the tier the operator
  // currently protects. Deriving them from the candidate would let a
  // tier-inverting bad policy redefine its own victims and pass.
  const control::GroupedPolicy* lkg = cp_.current_policy();
  std::vector<std::uint32_t> ids;
  if (lkg == nullptr) return ids;
  std::vector<std::string> names = config_.victim_groups;
  if (names.empty() && !lkg->policy.tiers().empty()) {
    for (const auto& cell : lkg->policy.tiers().front().groups) {
      names.insert(names.end(), cell.tenants.begin(), cell.tenants.end());
    }
  }
  for (const auto& name : names) {
    for (const auto& g : lkg->groups) {
      if (g.name == name && !g.spans.empty()) {
        ids.push_back(g.spans.front().lo);
        break;
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<std::uint32_t> RolloutEngine::probe_tenants() const {
  // One representative per LKG group with explicit spans: the probe
  // workload mixes every traffic class the operator declared.
  const control::GroupedPolicy* lkg = cp_.current_policy();
  std::vector<std::uint32_t> ids;
  if (lkg == nullptr) return ids;
  for (const auto& g : lkg->groups) {
    if (!g.spans.empty()) ids.push_back(g.spans.front().lo);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

ProbeResult RolloutEngine::probe_switch(
    std::size_t switch_index) {
  ProbeResult r;
  r.switch_index = switch_index;
  if (probe_fault_ && probe_fault_(switch_index)) {
    r.failure = "probe endpoint unreachable";
    return r;
  }
  const std::vector<std::uint32_t> victims = victim_tenants();
  const std::vector<std::uint32_t> tenants = probe_tenants();
  if (victims.empty() || tenants.empty()) {
    r.failure = "no probe tenants derivable from the deployed policy";
    return r;
  }

  qvisor::Fleet& fleet = cp_.fleet();
  auto port = fleet.make_port_scheduler(switch_index);
  Rng rng(config_.probe.seed ^
          (0x9e3779b97f4a7c15ull * (switch_index + 1)));

  // Burst arrival at virtual time 0, round-robin across tenants so no
  // class wins by arrival order.
  std::uint64_t offered = 0;
  for (std::size_t round = 0; round < config_.probe.packets_per_tenant;
       ++round) {
    for (const std::uint32_t tenant : tenants) {
      Packet p;
      p.flow = (static_cast<std::uint64_t>(tenant) << 32) | round;
      p.seq = static_cast<std::uint32_t>(round);
      p.tenant = tenant;
      p.size_bytes = config_.probe.packet_bytes;
      p.original_rank = static_cast<Rank>(rng.next_below(256));
      p.rank = p.original_rank;
      ++offered;
      port->enqueue(p, /*now=*/0);
    }
  }

  // Virtual line-rate drain: dequeue to empty, advancing a virtual
  // clock by each packet's serialization time.
  const double ns_per_byte =
      8.0e9 / static_cast<double>(config_.probe.line_rate);
  TimeNs clock = 0;
  std::vector<TimeNs> victim_drains;
  std::vector<std::uint32_t> order;  // victim flag per dequeue position
  std::uint64_t dequeued = 0;
  while (auto p = port->dequeue(clock)) {
    clock += static_cast<TimeNs>(
        std::llround(static_cast<double>(p->size_bytes) * ns_per_byte));
    const bool is_victim =
        std::binary_search(victims.begin(), victims.end(), p->tenant);
    order.push_back(is_victim ? 1u : 0u);
    if (is_victim) victim_drains.push_back(clock);
    ++dequeued;
    if (dequeued > offered) break;  // defensive: duplicating scheduler
  }

  // Victim share of the first half of the drain. Under the band layout
  // the compiler gives a healthy plan, protected-tier packets drain
  // first, so all victims land in the first half.
  const std::size_t half = order.size() / 2;
  std::size_t victims_first_half = 0;
  for (std::size_t i = 0; i < half; ++i) victims_first_half += order[i];
  const std::size_t victim_total = victim_drains.size();
  const std::size_t expected = std::min(victim_total, half);
  r.victim_share = expected == 0
                       ? 0.0
                       : static_cast<double>(victims_first_half) /
                             static_cast<double>(expected);

  if (!victim_drains.empty()) {
    // Drain times are recorded in dequeue order, already ascending.
    const std::size_t at = (victim_drains.size() * 99 + 99) / 100;
    r.victim_p99 = victim_drains[std::min(at, victim_drains.size()) - 1];
  }

  const auto& c = port->counters();
  r.balanced = port->empty() && c.enqueued == c.dequeued + c.dropped &&
               c.enqueued + c.dropped >= offered;
  if (auto* qp = dynamic_cast<qvisor::QvisorPort*>(port.get())) {
    r.epoch_mismatches = qp->epoch_mismatches();
  }

  if (victim_total == 0) {
    r.failure = "no victim packets survived to the drain";
  } else if (r.victim_share < config_.slo.min_victim_share) {
    r.failure = "victim share " + std::to_string(r.victim_share) +
                " below SLO " + std::to_string(config_.slo.min_victim_share);
  } else if (r.victim_p99 > config_.slo.p99_delay_bound) {
    r.failure = "victim p99 " + std::to_string(r.victim_p99) +
                "ns over bound " +
                std::to_string(config_.slo.p99_delay_bound) + "ns";
  } else if (config_.slo.require_balanced_books && !r.balanced) {
    r.failure = "unbalanced books (enqueued != dequeued + dropped)";
  } else if (r.epoch_mismatches != 0) {
    r.failure = "packets scheduled under a half-installed plan";
  } else {
    r.pass = true;
  }
  return r;
}

RolloutReport RolloutEngine::rollout(std::uint64_t version_id,
                                                    TimeNs now) {
  RolloutReport rep;
  rep.version = version_id;
  qvisor::Fleet& fleet = cp_.fleet();

  const auto reject = [&rep](std::string why) {
    rep.outcome = RolloutOutcome::kRejected;
    rep.abort_reason = std::move(why);
    return rep;
  };

  const StoreVersion* candidate = store_.get(version_id);
  if (candidate == nullptr) {
    return reject("unknown store version " + std::to_string(version_id));
  }
  if (candidate->kind != DocKind::kPolicy) {
    return reject("version " + std::to_string(version_id) +
                  " is not a policy document");
  }
  const StoreVersion* lkg = store_.last_known_good(DocKind::kPolicy);
  if (lkg == nullptr) {
    return reject("no last-known-good policy to fall back to");
  }
  rep.lkg_before = lkg->id;
  rep.lkg_after = lkg->id;
  if (cp_.deployed() == nullptr) {
    return reject("fleet runs no deployed plan (bootstrap first)");
  }
  const std::uint64_t lkg_fp = plan_fingerprint(*cp_.deployed());

  const JsonValue doc = candidate->parse();
  const JsonValue* text = doc.find("policy");
  if (text == nullptr || !text->is_string()) {
    return reject("version carries no policy text");
  }

  auto staged = cp_.stage_text(text->as_string(), now);
  if (staged.noop) {
    // The fleet already runs this version byte-for-byte: only the LKG
    // pointer moves.
    std::string err;
    rep.noop = true;
    rep.outcome = RolloutOutcome::kCommitted;
    rep.converged = fleet.epochs_consistent();
    rep.expected_fingerprint = lkg_fp;
    rep.fleet_fingerprint = fleet_plan_fingerprint(fleet);
    rep.on_lkg = rep.fleet_fingerprint ==
                 uniform_fleet_digest(lkg_fp, fleet.switch_count());
    rep.ok = rep.converged && rep.on_lkg &&
             store_.mark_good(version_id, &err);
    if (rep.ok) rep.lkg_after = version_id;
    if (!err.empty()) rep.abort_reason = "LKG mark unacked: " + err;
    return rep;
  }
  if (!staged.ok) return reject("stage failed: " + staged.error);
  rep.staged_epoch = staged.epoch;
  rep.incremental = staged.incremental;
  trace("rollout:stage", now, staged.epoch);

  // Abort = drop the staged epoch, then anti-entropy back to LKG.
  const auto abort_rollout = [&](std::string why) -> RolloutReport& {
    rep.outcome = RolloutOutcome::kAborted;
    rep.abort_reason = std::move(why);
    rep.switches_touched = fleet.staged_switches();
    trace("rollout:abort", now, rep.switches_touched);
    cp_.abort_staged(now);
    while (!fleet.epochs_consistent() &&
           rep.reconcile_passes < config_.heal_budget) {
      now += config_.heal_interval;
      fleet.reconcile(now);
      ++rep.reconcile_passes;
    }
    rep.converged = fleet.epochs_consistent();
    rep.expected_fingerprint = lkg_fp;
    rep.fleet_fingerprint = fleet_plan_fingerprint(fleet);
    rep.on_lkg = rep.fleet_fingerprint ==
                 uniform_fleet_digest(lkg_fp, fleet.switch_count());
    rep.ok = rep.converged && rep.on_lkg;
    return rep;
  };

  const auto waves = plan_waves();
  for (std::size_t w = 0; w < waves.size(); ++w) {
    WaveRecord wr;
    wr.wave = w;
    wr.cohort = waves[w];
    std::string err;
    bool committed = false;
    while (wr.attempts <= config_.wave_retry_budget) {
      ++wr.attempts;
      if (cp_.commit_wave(wr.cohort, now, &err)) {
        committed = true;
        break;
      }
      now += config_.retry_interval;
    }
    wr.committed = committed;
    wr.error = committed ? "" : err;
    trace(committed ? "rollout:wave" : "rollout:wave_failed", now, w);
    if (!committed) {
      rep.waves.push_back(std::move(wr));
      return abort_rollout("wave " + std::to_string(w) +
                           " install failed after " +
                           std::to_string(wr.attempts) +
                           " attempts: " + err);
    }

    if (w == 0 || config_.probe_every_wave) {
      wr.probed = true;
      wr.probe_pass = true;
      for (const std::size_t idx : wr.cohort) {
        ProbeResult pr = probe_switch(idx);
        rep.epoch_mismatch_packets += pr.epoch_mismatches;
        rep.probes.push_back(pr);
        if (!pr.pass) {
          wr.probe_pass = false;
          trace("rollout:probe_failed", now, idx);
          rep.waves.push_back(std::move(wr));
          return abort_rollout("SLO regression on switch " +
                               std::to_string(idx) + ": " + pr.failure);
        }
      }
    }
    rep.waves.push_back(std::move(wr));
  }

  rep.switches_touched = fleet.staged_switches();
  std::string err;
  if (!cp_.finalize_staged(&err)) {
    return abort_rollout("finalize failed: " + err);
  }
  trace("rollout:finalize", now, rep.staged_epoch);
  rep.outcome = RolloutOutcome::kCommitted;
  rep.converged = fleet.epochs_consistent();
  const std::uint64_t new_fp = plan_fingerprint(*cp_.deployed());
  rep.expected_fingerprint = new_fp;
  rep.fleet_fingerprint = fleet_plan_fingerprint(fleet);
  rep.on_lkg = rep.fleet_fingerprint ==
               uniform_fleet_digest(new_fp, fleet.switch_count());
  const bool marked = store_.mark_good(version_id, &err);
  if (marked) {
    rep.lkg_after = version_id;
  } else {
    rep.abort_reason = "committed, but LKG mark unacked: " + err;
  }
  rep.ok = rep.converged && rep.on_lkg && marked;
  return rep;
}

}  // namespace qv::mgmt
