// Append-only record journal with torn-tail recovery (ISSUE 9).
//
// The config store's durability contract — "never lose an acked
// version, recover byte-identical from any crash point" — reduces to
// one file-format property: a reader must be able to tell a complete
// record from a torn one. Each record is framed as
//
//     [u32 magic][u32 payload_length][u64 fnv1a(payload)][payload]
//
// written little-endian and flushed + fsync'd as a unit (an acked
// append survives OS and power crashes, not just process death).
// replay() walks frames
// from the start; the FIRST frame that fails any check (bad magic,
// length running past EOF, checksum mismatch) marks the torn tail —
// that frame and everything after it is discarded, and recover()
// truncates the file back to the last complete frame so the next
// append starts on a clean boundary.
//
// Crash injection is built in rather than bolted on: set_torn_write(n)
// makes the next append persist only its first n bytes (the
// in-memory write "happened", the disk write was cut short), which is
// exactly the crash-between-append-and-ack window the rollout chaos
// harness drives.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qv::mgmt {

inline constexpr std::uint32_t kJournalMagic = 0x4a51564du;  // "MVQJ"
/// Frame header bytes preceding the payload: magic + length + checksum.
inline constexpr std::size_t kJournalHeaderBytes = 4 + 4 + 8;
/// Upper bound on one payload; a length field beyond this is corruption,
/// not a huge record (keeps replay from trusting a torn length word).
inline constexpr std::uint32_t kJournalMaxPayload = 64u * 1024u * 1024u;

/// Result of scanning a journal file.
struct JournalReplay {
  std::vector<std::string> records;  ///< complete payloads, in order
  std::size_t valid_bytes = 0;       ///< offset of the first torn byte
  bool torn_tail = false;            ///< trailing partial frame discarded
  std::string error;                 ///< non-empty only on I/O failure
  bool ok() const { return error.empty(); }
};

/// Frame `payload` (header + body) into `out`.
void append_frame(std::string& out, std::string_view payload);

/// Scan an in-memory journal image. Never fails: corruption just ends
/// the valid prefix.
JournalReplay scan_frames(std::string_view image);

class Journal {
 public:
  /// Opens (creating if absent) the journal at `path` and replays it.
  /// Inspect last_replay() for the recovered records; if the tail was
  /// torn the file is truncated to the valid prefix.
  explicit Journal(std::string path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }
  const JournalReplay& last_replay() const { return replay_; }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Durably (fsync) append one record. Returns false (with error())
  /// on I/O failure or when a torn write was injected — in both cases
  /// the caller must treat the record as UNACKED, and the journal
  /// LATCHES failed: partial frame bytes may sit at the file tail, and
  /// since replay stops at the first bad frame, any further frame
  /// written past them would be silently unrecoverable. Reopening the
  /// journal (which truncates the torn tail) or rewrite() clears the
  /// latch.
  bool append(std::string_view payload);

  /// Byte size of the valid journal prefix on disk.
  std::size_t size_bytes() const { return size_bytes_; }

  /// Atomically (write-temp + rename: old-or-new, never torn) replace
  /// the journal contents with `records` (used by snapshot compaction:
  /// the snapshot owns history, the journal restarts near-empty). On
  /// success also clears an append-failure latch — the rewritten file
  /// has a clean tail by construction.
  bool rewrite(const std::vector<std::string>& records);

  /// Inject a crash into the NEXT append: only the first
  /// `persisted_bytes` bytes of the frame reach the file, then the
  /// append reports failure (unacked) and the journal latches failed
  /// like any other failed append. One-shot.
  void set_torn_write(std::size_t persisted_bytes) {
    torn_write_bytes_ = persisted_bytes;
    torn_write_armed_ = true;
  }

 private:
  bool write_bytes(std::string_view bytes);

  std::string path_;
  JournalReplay replay_;
  std::string error_;
  std::size_t size_bytes_ = 0;
  std::size_t torn_write_bytes_ = 0;
  bool torn_write_armed_ = false;
};

}  // namespace qv::mgmt
