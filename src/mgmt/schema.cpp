#include "mgmt/schema.hpp"

#include <set>
#include <utility>

#include "control/group_policy.hpp"

namespace qv::mgmt {
namespace {

const char* type_name(Schema::Type t) {
  switch (t) {
    case Schema::Type::kObject:
      return "object";
    case Schema::Type::kArray:
      return "array";
    case Schema::Type::kString:
      return "string";
    case Schema::Type::kInt:
      return "integer";
    case Schema::Type::kNumber:
      return "number";
    case Schema::Type::kBool:
      return "bool";
    case Schema::Type::kAny:
      return "any";
  }
  return "?";
}

const char* json_type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kInt:
      return "integer";
    case JsonValue::Type::kDouble:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

ValidationResult fail(std::string path, std::string error) {
  ValidationResult r;
  r.ok = false;
  r.path = std::move(path);
  r.error = std::move(error);
  return r;
}

ValidationResult pass() {
  ValidationResult r;
  r.ok = true;
  return r;
}

bool type_matches(Schema::Type want, const JsonValue& v) {
  switch (want) {
    case Schema::Type::kObject:
      return v.is_object();
    case Schema::Type::kArray:
      return v.is_array();
    case Schema::Type::kString:
      return v.is_string();
    case Schema::Type::kInt:
      return v.is_int();
    case Schema::Type::kNumber:
      return v.is_number();
    case Schema::Type::kBool:
      return v.is_bool();
    case Schema::Type::kAny:
      return true;
  }
  return false;
}

ValidationResult validate_at(const Schema& schema, const JsonValue& value,
                             const std::string& path) {
  if (!type_matches(schema.type, value)) {
    return fail(path, std::string("expected ") + type_name(schema.type) +
                          ", got " + json_type_name(value.type()));
  }

  switch (schema.type) {
    case Schema::Type::kInt: {
      const std::int64_t v = value.as_int();
      if (v < schema.min_int || v > schema.max_int) {
        return fail(path, "integer " + std::to_string(v) + " out of range [" +
                              std::to_string(schema.min_int) + ", " +
                              std::to_string(schema.max_int) + "]");
      }
      break;
    }
    case Schema::Type::kString: {
      const std::string& s = value.as_string();
      if (s.size() < schema.min_len || s.size() > schema.max_len) {
        return fail(path, "string length " + std::to_string(s.size()) +
                              " out of range [" +
                              std::to_string(schema.min_len) + ", " +
                              std::to_string(schema.max_len) + "]");
      }
      if (!schema.one_of.empty()) {
        bool found = false;
        for (const auto& allowed : schema.one_of) {
          if (s == allowed) {
            found = true;
            break;
          }
        }
        if (!found) {
          std::string opts;
          for (const auto& allowed : schema.one_of) {
            if (!opts.empty()) opts += ", ";
            opts += "\"" + allowed + "\"";
          }
          return fail(path, "\"" + s + "\" not one of {" + opts + "}");
        }
      }
      break;
    }
    case Schema::Type::kArray: {
      const auto& arr = value.as_array();
      if (arr.size() < schema.min_items || arr.size() > schema.max_items) {
        return fail(path, "array size " + std::to_string(arr.size()) +
                              " out of range [" +
                              std::to_string(schema.min_items) + ", " +
                              std::to_string(schema.max_items) + "]");
      }
      if (schema.items) {
        for (std::size_t i = 0; i < arr.size(); ++i) {
          auto r = validate_at(*schema.items, arr[i],
                               path + "/" + std::to_string(i));
          if (!r.ok) return r;
        }
      }
      break;
    }
    case Schema::Type::kObject: {
      const auto& obj = value.as_object();
      for (const auto& prop : schema.properties) {
        const JsonValue* member = value.find(prop.name);
        if (member == nullptr) {
          if (prop.required) {
            return fail(path, "missing required member \"" + prop.name + "\"");
          }
          continue;
        }
        auto r = validate_at(*prop.schema, *member, path + "/" + prop.name);
        if (!r.ok) return r;
      }
      // Closed schema: reject members the schema does not name, so a
      // typo'd field surfaces as an error instead of silently
      // validating with the default applied.
      for (const auto& [key, unused] : obj) {
        (void)unused;
        bool known = false;
        for (const auto& prop : schema.properties) {
          if (prop.name == key) {
            known = true;
            break;
          }
        }
        if (!known) {
          return fail(path, "unknown member \"" + key + "\"");
        }
      }
      break;
    }
    case Schema::Type::kNumber:
    case Schema::Type::kBool:
    case Schema::Type::kAny:
      break;
  }
  return pass();
}

}  // namespace

std::shared_ptr<const Schema> schema_int(std::int64_t min, std::int64_t max) {
  auto s = std::make_shared<Schema>();
  s->type = Schema::Type::kInt;
  s->min_int = min;
  s->max_int = max;
  return s;
}

std::shared_ptr<const Schema> schema_string(std::size_t min_len,
                                            std::size_t max_len) {
  auto s = std::make_shared<Schema>();
  s->type = Schema::Type::kString;
  s->min_len = min_len;
  s->max_len = max_len;
  return s;
}

std::shared_ptr<const Schema> schema_enum(std::vector<std::string> values) {
  auto s = std::make_shared<Schema>();
  s->type = Schema::Type::kString;
  s->one_of = std::move(values);
  return s;
}

std::shared_ptr<const Schema> schema_bool() {
  auto s = std::make_shared<Schema>();
  s->type = Schema::Type::kBool;
  return s;
}

std::shared_ptr<const Schema> schema_array(std::shared_ptr<const Schema> items,
                                           std::size_t min_items,
                                           std::size_t max_items) {
  auto s = std::make_shared<Schema>();
  s->type = Schema::Type::kArray;
  s->items = std::move(items);
  s->min_items = min_items;
  s->max_items = max_items;
  return s;
}

std::shared_ptr<const Schema> schema_object(
    std::vector<Schema::Property> properties) {
  auto s = std::make_shared<Schema>();
  s->type = Schema::Type::kObject;
  s->properties = std::move(properties);
  return s;
}

ValidationResult validate(const Schema& schema, const JsonValue& value) {
  return validate_at(schema, value, "");
}

const char* doc_kind_name(DocKind kind) {
  switch (kind) {
    case DocKind::kContracts:
      return "contracts";
    case DocKind::kPolicy:
      return "policy";
    case DocKind::kTopology:
      return "topology";
  }
  return "?";
}

bool parse_doc_kind(const std::string& name, DocKind* out) {
  if (name == "contracts") {
    *out = DocKind::kContracts;
    return true;
  }
  if (name == "policy") {
    *out = DocKind::kPolicy;
    return true;
  }
  if (name == "topology") {
    *out = DocKind::kTopology;
    return true;
  }
  return false;
}

namespace {

// 0xfffffffe: kInvalidTenant (0xffffffff) is reserved as a sentinel.
constexpr std::int64_t kMaxTenantId = 0xfffffffell;
constexpr std::int64_t kMaxRankValue = 0xffffffffll;

std::shared_ptr<const Schema> build_contracts_schema() {
  auto contract = schema_object({
      {"tenant", schema_int(0, kMaxTenantId), /*required=*/true},
      {"rank_min", schema_int(0, kMaxRankValue), /*required=*/false},
      {"rank_max", schema_int(0, kMaxRankValue), /*required=*/false},
      {"max_rate", schema_int(0), /*required=*/false},
      {"burst_bytes", schema_int(1), /*required=*/false},
  });
  return schema_object({
      {"kind", schema_enum({"contracts"}), /*required=*/true},
      {"contracts", schema_array(contract, 0, 1u << 20), /*required=*/true},
  });
}

std::shared_ptr<const Schema> build_policy_schema() {
  return schema_object({
      {"kind", schema_enum({"policy"}), /*required=*/true},
      {"policy", schema_string(1, 1u << 20), /*required=*/true},
      {"description", schema_string(0, 1024), /*required=*/false},
  });
}

std::shared_ptr<const Schema> build_topology_schema() {
  auto sw = schema_object({
      {"name", schema_string(1, 64), /*required=*/true},
      {"ports", schema_int(1, 1024), /*required=*/false},
  });
  return schema_object({
      {"kind", schema_enum({"topology"}), /*required=*/true},
      {"switches", schema_array(sw, 1, 1u << 16), /*required=*/true},
      {"canary", schema_int(1, 1 << 16), /*required=*/true},
      {"wave_size", schema_int(1, 1 << 16), /*required=*/true},
  });
}

ValidationResult semantic_contracts(const JsonValue& doc) {
  const auto& contracts = doc.find("contracts")->as_array();
  std::set<std::int64_t> seen;
  for (std::size_t i = 0; i < contracts.size(); ++i) {
    const std::string path = "/contracts/" + std::to_string(i);
    const std::int64_t tenant = contracts[i].find("tenant")->as_int();
    if (!seen.insert(tenant).second) {
      return fail(path + "/tenant",
                  "duplicate tenant id " + std::to_string(tenant));
    }
    const JsonValue* lo = contracts[i].find("rank_min");
    const JsonValue* hi = contracts[i].find("rank_max");
    const std::int64_t rank_min = lo ? lo->as_int() : 0;
    const std::int64_t rank_max = hi ? hi->as_int() : kMaxRankValue;
    if (rank_min > rank_max) {
      return fail(path, "rank_min " + std::to_string(rank_min) +
                            " > rank_max " + std::to_string(rank_max));
    }
  }
  return pass();
}

ValidationResult semantic_policy(const JsonValue& doc) {
  const std::string& text = doc.find("policy")->as_string();
  auto parsed = control::parse_grouped_policy(text);
  if (!parsed.ok()) {
    return fail("/policy", "grouped policy rejected at offset " +
                               std::to_string(parsed.error_pos) + ": " +
                               parsed.error);
  }
  if (parsed.value->empty()) {
    return fail("/policy", "grouped policy declares no groups");
  }
  return pass();
}

ValidationResult semantic_topology(const JsonValue& doc) {
  const auto& switches = doc.find("switches")->as_array();
  std::set<std::string> names;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    const std::string& name = switches[i].find("name")->as_string();
    if (!names.insert(name).second) {
      return fail("/switches/" + std::to_string(i) + "/name",
                  "duplicate switch name \"" + name + "\"");
    }
  }
  const std::int64_t canary = doc.find("canary")->as_int();
  if (canary > static_cast<std::int64_t>(switches.size())) {
    return fail("/canary", "canary cohort " + std::to_string(canary) +
                               " exceeds fleet size " +
                               std::to_string(switches.size()));
  }
  return pass();
}

}  // namespace

const Schema& document_schema(DocKind kind) {
  static const std::shared_ptr<const Schema> contracts =
      build_contracts_schema();
  static const std::shared_ptr<const Schema> policy = build_policy_schema();
  static const std::shared_ptr<const Schema> topology =
      build_topology_schema();
  switch (kind) {
    case DocKind::kContracts:
      return *contracts;
    case DocKind::kPolicy:
      return *policy;
    case DocKind::kTopology:
      return *topology;
  }
  return *contracts;
}

ValidationResult validate_document(DocKind kind, const JsonValue& doc) {
  auto structural = validate(document_schema(kind), doc);
  if (!structural.ok) return structural;
  switch (kind) {
    case DocKind::kContracts:
      return semantic_contracts(doc);
    case DocKind::kPolicy:
      return semantic_policy(doc);
    case DocKind::kTopology:
      return semantic_topology(doc);
  }
  return pass();
}

}  // namespace qv::mgmt
