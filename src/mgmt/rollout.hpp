// Canary-then-wave rollout engine (ISSUE 9 tentpole, pillar 2).
//
// Drives a policy version from the config store across the fleet
// through the staged two-phase epoch machinery:
//
//     stage -> canary wave -> probe -> wave 2 -> probe -> ... ->
//     finalize -> mark last-known-good
//
// Every wave commits through ControlPlane::commit_wave (the PR 3
// two-phase install, one shared staged epoch) with a bounded retry
// budget for unreachable switches; every gated wave is followed by
// health probes on the cohort — a miniature deterministic workload
// pushed through each switch's QvisorPort and judged by per-port SLO
// predicates (victim throughput share, victim p99 delay under a
// virtual line-rate drain clock, balanced packet books, zero epoch
// mismatches). Victims are derived from the LAST-KNOWN-GOOD policy's
// top tier, not the candidate's: a candidate that demotes the
// operator's protected tier must fail the probe, not redefine it.
//
// On probe regression or an exhausted install-retry budget the engine
// ABORTS: the staged epoch is dropped, reachable switches roll back
// immediately, and reconcile() passes heal the rest — the report then
// asserts fleet-wide plan-fingerprint equality with last-known-good
// and zero epoch mismatches. The abort path is the contract the
// rollout chaos harness exists to break.
//
// No wall-clock anywhere: `now` is simulated time advanced by the
// caller, probes run on a virtual drain clock, and the probe workload
// is seeded — the same rollout against the same fleet replays
// identically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "control/control_plane.hpp"
#include "mgmt/config_store.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace qv::mgmt {

struct ProbeConfig {
  std::uint64_t seed = 1;              ///< probe workload RNG seed
  std::size_t packets_per_tenant = 64;
  std::int32_t packet_bytes = 1000;
  BitsPerSec line_rate = 10'000'000'000;  ///< virtual drain clock rate
};

/// Per-port SLO predicates a probed switch must satisfy.
struct SloPolicy {
  /// Victim (protected-tier) share of the first half of the drain;
  /// with strict priority the protected tier drains first, so a healthy
  /// plan keeps this near 1.0.
  double min_victim_share = 0.9;
  /// Bound on the virtual-time p99 delay of victim packets.
  TimeNs p99_delay_bound = 2'000'000;  // 2 ms at the default workload
  /// enqueued == dequeued + dropped and an empty port after the drain.
  bool require_balanced_books = true;
};

struct RolloutConfig {
  std::size_t canary = 4;      ///< wave 0 size
  std::size_t wave_size = 32;  ///< subsequent waves
  /// Re-attempts of a failed wave commit before the rollout aborts.
  std::size_t wave_retry_budget = 2;
  TimeNs retry_interval = 1'000'000;  ///< simulated ns between attempts
  /// reconcile() passes the abort path may take to converge; exceeding
  /// it marks the rollout NOT converged (the contract violation).
  std::size_t heal_budget = 8;
  TimeNs heal_interval = 1'000'000;
  /// Probe every wave, not just the canary (slower, stricter).
  bool probe_every_wave = false;
  /// Victim group names; empty = derive from the LKG policy's top tier.
  std::vector<std::string> victim_groups;
  ProbeConfig probe;
  SloPolicy slo;
};

struct ProbeResult {
  std::size_t switch_index = 0;
  bool pass = false;
  std::string failure;  ///< which predicate failed, empty on pass
  double victim_share = 0.0;
  TimeNs victim_p99 = 0;
  bool balanced = false;
  std::uint64_t epoch_mismatches = 0;
};

struct WaveRecord {
  std::size_t wave = 0;  ///< 0 = canary
  std::vector<std::size_t> cohort;
  std::size_t attempts = 0;
  bool committed = false;
  bool probed = false;
  bool probe_pass = false;
  std::string error;
};

enum class RolloutOutcome : std::uint8_t {
  kCommitted = 0,  ///< finalized + marked last-known-good
  kAborted = 1,    ///< rolled back to last-known-good
  kRejected = 2,   ///< never staged (bad version / compile / precondition)
};

struct RolloutReport {
  /// kCommitted, or kAborted with converged && on_lkg: either way the
  /// fleet ends single-version on a store-tracked plan. Anything else
  /// is a contract violation.
  bool ok = false;
  RolloutOutcome outcome = RolloutOutcome::kRejected;
  std::string abort_reason;

  std::uint64_t version = 0;     ///< candidate store version id
  std::uint64_t lkg_before = 0;  ///< policy LKG id when the rollout began
  std::uint64_t lkg_after = 0;
  std::uint64_t staged_epoch = 0;
  bool incremental = false;  ///< waves used the delta patch path
  bool noop = false;         ///< candidate == deployed; nothing to do

  std::vector<WaveRecord> waves;
  std::vector<ProbeResult> probes;
  std::size_t switches_touched = 0;  ///< staged installs before abort/finish

  // Post-rollout invariants (filled for commits AND aborts).
  bool converged = false;  ///< epochs consistent within heal budget
  bool on_lkg = false;     ///< fleet fingerprint == expected plan's
  std::uint64_t fleet_fingerprint = 0;
  std::uint64_t expected_fingerprint = 0;
  std::uint64_t epoch_mismatch_packets = 0;  ///< across all probes
  std::size_t reconcile_passes = 0;          ///< abort-path heals used
};

/// Content digest of a compiled plan (per-group fingerprints + index
/// fingerprint + group count); equal digests = identical scheduling
/// behaviour.
std::uint64_t plan_fingerprint(const control::CompiledGroupPlan& plan);

/// Digest of what the fleet actually runs: per-switch plan digests in
/// switch order (0 for a switch with no group plan). Fleet-wide
/// equality with a single plan's digest == every switch runs that plan.
std::uint64_t fleet_plan_fingerprint(qvisor::Fleet& fleet);

class RolloutEngine {
 public:
  /// Injectable probe outage: switches for which this returns true fail
  /// their health probe outright (chaos hook).
  using ProbeFault = std::function<bool(std::size_t switch_index)>;

  RolloutEngine(control::ControlPlane& cp, ConfigStore& store,
                RolloutConfig config = {});

  /// Roll policy version `version_id` out to the whole fleet. `now` is
  /// simulated time; the engine advances it internally by
  /// retry/heal intervals. Preconditions: the version is an accepted
  /// policy document, and a policy LKG exists whose plan the fleet
  /// currently runs (the baseline the abort path returns to).
  RolloutReport rollout(std::uint64_t version_id, TimeNs now = 0);

  /// Probe one switch against the SLO policy (also used standalone by
  /// tests and the chaos harness).
  ProbeResult probe_switch(std::size_t switch_index);

  void set_probe_fault(ProbeFault fault) { probe_fault_ = std::move(fault); }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const RolloutConfig& config() const { return config_; }

 private:
  std::vector<std::vector<std::size_t>> plan_waves() const;
  std::vector<std::uint32_t> victim_tenants() const;
  std::vector<std::uint32_t> probe_tenants() const;
  void trace(const char* name, TimeNs ts, std::uint64_t arg) const;

  control::ControlPlane& cp_;
  ConfigStore& store_;
  RolloutConfig config_;
  ProbeFault probe_fault_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace qv::mgmt
