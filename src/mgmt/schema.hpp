// JSON-schema-style validation for management-plane documents
// (ISSUE 9 tentpole, pillar 1).
//
// The config store accepts three document kinds — tenant contracts,
// grouped policy, topology — and every accepted version must be valid
// BY CONSTRUCTION: a structurally broken document (wrong type, missing
// field, out-of-range id) is rejected at put() time, never discovered
// by a switch mid-rollout. Validation is two-layered:
//
//   1. structural — a small schema language (type, required object
//      properties, array item schema, integer ranges, string enums)
//      checked field by field with a JSON-pointer-ish error path;
//   2. semantic — cross-field rules a schema cannot express: the policy
//      text must pass parse_grouped_policy(), tenant ids must be
//      unique, switch names must be unique, cohort sizes must fit the
//      fleet.
//
// Both layers run under the config-document fuzz stage, so "validator
// crashes before it can reject" is a tested-against bug class.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "mgmt/json.hpp"

namespace qv::mgmt {

struct Schema {
  enum class Type { kObject, kArray, kString, kInt, kNumber, kBool, kAny };

  Type type = Type::kAny;

  struct Property {
    std::string name;
    std::shared_ptr<const Schema> schema;
    bool required = true;
  };
  /// Object members. Members not listed here are rejected (closed
  /// schemas: a typo'd field name must not silently validate).
  std::vector<Property> properties;

  std::shared_ptr<const Schema> items;  ///< array element schema
  std::size_t min_items = 0;
  std::size_t max_items = std::numeric_limits<std::size_t>::max();

  std::int64_t min_int = std::numeric_limits<std::int64_t>::min();
  std::int64_t max_int = std::numeric_limits<std::int64_t>::max();

  std::size_t min_len = 0;
  std::size_t max_len = std::numeric_limits<std::size_t>::max();
  std::vector<std::string> one_of;  ///< string enum (empty = any)
};

// Builders keep the document schemas below readable.
std::shared_ptr<const Schema> schema_int(
    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max = std::numeric_limits<std::int64_t>::max());
std::shared_ptr<const Schema> schema_string(
    std::size_t min_len = 0,
    std::size_t max_len = std::numeric_limits<std::size_t>::max());
std::shared_ptr<const Schema> schema_enum(std::vector<std::string> values);
std::shared_ptr<const Schema> schema_bool();
std::shared_ptr<const Schema> schema_array(
    std::shared_ptr<const Schema> items, std::size_t min_items = 0,
    std::size_t max_items = std::numeric_limits<std::size_t>::max());
std::shared_ptr<const Schema> schema_object(
    std::vector<Schema::Property> properties);

struct ValidationResult {
  bool ok = false;
  std::string path;   ///< "/contracts/3/tenant"-style location
  std::string error;  ///< empty when ok
};

/// Structural check of `value` against `schema`.
ValidationResult validate(const Schema& schema, const JsonValue& value);

// --- management-plane document kinds ---------------------------------------

enum class DocKind : std::uint8_t {
  kContracts = 0,  ///< per-tenant rate/burst/bounds contracts
  kPolicy = 1,     ///< grouped policy text (control/group_policy.hpp)
  kTopology = 2,   ///< fleet shape + rollout cohort sizing
};
inline constexpr std::size_t kDocKindCount = 3;

const char* doc_kind_name(DocKind kind);
bool parse_doc_kind(const std::string& name, DocKind* out);

/// The structural schema of one document kind (shared, immutable).
const Schema& document_schema(DocKind kind);

/// Structural + semantic validation of a full document. On failure the
/// result's `path`/`error` locate the offending field.
ValidationResult validate_document(DocKind kind, const JsonValue& doc);

}  // namespace qv::mgmt
