#include "mgmt/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qv::mgmt {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// --- serialization ----------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out += buf;
      return;
    }
    case Type::kDouble: {
      // Non-finite doubles have no JSON spelling; emit null (the same
      // convention obs::JsonWriter uses).
      if (!std::isfinite(double_)) {
        out += "null";
        return;
      }
      char buf[40];
      // %.17g round-trips every double; one fixed format keeps dump()
      // canonical.
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out += buf;
      // An integral-valued double would reparse as an int ("150E000"
      // -> 150.0 -> "150"); keep it in the double domain so the dump
      // is a parse/dump fixed point.
      if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
          std::string::npos) {
        out += ".0";
      }
      return;
    }
    case Type::kString:
      dump_string(string_, out);
      return;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull: return true;
    case JsonValue::Type::kBool: return a.bool_ == b.bool_;
    case JsonValue::Type::kInt: return a.int_ == b.int_;
    case JsonValue::Type::kDouble: return a.double_ == b.double_;
    case JsonValue::Type::kString: return a.string_ == b.string_;
    case JsonValue::Type::kArray: return a.array_ == b.array_;
    case JsonValue::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) {
      result.error = error_;
      result.error_pos = error_pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after document";
      result.error_pos = pos_;
      return result;
    }
    result.value = std::move(v);
    return result;
  }

 private:
  bool fail(const std::string& msg) {
    // Keep the FIRST error; nested unwinding must not overwrite it.
    if (error_.empty()) {
      error_ = msg;
      error_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue();
        return true;
      case 't':
        if (!literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    ++pos_;  // '['
    JsonValue::Array items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = JsonValue(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      if (members.count(key) != 0) return fail("duplicate object key");
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      members.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = JsonValue(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  void append_utf8(std::uint32_t cp, std::string& s) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return fail("invalid value");
    }
    // Leading zero must stand alone ("0", "0.5"): "007" is not JSON.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return fail("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        out = JsonValue(static_cast<std::int64_t>(v));
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    // JSON has no spelling for infinity: a magnitude that overflows
    // double ("1e50000") is rejected rather than silently saturated.
    if (!std::isfinite(d)) return fail("number out of range");
    out = JsonValue(d);
    return true;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

JsonParseResult parse_json(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace qv::mgmt
