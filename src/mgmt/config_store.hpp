// Crash-safe versioned config store (ISSUE 9 tentpole, pillar 1).
//
// Operator documents — tenant contracts, grouped policy, topology —
// live here as an append-only version chain per kind. Every put():
//
//   1. validates the document (mgmt/schema.hpp, structural + semantic);
//   2. assigns the next version id and records the current head of the
//      same kind as its PARENT — so "last-known-good" is a pointer
//      into an explicit chain, not a guess from timestamps;
//   3. durably appends a journal record (mgmt/journal.hpp framing) and
//      only then updates in-memory state and acks.
//
// Recovery = snapshot load + journal replay. Because the journal
// discards a torn final record, a store reopened from ANY crash point
// is byte-identical (serialize()) to a store that performed exactly
// the operations whose frames survive — an acked operation's frame
// always survives, so the store never loses an acked version. A write
// that persisted fully but crashed before the ack may resurface as an
// extra (unacked) version; that is the documented safe direction.
//
// compact() folds history into snapshot.json (write-temp + fsync +
// rename) and truncates the journal (also old-or-new atomically);
// replay cost is then O(ops since last compaction). A crash BETWEEN
// the snapshot rename and the journal truncation leaves both the full
// snapshot and the pre-compaction journal on disk — replay is
// idempotent over the snapshot (a put whose version is already present
// verbatim is a no-op; one that disagrees is corruption and stops
// replay), so that window recovers byte-identical too. No wall-clock
// enters the state — versions are ordered by id, and serialize() is a
// pure function of the accepted history.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mgmt/journal.hpp"
#include "mgmt/json.hpp"
#include "mgmt/schema.hpp"

namespace qv::mgmt {

struct StoreVersion {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< previous version of the SAME kind; 0 = root
  DocKind kind = DocKind::kContracts;
  std::uint64_t checksum = 0;  ///< fnv1a(doc)
  std::string doc;             ///< canonical JSON text

  /// Parse the canonical text back into a value (always succeeds for
  /// store-accepted versions).
  JsonValue parse() const;
};

struct PutResult {
  bool acked = false;
  std::uint64_t id = 0;  ///< assigned version id; 0 when not acked
  std::string error;     ///< why the put was rejected / unacked
};

class ConfigStore {
 public:
  /// Opens (creating if needed) the store rooted at directory `dir`:
  /// loads `snapshot.json` if present, then replays `journal.log` on
  /// top, truncating a torn tail.
  explicit ConfigStore(std::string dir);

  ConfigStore(const ConfigStore&) = delete;
  ConfigStore& operator=(const ConfigStore&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return dir_; }

  /// Validate + journal + commit one document version.
  PutResult put(DocKind kind, const JsonValue& doc);

  /// Move the last-known-good pointer of `id`'s kind to `id`
  /// (journaled like any other state change).
  bool mark_good(std::uint64_t id, std::string* error);

  const StoreVersion* get(std::uint64_t id) const;
  /// Newest accepted version of `kind` (nullptr if none).
  const StoreVersion* head(DocKind kind) const;
  /// Version the LKG pointer of `kind` designates (nullptr if never
  /// marked).
  const StoreVersion* last_known_good(DocKind kind) const;
  std::uint64_t lkg_id(DocKind kind) const {
    return lkg_[static_cast<std::size_t>(kind)];
  }

  std::size_t version_count() const { return versions_.size(); }
  std::uint64_t next_id() const { return next_id_; }
  std::size_t journal_bytes() const {
    return journal_ ? journal_->size_bytes() : 0;
  }
  bool journal_had_torn_tail() const {
    return journal_ && journal_->last_replay().torn_tail;
  }
  std::size_t replayed_records() const {
    return journal_ ? journal_->last_replay().records.size() : 0;
  }

  /// Fold history into snapshot.json and truncate the journal. Both
  /// steps replace files old-or-new atomically, and replay is
  /// idempotent over the snapshot, so a crash anywhere inside compact
  /// (including between the two steps) recovers byte-identical.
  bool compact(std::string* error);

  /// Canonical JSON of the full store state — the byte-identity
  /// currency of the crash-recovery contract.
  std::string serialize() const;
  std::uint64_t state_digest() const { return fnv1a(serialize()); }

  /// Crash injection (rollout chaos): the NEXT journal append persists
  /// only its first `bytes` bytes and the put/mark_good reports
  /// unacked. Reopening the store then exercises torn-tail recovery.
  void set_torn_write(std::size_t bytes) {
    if (journal_) journal_->set_torn_write(bytes);
  }

  static std::string snapshot_path(const std::string& dir);
  static std::string journal_path(const std::string& dir);

 private:
  bool journal_and_apply(const JsonValue& record, std::string* error);
  bool apply_record(const JsonValue& record, std::string* error);
  bool load_snapshot(const std::string& path);

  std::string dir_;
  std::unique_ptr<Journal> journal_;
  std::string error_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, StoreVersion> versions_;
  std::array<std::uint64_t, kDocKindCount> head_{};
  std::array<std::uint64_t, kDocKindCount> lkg_{};
};

}  // namespace qv::mgmt
