#include "mgmt/config_store.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include <unistd.h>

namespace qv::mgmt {
namespace {

bool read_text_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  return !bad;
}

bool write_text_file(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = text.empty() ||
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
  // fsync before the caller renames this over the snapshot: rename
  // atomicity is worthless if the new contents can evaporate in an OS
  // crash after the rename.
  ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0 && ok;
  std::fclose(f);
  return ok;
}

}  // namespace

JsonValue StoreVersion::parse() const {
  auto r = parse_json(doc);
  return r.ok() ? std::move(*r.value) : JsonValue();
}

std::string ConfigStore::snapshot_path(const std::string& dir) {
  return dir + "/snapshot.json";
}

std::string ConfigStore::journal_path(const std::string& dir) {
  return dir + "/journal.log";
}

ConfigStore::ConfigStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    error_ = "cannot create store directory " + dir_ + ": " + ec.message();
    return;
  }
  const std::string snap = snapshot_path(dir_);
  if (std::filesystem::exists(snap) && !load_snapshot(snap)) return;

  journal_ = std::make_unique<Journal>(journal_path(dir_));
  if (!journal_->ok()) {
    error_ = journal_->error();
    return;
  }
  for (const auto& rec : journal_->last_replay().records) {
    auto parsed = parse_json(rec);
    if (!parsed.ok()) {
      // A frame with a valid checksum but unparseable payload means the
      // writer was broken, not the disk; stop replay at the damage
      // rather than skip over it (skipping could resurrect a child
      // whose parent edit was lost).
      error_ = "journal record is not valid JSON: " + parsed.error;
      return;
    }
    std::string err;
    if (!apply_record(*parsed.value, &err)) {
      error_ = "journal replay failed: " + err;
      return;
    }
  }
}

bool ConfigStore::load_snapshot(const std::string& path) {
  std::string text;
  if (!read_text_file(path, &text)) {
    error_ = "cannot read snapshot " + path;
    return false;
  }
  auto parsed = parse_json(text);
  if (!parsed.ok()) {
    error_ = "snapshot is not valid JSON: " + parsed.error;
    return false;
  }
  const JsonValue& root = *parsed.value;
  const JsonValue* next = root.find("next_id");
  const JsonValue* versions = root.find("versions");
  const JsonValue* lkg = root.find("lkg");
  if (next == nullptr || !next->is_int() || versions == nullptr ||
      !versions->is_array() || lkg == nullptr || !lkg->is_object()) {
    error_ = "snapshot missing next_id/versions/lkg";
    return false;
  }
  next_id_ = static_cast<std::uint64_t>(next->as_int());
  for (const JsonValue& v : versions->as_array()) {
    const JsonValue* id = v.find("id");
    const JsonValue* parent = v.find("parent");
    const JsonValue* kind = v.find("kind");
    const JsonValue* doc = v.find("doc");
    DocKind k{};
    if (id == nullptr || !id->is_int() || parent == nullptr ||
        !parent->is_int() || kind == nullptr || !kind->is_string() ||
        !parse_doc_kind(kind->as_string(), &k) || doc == nullptr ||
        !doc->is_string()) {
      error_ = "snapshot version entry malformed";
      return false;
    }
    StoreVersion sv;
    sv.id = static_cast<std::uint64_t>(id->as_int());
    sv.parent = static_cast<std::uint64_t>(parent->as_int());
    sv.kind = k;
    sv.doc = doc->as_string();
    sv.checksum = fnv1a(sv.doc);
    head_[static_cast<std::size_t>(k)] = sv.id;
    versions_.emplace(sv.id, std::move(sv));
  }
  // Heads are the max id per kind, not the last array entry.
  head_.fill(0);
  for (const auto& [id, sv] : versions_) {
    head_[static_cast<std::size_t>(sv.kind)] = id;
  }
  for (const auto& [name, id] : lkg->as_object()) {
    DocKind k{};
    if (!parse_doc_kind(name, &k) || !id.is_int()) {
      error_ = "snapshot lkg entry malformed";
      return false;
    }
    lkg_[static_cast<std::size_t>(k)] =
        static_cast<std::uint64_t>(id.as_int());
  }
  return true;
}

bool ConfigStore::apply_record(const JsonValue& record, std::string* error) {
  const JsonValue* op = record.find("op");
  if (op == nullptr || !op->is_string()) {
    *error = "record missing op";
    return false;
  }
  if (op->as_string() == "put") {
    const JsonValue* id = record.find("id");
    const JsonValue* parent = record.find("parent");
    const JsonValue* kind = record.find("kind");
    const JsonValue* doc = record.find("doc");
    DocKind k{};
    if (id == nullptr || !id->is_int() || parent == nullptr ||
        !parent->is_int() || kind == nullptr || !kind->is_string() ||
        !parse_doc_kind(kind->as_string(), &k) || doc == nullptr) {
      *error = "put record malformed";
      return false;
    }
    StoreVersion sv;
    sv.id = static_cast<std::uint64_t>(id->as_int());
    sv.parent = static_cast<std::uint64_t>(parent->as_int());
    sv.kind = k;
    sv.doc = doc->dump();
    sv.checksum = fnv1a(sv.doc);
    const auto existing = versions_.find(sv.id);
    if (existing != versions_.end()) {
      // compact() can crash after renaming the snapshot into place but
      // before truncating the journal; on reopen, every pre-compaction
      // put then replays over a snapshot that already contains it.
      // Replay must be idempotent across that window: a record whose
      // version is already present verbatim is a no-op. A record that
      // DISAGREES with the stored version is writer corruption, and
      // replay stops at the damage.
      const StoreVersion& have = existing->second;
      if (have.kind == sv.kind && have.parent == sv.parent &&
          have.doc == sv.doc) {
        return true;
      }
      *error = "conflicting duplicate version id " + std::to_string(sv.id);
      return false;
    }
    head_[static_cast<std::size_t>(k)] = sv.id;
    if (sv.id >= next_id_) next_id_ = sv.id + 1;
    versions_.emplace(sv.id, std::move(sv));
    return true;
  }
  if (op->as_string() == "lkg") {
    const JsonValue* id = record.find("id");
    const JsonValue* kind = record.find("kind");
    DocKind k{};
    if (id == nullptr || !id->is_int() || kind == nullptr ||
        !kind->is_string() || !parse_doc_kind(kind->as_string(), &k)) {
      *error = "lkg record malformed";
      return false;
    }
    const auto vid = static_cast<std::uint64_t>(id->as_int());
    if (versions_.count(vid) == 0) {
      *error = "lkg points at unknown version " + std::to_string(vid);
      return false;
    }
    lkg_[static_cast<std::size_t>(k)] = vid;
    return true;
  }
  *error = "unknown op \"" + op->as_string() + "\"";
  return false;
}

bool ConfigStore::journal_and_apply(const JsonValue& record,
                                    std::string* error) {
  if (journal_ == nullptr || !journal_->ok()) {
    *error = "journal unavailable";
    return false;
  }
  // Durability before visibility: the frame must be on disk before the
  // in-memory state (and therefore the caller's ack) reflects it.
  if (!journal_->append(record.dump())) {
    *error = journal_->error().empty() ? "journal append failed (unacked)"
                                       : journal_->error();
    return false;
  }
  return apply_record(record, error);
}

PutResult ConfigStore::put(DocKind kind, const JsonValue& doc) {
  PutResult result;
  if (!ok()) {
    result.error = error_;
    return result;
  }
  auto validation = validate_document(kind, doc);
  if (!validation.ok) {
    result.error = "invalid " + std::string(doc_kind_name(kind)) +
                   " document at " +
                   (validation.path.empty() ? "/" : validation.path) + ": " +
                   validation.error;
    return result;
  }
  JsonValue record = JsonValue::make_object();
  record.set("op", JsonValue("put"));
  record.set("id", JsonValue(next_id_));
  record.set("parent", JsonValue(head_[static_cast<std::size_t>(kind)]));
  record.set("kind", JsonValue(doc_kind_name(kind)));
  record.set("doc", doc);
  std::string err;
  if (!journal_and_apply(record, &err)) {
    result.error = err;
    return result;
  }
  result.acked = true;
  result.id = next_id_ - 1;
  return result;
}

bool ConfigStore::mark_good(std::uint64_t id, std::string* error) {
  if (!ok()) {
    if (error) *error = error_;
    return false;
  }
  const auto it = versions_.find(id);
  if (it == versions_.end()) {
    if (error) *error = "unknown version " + std::to_string(id);
    return false;
  }
  JsonValue record = JsonValue::make_object();
  record.set("op", JsonValue("lkg"));
  record.set("id", JsonValue(id));
  record.set("kind", JsonValue(doc_kind_name(it->second.kind)));
  std::string err;
  if (!journal_and_apply(record, &err)) {
    if (error) *error = err;
    return false;
  }
  return true;
}

const StoreVersion* ConfigStore::get(std::uint64_t id) const {
  const auto it = versions_.find(id);
  return it == versions_.end() ? nullptr : &it->second;
}

const StoreVersion* ConfigStore::head(DocKind kind) const {
  return get(head_[static_cast<std::size_t>(kind)]);
}

const StoreVersion* ConfigStore::last_known_good(DocKind kind) const {
  return get(lkg_[static_cast<std::size_t>(kind)]);
}

std::string ConfigStore::serialize() const {
  JsonValue root = JsonValue::make_object();
  root.set("next_id", JsonValue(next_id_));
  JsonValue lkg = JsonValue::make_object();
  for (std::size_t k = 0; k < kDocKindCount; ++k) {
    if (lkg_[k] != 0) {
      lkg.set(doc_kind_name(static_cast<DocKind>(k)), JsonValue(lkg_[k]));
    }
  }
  root.set("lkg", std::move(lkg));
  JsonValue versions = JsonValue::make_array();
  for (const auto& [id, sv] : versions_) {
    (void)id;
    JsonValue v = JsonValue::make_object();
    v.set("id", JsonValue(sv.id));
    v.set("parent", JsonValue(sv.parent));
    v.set("kind", JsonValue(doc_kind_name(sv.kind)));
    v.set("doc", JsonValue(sv.doc));
    versions.as_array().push_back(std::move(v));
  }
  root.set("versions", std::move(versions));
  return root.dump();
}

bool ConfigStore::compact(std::string* error) {
  if (!ok()) {
    if (error) *error = error_;
    return false;
  }
  const std::string snap = snapshot_path(dir_);
  const std::string tmp = snap + ".tmp";
  if (!write_text_file(tmp, serialize())) {
    if (error) *error = "cannot write " + tmp;
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, snap, ec);
  if (ec) {
    if (error) *error = "cannot rename snapshot: " + ec.message();
    return false;
  }
  if (!journal_->rewrite({})) {
    if (error) *error = journal_->error();
    return false;
  }
  return true;
}

}  // namespace qv::mgmt
