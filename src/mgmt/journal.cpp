#include "mgmt/journal.hpp"

#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include "mgmt/json.hpp"

namespace qv::mgmt {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[at])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 3]))
          << 24);
}

std::uint64_t get_u64(std::string_view in, std::size_t at) {
  return static_cast<std::uint64_t>(get_u32(in, at)) |
         (static_cast<std::uint64_t>(get_u32(in, at + 4)) << 32);
}

bool read_file(const std::string& path, std::string* out,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path + " for read";
    return false;
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    *error = "read error on " + path;
    return false;
  }
  return true;
}

// fflush only drains stdio buffers into the kernel page cache; fsync
// pushes the page cache to the device so the bytes survive an OS or
// power crash, not just a process crash.
bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
  return ::fsync(::fileno(f)) == 0;
}

bool write_file_truncate(const std::string& path, std::string_view bytes,
                         std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open " + path + " for write";
    return false;
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = flush_and_sync(f) && ok;
  std::fclose(f);
  if (!ok) *error = "write error on " + path;
  return ok;
}

// Replace `path` with `bytes` old-or-new atomically: write + fsync a
// temp file in the same directory, then rename over the target. A
// crash at any point leaves either the previous contents or the new
// ones, never a torn mix.
bool replace_file_atomic(const std::string& path, std::string_view bytes,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  if (!write_file_truncate(tmp, bytes, error)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    *error = "cannot rename " + tmp + " over " + path + ": " + ec.message();
    return false;
  }
  return true;
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
  put_u32(out, kJournalMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, fnv1a(payload));
  out.append(payload);
}

JournalReplay scan_frames(std::string_view image) {
  JournalReplay r;
  std::size_t at = 0;
  while (at + kJournalHeaderBytes <= image.size()) {
    if (get_u32(image, at) != kJournalMagic) break;
    const std::uint32_t len = get_u32(image, at + 4);
    if (len > kJournalMaxPayload) break;
    const std::uint64_t want = get_u64(image, at + 8);
    const std::size_t body = at + kJournalHeaderBytes;
    if (body + len > image.size()) break;  // length runs past EOF: torn
    const std::string_view payload = image.substr(body, len);
    if (fnv1a(payload) != want) break;  // checksum mismatch: torn/corrupt
    r.records.emplace_back(payload);
    at = body + len;
  }
  r.valid_bytes = at;
  r.torn_tail = at != image.size();
  return r;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  std::string image;
  if (!std::filesystem::exists(path_)) {
    std::string err;
    if (!write_file_truncate(path_, "", &err)) error_ = err;
    return;
  }
  std::string err;
  if (!read_file(path_, &image, &err)) {
    error_ = err;
    return;
  }
  replay_ = scan_frames(image);
  size_bytes_ = replay_.valid_bytes;
  if (replay_.torn_tail) {
    // Truncate back to the last complete frame so the next append
    // starts on a clean boundary instead of extending garbage. Done
    // old-or-new so a crash mid-truncation cannot make things worse.
    if (!replace_file_atomic(path_, image.substr(0, replay_.valid_bytes),
                             &err)) {
      error_ = err;
    }
  }
}

bool Journal::write_bytes(std::string_view bytes) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    error_ = "cannot open " + path_ + " for append";
    return false;
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = flush_and_sync(f) && ok;
  std::fclose(f);
  if (!ok) error_ = "append error on " + path_;
  return ok;
}

bool Journal::append(std::string_view payload) {
  if (!error_.empty()) return false;
  std::string frame;
  frame.reserve(kJournalHeaderBytes + payload.size());
  append_frame(frame, payload);

  if (torn_write_armed_) {
    // Simulated crash: part of the frame reaches disk, then the
    // process "dies" before the ack. The caller sees failure; the next
    // open sees a torn tail.
    torn_write_armed_ = false;
    const std::size_t n = std::min(torn_write_bytes_, frame.size());
    (void)write_bytes(std::string_view(frame).substr(0, n));
    // Latch: replay stops at the first bad frame, so a valid frame
    // appended past the torn tail would be unrecoverable. No append
    // may land until recovery (reopen, or rewrite) restores a clean
    // tail — the same rule the real-failure path below enforces via
    // the error_ set by write_bytes.
    error_ = "journal tail torn by failed append on " + path_ +
             "; reopen to recover";
    return false;
  }

  if (!write_bytes(frame)) return false;  // error_ latched by write_bytes
  size_bytes_ += frame.size();
  return true;
}

bool Journal::rewrite(const std::vector<std::string>& records) {
  std::string image;
  for (const auto& rec : records) append_frame(image, rec);
  std::string err;
  if (!replace_file_atomic(path_, image, &err)) {
    if (error_.empty()) error_ = err;
    return false;
  }
  size_bytes_ = image.size();
  // The file now holds exactly `records` with a clean tail, so a latch
  // from an earlier failed append no longer describes the disk state.
  error_.clear();
  return true;
}

}  // namespace qv::mgmt
