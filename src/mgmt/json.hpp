// Minimal JSON document model for the management plane (ISSUE 9).
//
// The config store persists operator documents (tenant contracts,
// grouped policies, topology) as JSON, and the journal's crash-recovery
// contract is BYTE-IDENTICAL replay — so the representation must have
// one canonical serialization. JsonValue gets that by construction:
// objects are sorted maps (key order cannot leak insertion history),
// dump() emits no whitespace, and doubles print through one fixed
// format. parse(dump(v)) == v for every value, and dump(parse(t)) is a
// canonical form of t.
//
// Deliberately small: null/bool/int64/double/string/array/object, a
// depth-limited recursive-descent parser with position-carrying errors
// (the config-document fuzz stage drives exactly this surface), and
// nothing else. Not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qv::mgmt {

class JsonValue {
 public:
  enum class Type {
    kNull,
    kBool,
    kInt,     ///< exact 64-bit integers (version ids, tenant ids, rates)
    kDouble,  ///< anything with a fraction or exponent
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  /// Sorted by key — this is what makes dump() canonical.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(std::int64_t i) : type_(Type::kInt), int_(i) {}
  JsonValue(int i) : type_(Type::kInt), int_(i) {}
  JsonValue(std::uint64_t u)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : type_(Type::kDouble), double_(d) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static JsonValue make_array() { return JsonValue(Array{}); }
  static JsonValue make_object() { return JsonValue(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  /// Numeric value regardless of int/double representation.
  double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  /// Set an object member (value must be an object).
  void set(std::string key, JsonValue v) {
    object_.insert_or_assign(std::move(key), std::move(v));
  }

  /// Canonical serialization: sorted object keys, no whitespace, fixed
  /// double format. The byte-identity contract of the store rests on
  /// dump() being a pure function of the value.
  std::string dump() const;
  void dump_to(std::string& out) const;

  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

struct JsonParseResult {
  std::optional<JsonValue> value;
  std::string error;
  std::size_t error_pos = 0;  ///< byte offset into the input

  bool ok() const { return value.has_value(); }
};

/// Strict parse of one JSON document (trailing garbage is an error).
/// `max_depth` bounds nesting so fuzzed "[[[[..." cannot blow the
/// stack. Duplicate object keys are an error (a duplicate would make
/// dump() silently drop data).
JsonParseResult parse_json(std::string_view text, std::size_t max_depth = 64);

/// FNV-1a over a byte string — the checksum the journal frames records
/// with and the store fingerprints documents with.
std::uint64_t fnv1a(std::string_view bytes);

}  // namespace qv::mgmt
