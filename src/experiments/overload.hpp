// Overload / adversarial-tenant harness (robustness): a leaf-spine
// fabric where two well-behaved tenants (gold, silver) share a
// bottleneck with an attacker running one of the AdversarySource modes
// (flooder, rank gamer, tenant-id churner, burst herd).
//
// The harness runs the SAME seed twice — attack-free baseline, then
// with the attacker — and checks the isolation contract the admission
// guard promises:
//   1. packet conservation (offered = delivered + dropped + buffered +
//      unrouted), including the guard's own books: offered packets =
//      admitted + rate/share/quantile drops at every port, and the
//      pre-processor's per-tenant tallies + evicted tallies + degraded
//      passthroughs = processed.
//   2. isolation envelope — each victim keeps >= `victim_throughput_frac`
//      of its attack-free throughput and its p99 packet latency stays
//      <= `victim_p99_factor` x the attack-free p99.
//   3. the attacker is throttled to its contract (admitted rate <=
//      `attacker_rate_factor` x contracted rate + burst) and — when it
//      is identifiable (not id-churning) — quarantined through the
//      Monitor -> FleetController hysteresis path.
//   4. bounded state — spill-counter maps and monitor tenant tables
//      stay within their caps even under id churn.
#pragma once

#include <cstdint>
#include <string>

#include "trafficgen/adversary_source.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qv::obs {
struct Observability;
}

namespace qv::experiments {

struct OverloadConfig {
  std::uint64_t seed = 1;
  trafficgen::AdversaryMode mode = trafficgen::AdversaryMode::kFlooder;
  bool guard = true;  ///< false = unprotected data plane (demonstration)

  // Topology: 2 leaves x 2 spines, 2 hosts per leaf. Victims h0 (gold)
  // and h1 (silver) send cross-leaf to h3; the attacker h2 sends
  // same-leaf to h3, so the leaf1 -> h3 access downlink is the
  // contended port.
  BitsPerSec access_rate = gbps(1);
  BitsPerSec fabric_rate = gbps(4);
  TimeNs link_delay = microseconds(1);

  // Victim workload (identical in both runs).
  BitsPerSec victim_rate = mbps(300);
  std::int32_t packet_bytes = 1000;
  TimeNs traffic_stop = milliseconds(50);
  TimeNs end = milliseconds(60);  ///< drain horizon (then run to empty)

  // Attack: well above the attacker's contracted rate.
  BitsPerSec attack_rate = mbps(800);
  BitsPerSec attacker_contract_rate = mbps(100);
  /// Contracted burst (token-bucket depth). Deliberately tighter than
  /// the library default: an admitted burst rides at the attacker's
  /// claimed rank, so the burst depth bounds how far a rank-gamer can
  /// push ahead of its band-mates before the quarantine lands.
  std::int64_t attacker_burst_bytes = 15'000;
  TimeNs attack_start = milliseconds(5);
  TimeNs attack_stop = milliseconds(45);

  // Admission-guard shape (see qvisor::AdmissionSettings).
  std::int64_t port_buffer_bytes = 262'144;
  double share_headroom = 2.0;
  std::uint32_t rank_window = 64;
  double aifo_k = 0.1;

  // Controller cadence.
  TimeNs tick_interval = milliseconds(1);
  TimeNs activity_window = milliseconds(5);
  TimeNs quarantine_clean_window = milliseconds(20);

  // Isolation envelope.
  double victim_throughput_frac = 0.9;  ///< of attack-free bytes
  double victim_p99_factor = 1.5;       ///< of attack-free p99 latency
  /// Absolute slack on the p99 envelope: at microsecond-scale baselines
  /// a pure multiplicative bound would sit below one queued packet.
  TimeNs victim_p99_slack = microseconds(100);
  double attacker_rate_factor = 1.3;    ///< of contract bytes + burst

  /// Optional instrumentation (not owned).
  /// Run on the pre-overhaul simulation core (heap event ordering +
  /// per-packet link events) — the differential-testing reference.
  bool per_event_simcore = false;

  obs::Observability* obs = nullptr;
};

struct OverloadTenantStats {
  std::uint64_t offered_pkts = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_pkts = 0;
  std::uint64_t delivered_bytes = 0;
  TimeNs p99_latency = 0;  ///< per-packet src->sink latency, 99th pct
};

/// One simulation run (baseline runs have no attacker).
struct OverloadRun {
  OverloadTenantStats gold;
  OverloadTenantStats silver;
  OverloadTenantStats attacker;

  // Network-level conservation.
  std::uint64_t offered_pkts = 0;
  std::uint64_t delivered_pkts = 0;
  std::uint64_t queue_dropped_pkts = 0;
  std::uint64_t buffered_pkts = 0;
  std::uint64_t unrouted_pkts = 0;
  bool conserved = false;

  // Admission-guard books, aggregated over every port.
  std::uint64_t guard_offered = 0;
  std::uint64_t guard_admitted = 0;
  std::uint64_t guard_rate_dropped = 0;
  std::uint64_t guard_share_dropped = 0;
  std::uint64_t guard_quantile_dropped = 0;
  std::uint64_t attacker_admitted_bytes = 0;
  bool guard_balanced = false;  ///< offered == admitted + dropped

  // Pre-processor books, aggregated over every port.
  std::uint64_t pre_processed = 0;
  std::uint64_t pre_admission_dropped = 0;
  std::uint64_t pre_rank_clamped = 0;
  std::uint64_t spill_evictions = 0;
  std::uint64_t spill_evicted_packets = 0;
  std::size_t max_spill_tracked = 0;  ///< across ports (cap check)
  bool accounting_balanced = false;   ///< per-tenant + evicted == processed

  // Monitor / controller activity.
  std::size_t max_tracked_tenants = 0;  ///< across switches (cap check)
  std::uint64_t untracked_observations = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t unquarantines = 0;
  std::uint64_t adaptations = 0;
};

struct OverloadResult {
  OverloadRun baseline;  ///< attack-free, same seed
  OverloadRun attack;

  bool victims_throughput_ok = false;
  bool victims_latency_ok = false;
  bool attacker_throttled = false;
  bool attacker_quarantined = false;  ///< only asserted when identifiable
  bool state_bounded = false;
  bool ok = false;  ///< all of the above plus both runs' conservation
};

/// Run baseline + attack and evaluate the isolation contract. Only the
/// attack run is instrumented through `config.obs`.
OverloadResult run_overload(const OverloadConfig& config);

}  // namespace qv::experiments
