#include "experiments/rollout_chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "exec/sweep.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "qvisor/backend.hpp"
#include "util/random.hpp"

namespace qv::experiments {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

/// The random kind resolves to one concrete behaviour per seed, so a
/// failing random cell replays from its summary line alone.
RolloutFaultKind resolve_kind(RolloutFaultKind kind, std::uint64_t seed) {
  if (kind != RolloutFaultKind::kRandom) return kind;
  Rng rng(SplitMix64(seed ^ 0x9051c4a05f00d001ull).next());
  switch (rng.next_below(4)) {
    case 0: return RolloutFaultKind::kClean;
    case 1: return RolloutFaultKind::kUnreachable;
    case 2: return RolloutFaultKind::kCanarySlo;
    default: return RolloutFaultKind::kStoreCrash;
  }
}

// --- operator documents ---------------------------------------------------
//
// Three tenant classes with one representative each (the probe
// workload's tenants): gold is the protected tier the SLO defends.

constexpr char kPolicyV1[] =
    "group gold   = 0..15 bounds 0..255\n"
    "group silver = 16..63\n"
    "group bronze = 64..127\n"
    "policy gold >> silver + bronze\n";

/// Benign candidate: bronze grows, tier layout unchanged — the
/// incremental wave path.
constexpr char kPolicyV2Good[] =
    "group gold   = 0..15 bounds 0..255\n"
    "group silver = 16..63\n"
    "group bronze = 64..191\n"
    "policy gold >> silver + bronze\n";

/// Regressing candidate: the protected tier demoted to the bottom.
/// Victims still come from the LKG top tier (gold), so the canary
/// probe's victim share collapses and the rollout must abort.
constexpr char kPolicyV2Bad[] =
    "group gold   = 0..15 bounds 0..255\n"
    "group silver = 16..63\n"
    "group bronze = 64..127\n"
    "policy silver + bronze >> gold\n";

mgmt::JsonValue contracts_doc() {
  mgmt::JsonValue::Array arr;
  for (const std::uint32_t tenant : {0u, 16u, 64u}) {
    mgmt::JsonValue c = mgmt::JsonValue::make_object();
    c.set("tenant", mgmt::JsonValue(static_cast<std::int64_t>(tenant)));
    c.set("rank_min", mgmt::JsonValue(std::int64_t{0}));
    c.set("rank_max", mgmt::JsonValue(std::int64_t{1023}));
    c.set("max_rate", mgmt::JsonValue(std::int64_t{0}));  // unpoliced
    arr.push_back(std::move(c));
  }
  mgmt::JsonValue doc = mgmt::JsonValue::make_object();
  doc.set("kind", mgmt::JsonValue("contracts"));
  doc.set("contracts", mgmt::JsonValue(std::move(arr)));
  return doc;
}

mgmt::JsonValue topology_doc(const RolloutChaosConfig& config) {
  mgmt::JsonValue::Array switches;
  for (std::size_t i = 0; i < config.switches; ++i) {
    mgmt::JsonValue sw = mgmt::JsonValue::make_object();
    sw.set("name", mgmt::JsonValue("sw" + std::to_string(i)));
    switches.push_back(std::move(sw));
  }
  mgmt::JsonValue doc = mgmt::JsonValue::make_object();
  doc.set("kind", mgmt::JsonValue("topology"));
  doc.set("switches", mgmt::JsonValue(std::move(switches)));
  doc.set("canary",
          mgmt::JsonValue(static_cast<std::int64_t>(config.canary)));
  doc.set("wave_size",
          mgmt::JsonValue(static_cast<std::int64_t>(config.wave_size)));
  return doc;
}

mgmt::JsonValue policy_doc(const char* text, const char* description) {
  mgmt::JsonValue doc = mgmt::JsonValue::make_object();
  doc.set("kind", mgmt::JsonValue("policy"));
  doc.set("policy", mgmt::JsonValue(text));
  doc.set("description", mgmt::JsonValue(description));
  return doc;
}

}  // namespace

const char* rollout_fault_kind_slug(RolloutFaultKind k) {
  switch (k) {
    case RolloutFaultKind::kClean: return "clean";
    case RolloutFaultKind::kUnreachable: return "unreachable";
    case RolloutFaultKind::kCanarySlo: return "canary-slo";
    case RolloutFaultKind::kStoreCrash: return "store-crash";
    case RolloutFaultKind::kRandom: return "random";
  }
  return "unknown";
}

bool parse_rollout_fault_kind(const std::string& name,
                              RolloutFaultKind* out) {
  for (const RolloutFaultKind k : rollout_all_fault_kinds()) {
    if (name == rollout_fault_kind_slug(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::vector<RolloutFaultKind> rollout_all_fault_kinds() {
  return {RolloutFaultKind::kClean, RolloutFaultKind::kUnreachable,
          RolloutFaultKind::kCanarySlo, RolloutFaultKind::kStoreCrash,
          RolloutFaultKind::kRandom};
}

RolloutChaosResult run_rollout_chaos(const RolloutChaosConfig& config,
                                     const std::string& metrics_path,
                                     const std::string& trace_path) {
  if (config.store_dir.empty()) {
    throw std::runtime_error("rollout_chaos: store_dir is required");
  }
  const RolloutFaultKind kind = resolve_kind(config.kind, config.seed);
  RolloutChaosResult out;

  // Fresh store per cell: the contract compares against exactly the
  // documents this run accepts.
  std::error_code ec;
  std::filesystem::remove_all(config.store_dir, ec);
  auto store = std::make_unique<mgmt::ConfigStore>(config.store_dir);
  if (!store->ok()) {
    throw std::runtime_error("rollout_chaos: store open failed: " +
                             store->error());
  }

  const auto must_put = [&store](mgmt::DocKind k, const mgmt::JsonValue& doc) {
    const mgmt::PutResult pr = store->put(k, doc);
    if (!pr.acked) {
      throw std::runtime_error("rollout_chaos: seed document rejected: " +
                               pr.error);
    }
    return pr.id;
  };
  must_put(mgmt::DocKind::kContracts, contracts_doc());
  must_put(mgmt::DocKind::kTopology, topology_doc(config));
  out.baseline_version =
      must_put(mgmt::DocKind::kPolicy, policy_doc(kPolicyV1, "baseline"));
  std::string err;
  if (!store->mark_good(out.baseline_version, &err)) {
    throw std::runtime_error("rollout_chaos: cannot mark baseline LKG: " +
                             err);
  }

  // Build the fleet FROM the store's documents (the read path the
  // management plane actually serves).
  const mgmt::StoreVersion* topo = store->head(mgmt::DocKind::kTopology);
  const mgmt::JsonValue topo_doc = topo->parse();
  qvisor::Fleet fleet({}, qvisor::OperatorPolicy{},
                      std::make_shared<qvisor::PifoBackend>());
  for (const auto& sw : topo_doc.find("switches")->as_array()) {
    fleet.add_switch(sw.find("name")->as_string());
  }
  const mgmt::JsonValue contracts_parsed =
      store->head(mgmt::DocKind::kContracts)->parse();
  for (const auto& c : contracts_parsed.find("contracts")->as_array()) {
    qvisor::TenantContract tc;
    tc.tenant = static_cast<TenantId>(c.find("tenant")->as_int());
    if (const auto* v = c.find("rank_min")) {
      tc.rank_min = static_cast<Rank>(v->as_int());
    }
    if (const auto* v = c.find("rank_max")) {
      tc.rank_max = static_cast<Rank>(v->as_int());
    }
    if (const auto* v = c.find("max_rate")) tc.max_rate = v->as_int();
    if (const auto* v = c.find("burst_bytes")) {
      tc.burst_bytes = v->as_int();
    }
    fleet.set_contract(tc);
  }

  obs::Tracer tracer(1u << 16);
  tracer.set_mask(obs::trace_bit(obs::TraceCategory::kMgmt) |
                  obs::trace_bit(obs::TraceCategory::kRuntime));
  fleet.set_tracer(&tracer);

  control::ControlPlane cp(fleet);
  const mgmt::JsonValue v1 =
      store->get(out.baseline_version)->parse();
  const auto boot = cp.deploy_text(v1.find("policy")->as_string());
  if (!boot.ok) {
    throw std::runtime_error("rollout_chaos: bootstrap deploy failed: " +
                             boot.error);
  }

  // --- put the candidate (pillar-3 fault site #3: store crash) ----------
  const char* v2_text =
      kind == RolloutFaultKind::kCanarySlo ? kPolicyV2Bad : kPolicyV2Good;
  const mgmt::JsonValue v2 = policy_doc(v2_text, "candidate");
  bool crash_unacked = false;
  bool crash_torn_seen = false;
  out.store_recovery_identical = true;
  if (kind == RolloutFaultKind::kStoreCrash) {
    // Crash between journal append and commit-ack: only the first
    // 1..63 bytes of the frame persist (the header alone is 16, so the
    // tail is always torn, never merely missing).
    const std::string before = store->serialize();
    store->set_torn_write(1 + config.seed % 63);
    const mgmt::PutResult torn = store->put(mgmt::DocKind::kPolicy, v2);
    crash_unacked = !torn.acked;
    // Reopen from the crash point: replay must discard the torn tail
    // and land byte-identical to the last acked state.
    store.reset();
    store = std::make_unique<mgmt::ConfigStore>(config.store_dir);
    crash_torn_seen = store->journal_had_torn_tail();
    out.store_recovery_identical =
        store->ok() && store->serialize() == before;
  }
  const mgmt::PutResult put2 = store->put(mgmt::DocKind::kPolicy, v2);
  if (!put2.acked) {
    throw std::runtime_error("rollout_chaos: candidate put rejected: " +
                             put2.error);
  }
  out.candidate_version = put2.id;

  // --- install fault (pillar-3 fault site #1: unreachable switch) -------
  // Reject the first K install RPCs to one non-canary switch. The wave
  // loop makes wave_retry_budget + 1 attempts, one install call per
  // attempt, so K <= budget commits on a retry and K > budget aborts.
  const std::size_t budget = config.wave_retry_budget;
  auto rejections = std::make_shared<std::uint64_t>(0);
  bool expect_commit = true;
  if (kind == RolloutFaultKind::kUnreachable) {
    const std::size_t target =
        config.canary + config.seed % (config.switches - config.canary);
    const std::uint64_t reject_calls = 1 + config.seed % (budget + 2);
    expect_commit = reject_calls <= budget;
    fleet.set_install_fault(
        [target, reject_calls, rejections](std::size_t idx, std::uint64_t) {
          if (idx != target) return false;
          if (*rejections >= reject_calls) return false;
          ++*rejections;
          return true;
        });
  } else if (kind == RolloutFaultKind::kCanarySlo) {
    expect_commit = false;
  }

  mgmt::RolloutConfig rcfg;
  rcfg.canary = static_cast<std::size_t>(topo_doc.find("canary")->as_int());
  rcfg.wave_size =
      static_cast<std::size_t>(topo_doc.find("wave_size")->as_int());
  rcfg.wave_retry_budget = budget;
  rcfg.probe.seed = config.seed;
  mgmt::RolloutEngine engine(cp, *store, rcfg);
  engine.set_tracer(&tracer);

  out.report = engine.rollout(out.candidate_version);
  out.install_rejections = *rejections;
  out.expected_commit = expect_commit;
  out.final_lkg = store->lkg_id(mgmt::DocKind::kPolicy);
  out.store_versions = store->version_count();

  // --- verdicts ----------------------------------------------------------
  const mgmt::RolloutReport& rep = out.report;
  const bool committed = rep.outcome == mgmt::RolloutOutcome::kCommitted;
  const bool aborted = rep.outcome == mgmt::RolloutOutcome::kAborted;
  out.outcome_as_expected =
      rep.ok && (expect_commit ? committed : aborted);
  out.single_version =
      rep.converged && rep.on_lkg && !fleet.has_staged();
  out.canary_gated =
      kind != RolloutFaultKind::kCanarySlo ||
      (aborted && rep.waves.size() == 1 &&
       rep.switches_touched <= rcfg.canary);
  out.lkg_pointer_correct =
      out.final_lkg ==
      (committed ? out.candidate_version : out.baseline_version);
  if (kind == RolloutFaultKind::kStoreCrash) {
    out.store_recovery_identical =
        out.store_recovery_identical && crash_unacked && crash_torn_seen;
  }
  out.zero_epoch_mismatches = rep.epoch_mismatch_packets == 0;
  switch (kind) {
    case RolloutFaultKind::kClean:
      out.activity_seen = committed && rep.waves.size() > 1 &&
                          !rep.probes.empty();
      break;
    case RolloutFaultKind::kUnreachable:
      out.activity_seen = out.install_rejections >= 1;
      break;
    case RolloutFaultKind::kCanarySlo: {
      bool probe_failed = false;
      for (const auto& p : rep.probes) probe_failed |= !p.pass;
      out.activity_seen = probe_failed;
      break;
    }
    case RolloutFaultKind::kStoreCrash:
      out.activity_seen = crash_unacked && crash_torn_seen;
      break;
    case RolloutFaultKind::kRandom:
      break;  // resolved above
  }
  out.ok = out.outcome_as_expected && out.single_version &&
           out.canary_gated && out.lkg_pointer_correct &&
           out.store_recovery_identical && out.zero_epoch_mismatches &&
           out.activity_seen;

  if (!metrics_path.empty()) {
    obs::Registry reg;
    fleet.export_metrics(reg, "fleet");
    cp.export_metrics(reg, "control");
    reg.set_gauge("store.versions",
                  static_cast<double>(out.store_versions));
    reg.set_gauge("store.journal_bytes",
                  static_cast<double>(store->journal_bytes()));
    reg.set_gauge("store.lkg_policy", static_cast<double>(out.final_lkg));
    reg.set_gauge("rollout.waves", static_cast<double>(rep.waves.size()));
    reg.set_gauge("rollout.probes", static_cast<double>(rep.probes.size()));
    reg.set_gauge("rollout.switches_touched",
                  static_cast<double>(rep.switches_touched));
    reg.set_gauge("rollout.reconcile_passes",
                  static_cast<double>(rep.reconcile_passes));
    obs::save_metrics_json(metrics_path, reg);
  }
  if (!trace_path.empty()) {
    obs::save_trace_json(trace_path, tracer);
  }
  return out;
}

std::vector<RolloutChaosCell> run_rollout_chaos_sweep(
    const RolloutChaosSweepConfig& sweep) {
  const std::size_t cells = sweep.kinds.size() * sweep.seeds.size();
  auto outs = exec::run_sweep<RolloutChaosCell>(
      cells,
      [&sweep](std::size_t i) {
        const RolloutFaultKind kind = sweep.kinds[i / sweep.seeds.size()];
        const std::uint64_t seed = sweep.seeds[i % sweep.seeds.size()];
        RolloutChaosCell cell;
        cell.stem =
            sweep.out_dir + "/rollout_" + rollout_fault_kind_slug(kind);
        if (sweep.seeds.size() > 1) {
          cell.stem += "_s" + std::to_string(seed);
        }

        RolloutChaosConfig config = sweep.base;
        config.kind = kind;
        config.seed = seed;
        config.store_dir = cell.stem + "_store";
        cell.result = run_rollout_chaos(config, cell.stem + "_metrics.json",
                                        cell.stem + "_trace.json");
        cell.ok = cell.result.ok;

        const RolloutChaosResult& r = cell.result;
        const mgmt::RolloutReport& rep = r.report;
        std::string& s = cell.summary;
        appendf(s, "rollout %s (seed %llu)\n", rollout_fault_kind_slug(kind),
                static_cast<unsigned long long>(seed));
        appendf(s,
                "  v%llu -> v%llu: %s after %zu waves, %zu probes, "
                "%zu switches touched (expected %s: %s)\n",
                static_cast<unsigned long long>(r.baseline_version),
                static_cast<unsigned long long>(r.candidate_version),
                rep.outcome == mgmt::RolloutOutcome::kCommitted
                    ? "COMMITTED"
                    : rep.outcome == mgmt::RolloutOutcome::kAborted
                          ? "ABORTED"
                          : "REJECTED",
                rep.waves.size(), rep.probes.size(), rep.switches_touched,
                r.expected_commit ? "commit" : "abort",
                r.outcome_as_expected ? "yes" : "NO");
        if (!rep.abort_reason.empty()) {
          appendf(s, "  abort reason: %s\n", rep.abort_reason.c_str());
        }
        appendf(s,
                "  single-version: %s (fleet digest %016llx, expected plan "
                "fp %016llx, %zu reconcile passes), canary-gated: %s\n",
                r.single_version ? "yes" : "NO",
                static_cast<unsigned long long>(rep.fleet_fingerprint),
                static_cast<unsigned long long>(rep.expected_fingerprint),
                rep.reconcile_passes, r.canary_gated ? "yes" : "NO");
        appendf(s,
                "  lkg pointer v%llu (correct: %s), store recovery "
                "identical: %s, epoch-mismatch packets %llu (zero: %s), "
                "install rejects %llu, activity: %s\n",
                static_cast<unsigned long long>(r.final_lkg),
                r.lkg_pointer_correct ? "yes" : "NO",
                r.store_recovery_identical ? "yes" : "NO",
                static_cast<unsigned long long>(rep.epoch_mismatch_packets),
                r.zero_epoch_mismatches ? "yes" : "NO",
                static_cast<unsigned long long>(r.install_rejections),
                r.activity_seen ? "yes" : "NO");
        appendf(s, "  artifacts: %s_{metrics.json,trace.json,store/}\n",
                cell.stem.c_str());
        return cell;
      },
      {sweep.jobs});

  std::ofstream summary(sweep.out_dir + "/rollout_chaos_summary.json");
  if (!summary) {
    throw std::runtime_error("cannot write " + sweep.out_dir +
                             "/rollout_chaos_summary.json");
  }
  obs::JsonWriter w(summary);
  w.begin_object();
  w.key("experiment").value("rollout_chaos");
  w.key("grid").begin_array();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const RolloutChaosResult& r = outs[i].result;
    const mgmt::RolloutReport& rep = r.report;
    w.begin_object();
    w.key("kind").value(
        rollout_fault_kind_slug(sweep.kinds[i / sweep.seeds.size()]));
    w.key("seed").value(sweep.seeds[i % sweep.seeds.size()]);
    w.key("outcome").value(
        rep.outcome == mgmt::RolloutOutcome::kCommitted
            ? "committed"
            : rep.outcome == mgmt::RolloutOutcome::kAborted ? "aborted"
                                                            : "rejected");
    w.key("baseline_version").value(r.baseline_version);
    w.key("candidate_version").value(r.candidate_version);
    w.key("final_lkg").value(r.final_lkg);
    w.key("store_versions").value(r.store_versions);
    w.key("waves").value(static_cast<std::uint64_t>(rep.waves.size()));
    w.key("probes").value(static_cast<std::uint64_t>(rep.probes.size()));
    w.key("switches_touched")
        .value(static_cast<std::uint64_t>(rep.switches_touched));
    w.key("reconcile_passes")
        .value(static_cast<std::uint64_t>(rep.reconcile_passes));
    w.key("install_rejections").value(r.install_rejections);
    w.key("epoch_mismatch_packets").value(rep.epoch_mismatch_packets);
    w.key("expected_commit").value(r.expected_commit);
    w.key("outcome_as_expected").value(r.outcome_as_expected);
    w.key("single_version").value(r.single_version);
    w.key("canary_gated").value(r.canary_gated);
    w.key("lkg_pointer_correct").value(r.lkg_pointer_correct);
    w.key("store_recovery_identical").value(r.store_recovery_identical);
    w.key("zero_epoch_mismatches").value(r.zero_epoch_mismatches);
    w.key("activity_seen").value(r.activity_seen);
    w.key("ok").value(outs[i].ok);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  summary << "\n";
  return outs;
}

}  // namespace qv::experiments
