// rollout_chaos: run the management-plane rollout harness over a
// fault-kind x seed grid and emit each cell's artifacts:
//
//   rollout_<kind>[_s<seed>]_metrics.json  fleet + control-plane +
//                                          store registries at the end
//                                          of the run
//   rollout_<kind>[_s<seed>]_trace.json    Perfetto/Chrome trace-event
//                                          timeline of waves, probes,
//                                          aborts and reconciles
//   rollout_<kind>[_s<seed>]_store/        the cell's config store
//                                          (journal + snapshot)
//   rollout_chaos_summary.json             the whole grid, grid order
//
// Cells fan across cores (--jobs); exits non-zero when any cell's
// rollout contract fails (mixed-version fleet, fleet off last-known-
// good, canary gate bypassed, a lost acked store version, or packets
// scheduled under a half-installed plan), so CI runs the matrix as ONE
// invocation.
#include <cstdio>
#include <string>

#include "experiments/rollout_chaos.hpp"
#include "experiments/sweeps.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_int("seed", 1, "fault-schedule + probe-workload RNG seed");
  flags.define_string("seeds", "", "comma-separated seed list (grid axis); "
                      "overrides --seed");
  flags.define_string("kinds", "",
                      "comma-separated fault kinds (clean,unreachable,"
                      "canary-slo,store-crash,random); default all");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("jobs", 0,
                   "parallel cells (0 = hardware concurrency, 1 = serial)");
  flags.define_int("switches", 0,
                   "simulated fleet size (0 = harness default, 200)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::RolloutChaosSweepConfig sweep;
  if (!flags.get_string("seeds").empty()) {
    bool ok = false;
    sweep.seeds =
        qv::experiments::parse_u64_list(flags.get_string("seeds"), &ok);
    if (!ok) {
      std::fprintf(stderr, "rollout_chaos: bad --seeds '%s'\n",
                   flags.get_string("seeds").c_str());
      return 1;
    }
  } else {
    sweep.seeds = {static_cast<std::uint64_t>(flags.get_int("seed"))};
  }
  if (!flags.get_string("kinds").empty()) {
    sweep.kinds.clear();
    std::string csv = flags.get_string("kinds");
    std::size_t pos = 0;
    while (pos <= csv.size()) {
      const std::size_t comma = std::min(csv.find(',', pos), csv.size());
      const std::string name = csv.substr(pos, comma - pos);
      qv::experiments::RolloutFaultKind kind;
      if (!qv::experiments::parse_rollout_fault_kind(name, &kind)) {
        std::fprintf(stderr, "rollout_chaos: bad fault kind '%s'\n",
                     name.c_str());
        return 1;
      }
      sweep.kinds.push_back(kind);
      pos = comma + 1;
    }
  }
  sweep.out_dir = flags.get_string("out");
  sweep.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  if (flags.get_int("switches") > 0) {
    sweep.base.switches = static_cast<std::size_t>(flags.get_int("switches"));
  }

  const auto cells = qv::experiments::run_rollout_chaos_sweep(sweep);
  bool all_ok = true;
  for (const auto& cell : cells) {
    std::fputs(cell.summary.c_str(), stdout);
    if (!cell.ok) {
      std::fprintf(stderr, "rollout_chaos: CONTRACT VIOLATED (%s)\n",
                   cell.stem.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
