#include "experiments/chaos.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "experiments/obs_wiring.hpp"
#include "netsim/network.hpp"
#include "netsim/topology.hpp"
#include "obs/obs.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/fleet.hpp"
#include "sched/fifo.hpp"

namespace qv::experiments {

namespace {

constexpr TenantId kGold = 1;
constexpr TenantId kSilver = 2;
constexpr TenantId kBronze = 3;

qvisor::TenantSpec tenant(TenantId id, const std::string& name) {
  qvisor::TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {0, 99};
  return spec;
}

std::string fingerprint(const qvisor::SynthesisPlan& plan) {
  // Tenant name + output band, sorted by name: equal fingerprints mean
  // every label maps into the same band on both plans.
  std::vector<std::string> parts;
  for (const auto& tp : plan.tenants) {
    parts.push_back(tp.name + ":[" +
                    std::to_string(tp.transform.out_min()) + "," +
                    std::to_string(tp.transform.out_max()) + "]");
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ";";
    out += p;
  }
  return out;
}

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config) {
  netsim::Simulator sim;
  sim.set_simcore(config.per_event_simcore
                      ? netsim::Simulator::SimCore::kPerEventReference
                      : netsim::Simulator::SimCore::kOverhauled);

  // --- fleet: one hypervisor per fabric switch --------------------------
  // Declared before the network: every QvisorPort owned by a link
  // detaches from its hypervisor on destruction, so the fleet must be
  // torn down last.
  qvisor::Fleet fleet(
      {tenant(kGold, "gold"), tenant(kSilver, "silver"),
       tenant(kBronze, "bronze")},
      *qvisor::parse_policy("gold >> silver + bronze").policy,
      std::make_shared<qvisor::PifoBackend>());

  netsim::Network net(sim);

  // Switch ports get fleet port schedulers (one fleet member per
  // fabric switch, registered lazily as the topology builder asks);
  // host NIC uplinks stay plain FIFOs — the fabric is where QVISOR
  // runs.
  std::map<std::string, std::size_t> switch_index;
  netsim::SchedulerFactory factory =
      [&](const netsim::PortContext& ctx)
      -> std::unique_ptr<sched::Scheduler> {
    if (ctx.from_host) return std::make_unique<sched::FifoQueue>();
    auto [it, inserted] =
        switch_index.try_emplace(ctx.node_name, fleet.switch_count());
    if (inserted) fleet.add_switch(ctx.node_name);
    return fleet.make_port_scheduler(it->second);
  };

  netsim::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = config.leaves;
  topo_cfg.spines = config.spines;
  topo_cfg.hosts_per_leaf = config.hosts_per_leaf;
  topo_cfg.access_rate = config.access_rate;
  topo_cfg.fabric_rate = config.fabric_rate;
  topo_cfg.link_delay = config.link_delay;
  auto topo = netsim::build_leaf_spine(net, topo_cfg, factory);

  // --- control-plane chaos ----------------------------------------------
  // One switch agent goes dark for a window (every install attempt —
  // forward or rollback — is rejected), exercising the all-or-nothing
  // deploy, the retry/backoff path, and degraded mode.
  const std::size_t dark_switch = fleet.switch_count() - 1;
  if (config.control_faults) {
    fleet.set_install_fault(
        [&sim, &config, dark_switch](std::size_t sw, std::uint64_t) {
          return sw == dark_switch &&
                 sim.now() >= config.install_fault_from &&
                 sim.now() < config.install_fault_to;
        });
    // Another agent reboots after the faults clear, losing its plan;
    // the controller's anti-entropy pass re-pushes the committed epoch.
    sim.at(config.reboot_at, [&fleet, &config] {
      fleet.hypervisor(config.reboot_switch).clear_plan();
    });
  }

  const auto compiled = fleet.compile();
  if (!compiled.ok) {
    throw std::runtime_error("chaos: initial compile failed: " +
                             compiled.error);
  }

  // --- fleet controller --------------------------------------------------
  qvisor::RuntimeConfig rc;
  rc.activity_window = config.activity_window;
  rc.min_reconfig_interval = config.tick_interval;
  rc.retry_budget = config.retry_budget;
  rc.retry_backoff = config.retry_backoff;
  rc.retry_backoff_cap = config.retry_backoff_cap;
  qvisor::FleetController controller(fleet, rc);
  for (TimeNs t = config.tick_interval; t < config.end;
       t += config.tick_interval) {
    sim.at(t, [&controller, t] { controller.tick(t); });
  }

  // --- workload -----------------------------------------------------------
  // Cross-leaf CBR from every host; bronze pauses in
  // [bronze_off, bronze_on) so the tenant set actually changes (and
  // changes back) while the chaos schedule is live.
  ChaosResult result;
  const std::size_t num_hosts = topo.hosts.size();
  for (auto* host : topo.hosts) {
    host->set_sink([&result](const Packet& p) {
      ++result.delivered_pkts;
      result.delivered_bytes += static_cast<std::uint64_t>(p.size_bytes);
    });
  }
  for (std::size_t h = 0; h < num_hosts; ++h) {
    const TenantId tenant_id = 1 + static_cast<TenantId>(h % 3);
    const NodeId dst = topo.hosts[(h + num_hosts / 2) % num_hosts]->id();
    std::uint64_t i = 0;
    for (TimeNs t = microseconds(static_cast<std::int64_t>(h));
         t < config.traffic_stop; t += config.packet_interval, ++i) {
      if (tenant_id == kBronze && t >= config.bronze_off &&
          t < config.bronze_on) {
        continue;
      }
      const Rank label = static_cast<Rank>((h * 13 + i * 7) % 100);
      sim.at(t, [&, h, dst, tenant_id, label, i] {
        Packet p;
        p.flow = h * 4096 + i % 8;  // a few ECMP paths per host pair
        p.seq = static_cast<std::uint32_t>(i);
        p.src = topo.hosts[h]->id();
        p.dst = dst;
        p.size_bytes = config.packet_bytes;
        p.tenant = tenant_id;
        p.rank = label;
        p.original_rank = label;
        p.created_at = sim.now();
        ++result.offered_pkts;
        result.offered_bytes += static_cast<std::uint64_t>(p.size_bytes);
        topo.hosts[h]->send(p);
      });
    }
  }

  // --- data-plane chaos ---------------------------------------------------
  netsim::FaultInjector injector(sim, net);
  if (config.faults) {
    injector.arm(netsim::random_fault_plan(
        config.seed, net.links().size(), config.fault_cfg));
  }

  // --- observability -------------------------------------------------------
  if (config.obs != nullptr) {
    wire_network_obs(net, *config.obs, config.end);
    controller.set_tracer(&config.obs->tracer);
  }

  sim.run_until(config.end);
  // Drain: traffic and faults are long over; whatever events remain are
  // in-flight packets and queue pulls, so run to empty before auditing
  // conservation.
  sim.run();

  // --- audit ---------------------------------------------------------------
  result.injected_pkts = injector.pressure_injected();
  result.injected_bytes = injector.pressure_injected_bytes();
  result.link_downs = injector.link_downs();
  result.link_ups = injector.link_ups();
  for (const auto& link : net.links()) {
    result.queue_dropped_pkts += link->queue().counters().dropped;
    result.queue_dropped_bytes += link->queue().counters().dropped_bytes;
    result.buffered_pkts += link->queue().size();
    if (const auto* port =
            dynamic_cast<const qvisor::QvisorPort*>(&link->queue())) {
      result.epoch_mismatches += port->epoch_mismatches();
    }
  }
  for (const auto& node : net.nodes()) {
    if (const auto* sw = dynamic_cast<const netsim::Switch*>(node.get())) {
      result.unrouted_pkts += sw->unrouted();
    }
  }
  const netsim::LinkFaultCounters faults = net.total_fault_drops();
  result.fault_dropped_pkts = faults.dropped();
  result.fault_dropped_bytes = faults.dropped_bytes();

  const std::uint64_t in = result.offered_pkts + result.injected_pkts;
  const std::uint64_t out = result.delivered_pkts +
                            result.queue_dropped_pkts +
                            result.fault_dropped_pkts +
                            result.buffered_pkts + result.unrouted_pkts;
  const std::uint64_t in_bytes =
      result.offered_bytes + result.injected_bytes;
  const std::uint64_t out_bytes =
      result.delivered_bytes + result.queue_dropped_bytes +
      result.fault_dropped_bytes;
  // Byte conservation is only checked when nothing is left buffered
  // (queue byte occupancy is not tallied per packet here).
  result.conserved =
      in == out && (result.buffered_pkts > 0 || in_bytes == out_bytes);

  result.epochs_consistent = fleet.epochs_consistent();
  result.adaptations = controller.adaptations();
  result.retries = controller.retries();
  result.rollbacks = fleet.rollbacks();
  result.reconciles = fleet.reconciles();
  result.failed_installs = fleet.failed_installs();
  result.degraded_entries = controller.degraded_entries();
  result.recoveries = controller.recoveries();
  result.committed_epoch = fleet.committed_epoch();
  result.plan_fingerprint = fingerprint(fleet.hypervisor(0).plan());

  if (config.obs != nullptr) {
    obs::Registry& reg = config.obs->registry;
    export_network_metrics(net, reg);
    fleet.export_metrics(reg, "fleet");
    controller.export_metrics(reg, "fleet.controller");
    injector.export_metrics(reg, "fault");
    reg.counter("sim.events_processed").inc(sim.events_processed());
    reg.set_gauge("result.offered_pkts",
                  static_cast<double>(result.offered_pkts));
    reg.set_gauge("result.delivered_pkts",
                  static_cast<double>(result.delivered_pkts));
    reg.set_gauge("result.fault_dropped_pkts",
                  static_cast<double>(result.fault_dropped_pkts));
    reg.set_gauge("result.conserved", result.conserved ? 1.0 : 0.0);
    reg.set_gauge("result.epoch_mismatches",
                  static_cast<double>(result.epoch_mismatches));
    reg.freeze();
  }
  return result;
}

}  // namespace qv::experiments
