// Rollout chaos harness (ISSUE 9 tentpole, pillar 3): the management
// plane's canary-then-wave rollouts under injected faults — switch
// unreachability mid-wave, SLO regressions planted in the canary
// cohort, store crashes between journal append and commit-ack, and a
// seeded random mix — swept over fault kinds x seeds, each cell
// checked against the rollout contract:
//
//   1. single version — after every rollout, committed OR aborted, the
//      fleet's epochs are consistent and every switch's plan
//      fingerprint equals the expected plan's (candidate on commit,
//      last-known-good on abort): no mixed-version fleet, ever;
//   2. canary gating — a planted canary SLO regression aborts before
//      wave 1 touches any non-canary switch;
//   3. LKG pointer — the store's last-known-good policy pointer names
//      the plan the fleet actually runs;
//   4. durable acks — a store crash (torn journal frame) never loses
//      an acked version: the reopened store is byte-identical
//      (serialize()) to the pre-crash acked state;
//   5. clean books — zero packets were scheduled under a half-
//      installed plan during health probes (epoch mismatches == 0).
//
// Each cell writes <stem>_metrics.json (fleet + control-plane + store
// registries) and <stem>_trace.json (mgmt/runtime trace of waves,
// probes, aborts and reconciles), plus its config store directory
// <stem>_store/. The CLI mirrors `dataplane_chaos`: cells fan across
// cores, the summary reduces in grid order, and the process exits
// non-zero when any cell violates the contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mgmt/rollout.hpp"

namespace qv::experiments {

enum class RolloutFaultKind {
  kClean,       ///< benign candidate, no faults: must commit
  kUnreachable, ///< a wave-cohort switch rejects installs K times
  kCanarySlo,   ///< candidate inverts the protected tier: canary aborts
  kStoreCrash,  ///< torn journal frame between append and commit-ack
  kRandom,      ///< seeded pick of the above behaviours
};

const char* rollout_fault_kind_slug(RolloutFaultKind k);
bool parse_rollout_fault_kind(const std::string& name, RolloutFaultKind* out);
std::vector<RolloutFaultKind> rollout_all_fault_kinds();

struct RolloutChaosConfig {
  std::uint64_t seed = 1;
  RolloutFaultKind kind = RolloutFaultKind::kRandom;

  std::size_t switches = 200;  ///< "hundreds of simulated switches"
  std::size_t canary = 4;
  std::size_t wave_size = 32;
  std::size_t wave_retry_budget = 2;

  /// Config store directory for this cell (REQUIRED; one per cell).
  std::string store_dir;
};

struct RolloutChaosResult {
  mgmt::RolloutReport report;

  std::uint64_t baseline_version = 0;   ///< v1 (bootstrap, marked LKG)
  std::uint64_t candidate_version = 0;  ///< v2 (the rollout target)
  std::uint64_t final_lkg = 0;          ///< policy LKG after the run
  std::uint64_t store_versions = 0;
  std::uint64_t install_rejections = 0; ///< injected switch-agent rejects
  bool expected_commit = false;  ///< what this (kind, seed) predicts

  // Contract verdicts (file header; `ok` is their conjunction).
  bool outcome_as_expected = false;
  bool single_version = false;
  bool canary_gated = false;      ///< vacuously true off the SLO kinds
  bool lkg_pointer_correct = false;
  bool store_recovery_identical = false;  ///< vacuously true off crash kinds
  bool zero_epoch_mismatches = false;
  bool activity_seen = false;
  bool ok = false;
};

/// Run one (kind, seed) cell. `metrics_path`, when non-empty, receives
/// the end-of-run fleet/control/store registries.
RolloutChaosResult run_rollout_chaos(const RolloutChaosConfig& config,
                                     const std::string& metrics_path = "",
                                     const std::string& trace_path = "");

// --- sweep: kinds x seeds -------------------------------------------------

struct RolloutChaosSweepConfig {
  RolloutChaosConfig base;  ///< kind/seed/store_dir overridden per cell
  std::vector<RolloutFaultKind> kinds = rollout_all_fault_kinds();
  std::vector<std::uint64_t> seeds = {1};
  std::string out_dir = ".";
  std::size_t jobs = 0;  ///< 0 = hardware_concurrency, 1 = serial
};

struct RolloutChaosCell {
  std::string stem;
  std::string summary;
  bool ok = true;
  RolloutChaosResult result;
};

/// Fan the grid across cores, write per-cell artifacts plus
/// rollout_chaos_summary.json, and return the cells in grid order
/// (kinds outer, seeds inner).
std::vector<RolloutChaosCell> run_rollout_chaos_sweep(
    const RolloutChaosSweepConfig& sweep);

}  // namespace qv::experiments
