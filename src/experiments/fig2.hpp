// The paper's motivating scenario (§2, Fig. 2), quantified: three
// tenants share one congested egress —
//
//   interactive  (T1): Poisson short flows under pFabric, active
//                      only before t1;
//   deadline     (T2): CBR stream under EDF, active only before t1;
//   background   (T3): continuous bulk transfer under fair queuing,
//                      active the WHOLE run.
//
// Operator policy: "interactive + deadline >> background".
//
// The experiment measures, per phase, exactly the properties the
// paper's story needs:
//   * phase 1 — T1's small-flow FCT and T2's deadline-met fraction
//     must be near-ideal DESPITE the backlogged bulk tenant ('>>'
//     isolation), while T3 still gets the leftover bandwidth (work
//     conservation);
//   * phase 2 — after T1/T2 go quiet, T3's throughput must rise to
//     line rate (multiplexing the scheduling resources over time, §1),
//     with the runtime controller re-synthesizing at the shift.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"
#include "util/units.hpp"

namespace qv::obs {
struct Observability;
}

namespace qv::experiments {

enum class Fig2Scheme {
  kFifo,        ///< single FIFO (no isolation at all)
  kPifoNaive,   ///< raw tenant ranks on one PIFO (§2 Problem 1)
  kQvisor,      ///< QVISOR, static plan
  kQvisorAdapt, ///< QVISOR + runtime controller (re-synthesis at t1)
};

const char* fig2_scheme_name(Fig2Scheme scheme);

struct Fig2Config {
  Fig2Scheme scheme = Fig2Scheme::kQvisorAdapt;
  std::size_t hosts = 8;
  BitsPerSec rate = gbps(1);

  TimeNs warmup = milliseconds(5);
  TimeNs t1 = milliseconds(50);   ///< T1/T2 deactivate here
  TimeNs end = milliseconds(110); ///< T3-only phase ends here

  double interactive_load = 0.3;  ///< of the egress link
  BitsPerSec cbr_rate = mbps(300);
  TimeNs cbr_deadline_slack = milliseconds(2);
  std::int64_t bulk_flow_bytes = 2'000'000;

  std::uint64_t seed = 1;

  /// Run on the pre-overhaul simulation core (heap event ordering +
  /// per-packet link events) — the differential-testing reference.
  bool per_event_simcore = false;

  /// Optional instrumentation (not owned): when set, the run attaches
  /// the tracer + periodic samplers and, at teardown, exports every
  /// port/hypervisor/runtime metric into the registry and freeze()s it
  /// — so the caller can write metrics.json / trace.json after this
  /// function returns.
  obs::Observability* obs = nullptr;

  /// When non-empty, write the interactive tenant's per-flow records
  /// here as CSV.
  std::string flow_csv;
};

struct Fig2Result {
  // Phase 1 (warmup .. t1):
  double interactive_mean_fct_ms = 0;
  double interactive_p99_fct_ms = 0;
  std::size_t interactive_flows = 0;
  double deadline_met = 0;
  double background_phase1_gbps = 0;  ///< leftover bandwidth

  // Phase 2 (t1 .. end):
  double background_phase2_gbps = 0;  ///< should approach line rate

  std::uint64_t adaptations = 0;  ///< runtime re-syntheses (kQvisorAdapt)
};

Fig2Result run_fig2(const Fig2Config& config);

}  // namespace qv::experiments
