#include "experiments/dataplane_chaos.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "exec/sweep.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "util/random.hpp"

namespace qv::experiments {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

/// Flatten a run's books into one global-port-ordered vector so two
/// runs compare with a single operator== sweep.
std::vector<dataplane::PortBook> flat_books(
    const dataplane::DataplaneResult& r) {
  std::vector<dataplane::PortBook> books;
  for (const auto& shard : r.shards) {
    books.insert(books.end(), shard.ports.begin(), shard.ports.end());
  }
  return books;
}

/// The injected schedule for one (kind, seed) cell. Every choice
/// derives from the seed so a failing cell replays from its summary
/// line alone.
netsim::FaultPlan make_fault_plan(DataplaneFaultKind kind, std::uint64_t seed,
                                  const dataplane::DataplaneConfig& base) {
  if (kind == DataplaneFaultKind::kRandom) {
    dataplane::RandomDataplaneFaultConfig cfg;
    // Keep poisoned seqs inside the emitted stream so corruption cells
    // exercise quarantine instead of silently missing.
    cfg.max_seq = base.packets_per_port * 3 / 4;
    return dataplane::random_dataplane_fault_plan(seed, base.shards,
                                                  base.ports_per_shard, cfg);
  }
  Rng rng(SplitMix64(seed ^ 0xdc5a0c0de0000001ull).next());
  const auto burst = static_cast<std::uint64_t>(rng.next_in(4, 48));
  netsim::FaultPlan plan;
  switch (kind) {
    case DataplaneFaultKind::kStall:
      // Wedge cap far past the watchdog deadline: the cell only ends
      // quickly if detection actually works.
      for (std::size_t s = 0; s < base.shards; ++s) {
        plan.worker_stall(s, burst + s, seconds(2));
      }
      break;
    case DataplaneFaultKind::kCrash:
      for (std::size_t s = 0; s < base.shards; ++s) {
        plan.worker_crash(s, burst + s);
        plan.worker_crash(s, burst + s + 9);  // recover, then crash again
      }
      break;
    case DataplaneFaultKind::kPoison: {
      const std::size_t ports = base.shards * base.ports_per_shard;
      for (int i = 0; i < 2; ++i) {
        const auto port = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(ports)));
        const auto seq = static_cast<std::uint64_t>(rng.next_in(
            64, static_cast<std::int64_t>(base.packets_per_port) - 64));
        plan.descriptor_corrupt(port, seq);
      }
      break;
    }
    case DataplaneFaultKind::kDesync:
      for (std::size_t s = 0; s < base.shards; ++s) {
        plan.ring_desync(s, burst + s, 8);
      }
      break;
    case DataplaneFaultKind::kRandom:
      break;  // handled above
  }
  return plan;
}

bool kind_activity(DataplaneFaultKind kind, const DataplaneChaosResult& r) {
  switch (kind) {
    case DataplaneFaultKind::kStall:
      return r.stalls >= 1 && r.watchdog_detects >= 1;
    case DataplaneFaultKind::kCrash:
      return r.crashes >= 1 && r.restores >= 1;
    case DataplaneFaultKind::kPoison:
      return r.quarantined >= 1;
    case DataplaneFaultKind::kDesync:
      return r.desyncs >= 1;
    case DataplaneFaultKind::kRandom:
      return r.restores >= 1;
  }
  return false;
}

/// Stall and crash recoveries replay the uncommitted ring region, so
/// the faulted run must land on the fault-free books exactly. Poison
/// removes packets from the stream, desync drains it, and random mixes
/// all four — there balance + bounded loss are the contract instead.
bool is_replay_kind(DataplaneFaultKind kind) {
  return kind == DataplaneFaultKind::kStall ||
         kind == DataplaneFaultKind::kCrash;
}

}  // namespace

const char* dataplane_fault_kind_slug(DataplaneFaultKind k) {
  switch (k) {
    case DataplaneFaultKind::kStall: return "stall";
    case DataplaneFaultKind::kCrash: return "crash";
    case DataplaneFaultKind::kPoison: return "poison";
    case DataplaneFaultKind::kDesync: return "desync";
    case DataplaneFaultKind::kRandom: return "random";
  }
  return "unknown";
}

bool parse_dataplane_fault_kind(const std::string& name,
                                DataplaneFaultKind* out) {
  for (const DataplaneFaultKind k : dataplane_all_fault_kinds()) {
    if (name == dataplane_fault_kind_slug(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::vector<DataplaneFaultKind> dataplane_all_fault_kinds() {
  return {DataplaneFaultKind::kStall, DataplaneFaultKind::kCrash,
          DataplaneFaultKind::kPoison, DataplaneFaultKind::kDesync,
          DataplaneFaultKind::kRandom};
}

dataplane::DataplaneConfig dataplane_chaos_base() {
  dataplane::DataplaneConfig config;
  config.shards = 2;
  config.ports_per_shard = 2;
  config.packets_per_port = 4000;
  config.batch = 16;
  config.ring_capacity = 256;
  config.service_depth = 64;
  config.tenants = 4;
  // Fast watchdog: a production 20ms deadline would make every stall
  // cell idle for most of its wall time.
  config.supervision.heartbeat_deadline_ns = milliseconds(5);
  config.supervision.watchdog_poll_ns = microseconds(500);
  config.supervision.checkpoint_interval_bursts = 8;
  return config;
}

DataplaneChaosResult run_dataplane_chaos(const DataplaneChaosConfig& config,
                                         const std::string& metrics_path) {
  // Reference runs: the unsupervised baseline and the supervised
  // fault-free pipeline must produce byte-identical books.
  dataplane::DataplaneConfig plain = config.base;
  plain.seed = config.seed;
  plain.supervision.enabled = false;
  plain.fault_plan = {};
  const auto baseline = run_dataplane(plain);

  dataplane::DataplaneConfig clean = plain;
  clean.supervision.enabled = true;
  const auto supervised = run_dataplane(clean);

  dataplane::DataplaneConfig faulted = clean;
  faulted.fault_plan = make_fault_plan(config.kind, config.seed, config.base);
  const auto chaotic = run_dataplane(faulted);

  DataplaneChaosResult out;
  const dataplane::PortBook total = chaotic.book();
  out.generated = total.generated;
  out.processed = total.processed;
  out.quarantined = total.quarantined;
  out.lost_in_flight = total.lost_in_flight;
  const dataplane::SupervisionStats sup = chaotic.supervision();
  out.checkpoints = sup.checkpoints;
  out.restores = sup.restores;
  out.stalls = sup.stalls;
  out.crashes = sup.crashes;
  out.poison_faults = sup.poison_faults;
  out.desyncs = sup.desyncs;
  out.watchdog_detects = chaotic.watchdog_detects;
  out.loss_bound = config.base.ring_capacity + config.base.batch;

  std::uint64_t itemized = 0;
  for (const auto& shard : chaotic.shards) {
    out.recoveries.insert(out.recoveries.end(), shard.recoveries.begin(),
                          shard.recoveries.end());
    out.quarantine.insert(out.quarantine.end(), shard.quarantine.begin(),
                          shard.quarantine.end());
  }
  for (const auto& rec : out.recoveries) {
    out.max_restore_ns = std::max(out.max_restore_ns, rec.restore_ns);
    out.max_lost_per_recovery = std::max(out.max_lost_per_recovery, rec.lost);
    itemized += rec.lost;
  }
  out.recovery_count = out.recoveries.size();

  out.balanced = chaotic.balanced;
  out.faultfree_identical = flat_books(supervised) == flat_books(baseline);
  out.replay_identical = !is_replay_kind(config.kind) ||
                         flat_books(chaotic) == flat_books(baseline);
  // Every lost packet is itemized by exactly one recovery, and no
  // recovery discards more than one full ring plus the burst in hand.
  out.loss_bounded = out.max_lost_per_recovery <= out.loss_bound &&
                     itemized == out.lost_in_flight;
  out.recovery_bounded = out.max_restore_ns <= config.max_recovery_ns;
  out.activity_seen = kind_activity(config.kind, out);
  out.ok = out.balanced && out.faultfree_identical && out.replay_identical &&
           out.loss_bounded && out.recovery_bounded && out.activity_seen;

  if (!metrics_path.empty()) {
    obs::Registry reg;
    chaotic.export_metrics(reg);
    obs::save_metrics_json(metrics_path, reg);
  }
  return out;
}

void write_dataplane_chaos_trace(const std::string& path,
                                 const DataplaneChaosResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  std::int64_t base_ns = 0;
  for (const auto& rec : result.recoveries) {
    if (base_ns == 0 || rec.start_ns < base_ns) base_ns = rec.start_ns;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();
  // Track names: one row per shard that recovered.
  std::vector<std::size_t> shards;
  for (const auto& rec : result.recoveries) shards.push_back(rec.shard);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  for (const std::size_t s : shards) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(s));
    w.key("args").begin_object();
    w.key("name").value("shard" + std::to_string(s));
    w.end_object();
    w.end_object();
  }
  for (const auto& rec : result.recoveries) {
    w.begin_object();
    w.key("ph").value("X");
    w.key("name").value(std::string("recover:") +
                        dataplane::recovery_cause_name(rec.cause));
    w.key("cat").value("dataplane");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(rec.shard));
    w.key("ts").value(static_cast<double>(rec.start_ns - base_ns) / 1e3);
    w.key("dur").value(static_cast<double>(rec.restore_ns) / 1e3);
    w.key("args").begin_object();
    w.key("at_burst").value(rec.at_burst);
    w.key("lost").value(rec.lost);
    w.key("drained").value(rec.drained);
    w.end_object();
    w.end_object();
  }
  for (const auto& q : result.quarantine) {
    // The verdict lands at the end of that shard's LAST poison restore
    // (the restore that tipped the packet over quarantine_after).
    double ts = 0.0;
    for (const auto& rec : result.recoveries) {
      if (rec.shard == q.shard &&
          rec.cause == dataplane::RecoveryRecord::Cause::kPoison) {
        ts = static_cast<double>(rec.start_ns - base_ns + rec.restore_ns) /
             1e3;
      }
    }
    w.begin_object();
    w.key("ph").value("i");
    w.key("s").value("t");
    w.key("name").value("quarantine");
    w.key("cat").value("dataplane");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(q.shard));
    w.key("ts").value(ts);
    w.key("args").begin_object();
    w.key("port").value(static_cast<std::uint64_t>(q.port));
    w.key("seq").value(q.seq);
    w.key("tenant").value(static_cast<std::int64_t>(q.tenant));
    w.key("faults").value(q.faults);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

std::vector<DataplaneChaosCell> run_dataplane_chaos_sweep(
    const DataplaneChaosSweepConfig& sweep) {
  const std::size_t cells = sweep.kinds.size() * sweep.seeds.size();
  auto outs = exec::run_sweep<DataplaneChaosCell>(
      cells,
      [&sweep](std::size_t i) {
        const DataplaneFaultKind kind = sweep.kinds[i / sweep.seeds.size()];
        const std::uint64_t seed = sweep.seeds[i % sweep.seeds.size()];
        DataplaneChaosCell cell;
        cell.stem = sweep.out_dir + "/dpchaos_" +
                    dataplane_fault_kind_slug(kind);
        if (sweep.seeds.size() > 1) {
          cell.stem += "_s" + std::to_string(seed);
        }

        DataplaneChaosConfig config = sweep.base;
        config.kind = kind;
        config.seed = seed;
        cell.result = run_dataplane_chaos(config, cell.stem + "_metrics.json");
        write_dataplane_chaos_trace(cell.stem + "_trace.json", cell.result);
        cell.ok = cell.result.ok;

        const DataplaneChaosResult& r = cell.result;
        std::string& s = cell.summary;
        appendf(s, "dpchaos %s (seed %llu)\n", dataplane_fault_kind_slug(kind),
                static_cast<unsigned long long>(seed));
        appendf(s,
                "  generated %llu = processed %llu + quarantined %llu + "
                "lost %llu (balanced: %s)\n",
                static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.processed),
                static_cast<unsigned long long>(r.quarantined),
                static_cast<unsigned long long>(r.lost_in_flight),
                r.balanced ? "yes" : "NO");
        appendf(s,
                "  restores %llu (stall %llu, crash %llu, poison %llu, "
                "desync %llu), watchdog detects %llu, checkpoints %llu\n",
                static_cast<unsigned long long>(r.restores),
                static_cast<unsigned long long>(r.stalls),
                static_cast<unsigned long long>(r.crashes),
                static_cast<unsigned long long>(r.poison_faults),
                static_cast<unsigned long long>(r.desyncs),
                static_cast<unsigned long long>(r.watchdog_detects),
                static_cast<unsigned long long>(r.checkpoints));
        appendf(s,
                "  fault-free identical: %s, replay identical: %s, loss "
                "%llu/%llu per recovery (bounded: %s), slowest restore "
                "%.3f ms (bounded: %s), activity: %s\n",
                r.faultfree_identical ? "yes" : "NO",
                r.replay_identical ? "yes" : "NO",
                static_cast<unsigned long long>(r.max_lost_per_recovery),
                static_cast<unsigned long long>(r.loss_bound),
                r.loss_bounded ? "yes" : "NO",
                static_cast<double>(r.max_restore_ns) / 1e6,
                r.recovery_bounded ? "yes" : "NO",
                r.activity_seen ? "yes" : "NO");
        appendf(s, "  artifacts: %s_{metrics.json,trace.json}\n",
                cell.stem.c_str());
        return cell;
      },
      {sweep.jobs});

  std::ofstream summary(sweep.out_dir + "/dpchaos_summary.json");
  if (!summary) {
    throw std::runtime_error("cannot write " + sweep.out_dir +
                             "/dpchaos_summary.json");
  }
  obs::JsonWriter w(summary);
  w.begin_object();
  w.key("experiment").value("dpchaos");
  w.key("grid").begin_array();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const DataplaneChaosResult& r = outs[i].result;
    w.begin_object();
    w.key("kind").value(
        dataplane_fault_kind_slug(sweep.kinds[i / sweep.seeds.size()]));
    w.key("seed").value(sweep.seeds[i % sweep.seeds.size()]);
    w.key("generated").value(r.generated);
    w.key("processed").value(r.processed);
    w.key("quarantined").value(r.quarantined);
    w.key("lost_in_flight").value(r.lost_in_flight);
    w.key("checkpoints").value(r.checkpoints);
    w.key("restores").value(r.restores);
    w.key("watchdog_detects").value(r.watchdog_detects);
    w.key("recoveries").value(r.recovery_count);
    w.key("max_lost_per_recovery").value(r.max_lost_per_recovery);
    w.key("loss_bound").value(r.loss_bound);
    w.key("balanced").value(r.balanced);
    w.key("faultfree_identical").value(r.faultfree_identical);
    w.key("replay_identical").value(r.replay_identical);
    w.key("loss_bounded").value(r.loss_bounded);
    w.key("recovery_bounded").value(r.recovery_bounded);
    w.key("activity_seen").value(r.activity_seen);
    w.key("ok").value(outs[i].ok);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  summary << "\n";
  return outs;
}

}  // namespace qv::experiments
