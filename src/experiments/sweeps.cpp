#include "experiments/sweeps.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "exec/sweep.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace qv::experiments {

namespace {

// printf-append into the cell's summary string: the sweep reducer
// replays these blocks in grid order, so they must never go straight
// to stdout from a worker.
void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

std::uint32_t trace_mask(const SweepObsOptions& opts) {
  if (!opts.trace) return 0;
  std::uint32_t mask = obs::trace_bit(obs::TraceCategory::kSched) |
                       obs::trace_bit(obs::TraceCategory::kQvisor) |
                       obs::trace_bit(obs::TraceCategory::kRuntime);
  if (opts.trace_sim) mask |= obs::trace_bit(obs::TraceCategory::kSim);
  return mask;
}

/// Every cell owns one of these: a fresh Observability plus the log
/// capture for the worker thread. Construction order matters — the
/// capture must outlive the run but not the artifact writes.
struct CellObs {
  obs::Observability obs;
  explicit CellObs(const SweepObsOptions& opts)
      : obs(opts.trace_capacity) {
    obs.sample_interval = microseconds(opts.sample_interval_us);
    obs.tracer.set_mask(trace_mask(opts));
  }
  void save(const std::string& stem) {
    obs::save_metrics_json(stem + "_metrics.json", obs.registry);
    obs::save_trace_json(stem + "_trace.json", obs.tracer);
  }
};

std::string seed_suffix(const std::vector<std::uint64_t>& seeds,
                        std::uint64_t seed) {
  if (seeds.size() <= 1) return "";
  return "_s" + std::to_string(seed);
}

std::string load_suffix(const std::vector<double>& loads, double load) {
  if (loads.size() <= 1) return "";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "_l%g", load * 100.0);
  return buf;
}

void write_summary_json(const std::string& path, const char* experiment,
                        const std::function<void(obs::JsonWriter&)>& grid) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("experiment").value(experiment);
  w.key("grid").begin_array();
  grid(w);
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace

// --- slugs / parsing ------------------------------------------------------

const char* fig2_scheme_slug(Fig2Scheme s) {
  switch (s) {
    case Fig2Scheme::kFifo: return "fifo";
    case Fig2Scheme::kPifoNaive: return "pifo";
    case Fig2Scheme::kQvisor: return "qvisor";
    case Fig2Scheme::kQvisorAdapt: return "qvisor-adapt";
  }
  return "unknown";
}

bool parse_fig2_scheme(const std::string& name, Fig2Scheme* out) {
  for (const Fig2Scheme s : fig2_all_schemes()) {
    if (name == fig2_scheme_slug(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::vector<Fig2Scheme> fig2_all_schemes() {
  return {Fig2Scheme::kFifo, Fig2Scheme::kPifoNaive, Fig2Scheme::kQvisor,
          Fig2Scheme::kQvisorAdapt};
}

const char* fig4_scheme_slug(Fig4Scheme s) {
  switch (s) {
    case Fig4Scheme::kFifoBoth: return "fifo";
    case Fig4Scheme::kPifoNaive: return "pifo";
    case Fig4Scheme::kPifoIdeal: return "pifo-ideal";
    case Fig4Scheme::kQvisorEdfOverPfabric: return "qvisor-edf";
    case Fig4Scheme::kQvisorShare: return "qvisor-share";
    case Fig4Scheme::kQvisorPfabricOverEdf: return "qvisor-pfabric";
  }
  return "unknown";
}

bool parse_fig4_scheme(const std::string& name, Fig4Scheme* out) {
  for (const Fig4Scheme s : fig4_all_schemes()) {
    if (name == fig4_scheme_slug(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::vector<Fig4Scheme> fig4_all_schemes() {
  return {Fig4Scheme::kFifoBoth,             Fig4Scheme::kPifoNaive,
          Fig4Scheme::kPifoIdeal,            Fig4Scheme::kQvisorEdfOverPfabric,
          Fig4Scheme::kQvisorShare,          Fig4Scheme::kQvisorPfabricOverEdf};
}

std::vector<std::uint64_t> parse_u64_list(const std::string& csv, bool* ok) {
  std::vector<std::uint64_t> out;
  *ok = false;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string tok = csv.substr(pos, comma - pos);
    if (tok.empty()) return {};
    try {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(tok, &used);
      if (used != tok.size()) return {};
      out.push_back(static_cast<std::uint64_t>(v));
    } catch (const std::exception&) {
      return {};
    }
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  *ok = !out.empty();
  return out;
}

std::vector<double> parse_double_list(const std::string& csv, bool* ok) {
  std::vector<double> out;
  *ok = false;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string tok = csv.substr(pos, comma - pos);
    if (tok.empty()) return {};
    try {
      std::size_t used = 0;
      const double v = std::stod(tok, &used);
      if (used != tok.size()) return {};
      out.push_back(v);
    } catch (const std::exception&) {
      return {};
    }
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  *ok = !out.empty();
  return out;
}

// --- fig2 -----------------------------------------------------------------

namespace {
struct Fig2CellOut {
  SweepCell cell;
  Fig2Result result;
  Fig2Scheme scheme = Fig2Scheme::kQvisorAdapt;
  std::uint64_t seed = 0;
};
}  // namespace

std::vector<SweepCell> run_fig2_sweep(const Fig2SweepConfig& sweep) {
  const std::size_t cells = sweep.schemes.size() * sweep.seeds.size();
  auto outs = exec::run_sweep<Fig2CellOut>(
      cells,
      [&sweep](std::size_t i) {
        const Fig2Scheme scheme = sweep.schemes[i / sweep.seeds.size()];
        const std::uint64_t seed = sweep.seeds[i % sweep.seeds.size()];
        Fig2CellOut out;
        out.scheme = scheme;
        out.seed = seed;
        out.cell.stem = sweep.out_dir + "/fig2_" + fig2_scheme_slug(scheme) +
                        seed_suffix(sweep.seeds, seed);
        ScopedLogCapture capture(&out.cell.log);
        CellObs cell_obs(sweep.obs);

        Fig2Config config = sweep.base;
        config.scheme = scheme;
        config.seed = seed;
        config.obs = &cell_obs.obs;
        config.flow_csv = out.cell.stem + "_flows.csv";
        out.result = run_fig2(config);
        cell_obs.save(out.cell.stem);

        std::string& s = out.cell.summary;
        appendf(s, "fig2 %s (seed %llu)\n", fig2_scheme_name(scheme),
                static_cast<unsigned long long>(seed));
        appendf(s,
                "  interactive: mean FCT %.3f ms, p99 %.3f ms (%zu flows)\n",
                out.result.interactive_mean_fct_ms,
                out.result.interactive_p99_fct_ms,
                out.result.interactive_flows);
        appendf(s, "  deadline met: %.3f\n", out.result.deadline_met);
        appendf(s, "  background: phase1 %.3f Gb/s, phase2 %.3f Gb/s\n",
                out.result.background_phase1_gbps,
                out.result.background_phase2_gbps);
        appendf(s, "  adaptations: %llu\n",
                static_cast<unsigned long long>(out.result.adaptations));
        appendf(s, "  artifacts: %s_{flows.csv,metrics.json,trace.json}\n",
                out.cell.stem.c_str());
        return out;
      },
      {sweep.jobs});

  write_summary_json(
      sweep.out_dir + "/fig2_summary.json", "fig2",
      [&outs](obs::JsonWriter& w) {
        for (const Fig2CellOut& o : outs) {
          w.begin_object();
          w.key("scheme").value(fig2_scheme_slug(o.scheme));
          w.key("seed").value(o.seed);
          w.key("interactive_mean_fct_ms")
              .value(o.result.interactive_mean_fct_ms);
          w.key("interactive_p99_fct_ms")
              .value(o.result.interactive_p99_fct_ms);
          w.key("interactive_flows")
              .value(static_cast<std::uint64_t>(o.result.interactive_flows));
          w.key("deadline_met").value(o.result.deadline_met);
          w.key("background_phase1_gbps")
              .value(o.result.background_phase1_gbps);
          w.key("background_phase2_gbps")
              .value(o.result.background_phase2_gbps);
          w.key("adaptations").value(o.result.adaptations);
          w.end_object();
        }
      });

  std::vector<SweepCell> result;
  result.reserve(outs.size());
  for (Fig2CellOut& o : outs) result.push_back(std::move(o.cell));
  return result;
}

// --- fig4 -----------------------------------------------------------------

namespace {
struct Fig4CellOut {
  SweepCell cell;
  Fig4Result result;
  Fig4Scheme scheme = Fig4Scheme::kQvisorPfabricOverEdf;
  double load = 0;
  std::uint64_t seed = 0;
};
}  // namespace

std::vector<SweepCell> run_fig4_sweep(const Fig4SweepConfig& sweep) {
  const std::size_t per_scheme = sweep.loads.size() * sweep.seeds.size();
  const std::size_t cells = sweep.schemes.size() * per_scheme;
  auto outs = exec::run_sweep<Fig4CellOut>(
      cells,
      [&sweep, per_scheme](std::size_t i) {
        const Fig4Scheme scheme = sweep.schemes[i / per_scheme];
        const double load =
            sweep.loads[(i % per_scheme) / sweep.seeds.size()];
        const std::uint64_t seed = sweep.seeds[i % sweep.seeds.size()];
        Fig4CellOut out;
        out.scheme = scheme;
        out.load = load;
        out.seed = seed;
        out.cell.stem = sweep.out_dir + "/fig4_" + fig4_scheme_slug(scheme) +
                        load_suffix(sweep.loads, load) +
                        seed_suffix(sweep.seeds, seed);
        ScopedLogCapture capture(&out.cell.log);
        CellObs cell_obs(sweep.obs);

        Fig4Config config = sweep.base;
        config.scheme = scheme;
        config.load = load;
        config.seed = seed;
        config.obs = &cell_obs.obs;
        config.flow_csv = out.cell.stem + "_flows.csv";
        out.result = run_fig4(config);
        cell_obs.save(out.cell.stem);

        std::string& s = out.cell.summary;
        appendf(s, "fig4 %s, load %.2f (seed %llu)\n",
                fig4_scheme_name(scheme), load,
                static_cast<unsigned long long>(seed));
        appendf(s,
                "  small flows: mean %.3f ms (lb %.3f), p99 %.3f ms (%zu)\n",
                out.result.mean_small_ms, out.result.mean_small_lb_ms,
                out.result.p99_small_ms, out.result.small_flows);
        appendf(s, "  large flows: mean %.3f ms (lb %.3f) (%zu)\n",
                out.result.mean_large_ms, out.result.mean_large_lb_ms,
                out.result.large_flows);
        appendf(s, "  EDF deadline met: %.3f, drops %llu, events %llu\n",
                out.result.edf_deadline_met,
                static_cast<unsigned long long>(out.result.drops),
                static_cast<unsigned long long>(out.result.events));
        appendf(s, "  artifacts: %s_{flows.csv,metrics.json,trace.json}\n",
                out.cell.stem.c_str());
        return out;
      },
      {sweep.jobs});

  write_summary_json(
      sweep.out_dir + "/fig4_summary.json", "fig4",
      [&outs](obs::JsonWriter& w) {
        for (const Fig4CellOut& o : outs) {
          w.begin_object();
          w.key("scheme").value(fig4_scheme_slug(o.scheme));
          w.key("load").value(o.load);
          w.key("seed").value(o.seed);
          w.key("mean_small_ms").value(o.result.mean_small_ms);
          w.key("mean_small_lb_ms").value(o.result.mean_small_lb_ms);
          w.key("p99_small_ms").value(o.result.p99_small_ms);
          w.key("small_flows")
              .value(static_cast<std::uint64_t>(o.result.small_flows));
          w.key("mean_large_ms").value(o.result.mean_large_ms);
          w.key("mean_large_lb_ms").value(o.result.mean_large_lb_ms);
          w.key("large_flows")
              .value(static_cast<std::uint64_t>(o.result.large_flows));
          w.key("edf_deadline_met").value(o.result.edf_deadline_met);
          w.key("drops").value(o.result.drops);
          w.key("events").value(o.result.events);
          w.end_object();
        }
      });

  std::vector<SweepCell> result;
  result.reserve(outs.size());
  for (Fig4CellOut& o : outs) result.push_back(std::move(o.cell));
  return result;
}

// --- chaos ----------------------------------------------------------------

namespace {
struct ChaosCellOut {
  SweepCell cell;
  ChaosResult result;
  std::uint64_t seed = 0;
};
}  // namespace

std::vector<SweepCell> run_chaos_sweep(const ChaosSweepConfig& sweep) {
  auto outs = exec::run_sweep<ChaosCellOut>(
      sweep.seeds.size(),
      [&sweep](std::size_t i) {
        const std::uint64_t seed = sweep.seeds[i];
        ChaosCellOut out;
        out.seed = seed;
        out.cell.stem =
            sweep.out_dir + "/chaos" + seed_suffix(sweep.seeds, seed);
        ScopedLogCapture capture(&out.cell.log);
        CellObs cell_obs(sweep.obs);

        ChaosConfig config = sweep.base;
        config.seed = seed;
        config.obs = &cell_obs.obs;
        out.result = run_chaos(config);
        cell_obs.save(out.cell.stem);

        const ChaosResult& r = out.result;
        out.cell.ok =
            r.conserved && r.epoch_mismatches == 0 && r.epochs_consistent &&
            (!config.control_faults ||
             (r.rollbacks > 0 && r.retries > 0 && r.reconciles > 0));

        std::string& s = out.cell.summary;
        appendf(s, "chaos (seed %llu)\n",
                static_cast<unsigned long long>(seed));
        appendf(s,
                "  offered %llu + injected %llu = delivered %llu + "
                "queue-drop %llu + fault-drop %llu + buffered %llu "
                "(conserved: %s)\n",
                static_cast<unsigned long long>(r.offered_pkts),
                static_cast<unsigned long long>(r.injected_pkts),
                static_cast<unsigned long long>(r.delivered_pkts),
                static_cast<unsigned long long>(r.queue_dropped_pkts),
                static_cast<unsigned long long>(r.fault_dropped_pkts),
                static_cast<unsigned long long>(r.buffered_pkts),
                r.conserved ? "yes" : "NO");
        appendf(s,
                "  link downs/ups %llu/%llu, epoch mismatches %llu, "
                "epochs %s\n",
                static_cast<unsigned long long>(r.link_downs),
                static_cast<unsigned long long>(r.link_ups),
                static_cast<unsigned long long>(r.epoch_mismatches),
                r.epochs_consistent ? "consistent" : "INCONSISTENT");
        appendf(s,
                "  adaptations %llu, retries %llu, rollbacks %llu, "
                "reconciles %llu, degraded %llu/%llu\n",
                static_cast<unsigned long long>(r.adaptations),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.rollbacks),
                static_cast<unsigned long long>(r.reconciles),
                static_cast<unsigned long long>(r.degraded_entries),
                static_cast<unsigned long long>(r.recoveries));
        appendf(s, "  plan: %s\n", r.plan_fingerprint.c_str());
        appendf(s, "  artifacts: %s_{metrics.json,trace.json}\n",
                out.cell.stem.c_str());
        return out;
      },
      {sweep.jobs});

  write_summary_json(
      sweep.out_dir + "/chaos_summary.json", "chaos",
      [&outs](obs::JsonWriter& w) {
        for (const ChaosCellOut& o : outs) {
          const ChaosResult& r = o.result;
          w.begin_object();
          w.key("seed").value(o.seed);
          w.key("offered_pkts").value(r.offered_pkts);
          w.key("injected_pkts").value(r.injected_pkts);
          w.key("delivered_pkts").value(r.delivered_pkts);
          w.key("queue_dropped_pkts").value(r.queue_dropped_pkts);
          w.key("fault_dropped_pkts").value(r.fault_dropped_pkts);
          w.key("buffered_pkts").value(r.buffered_pkts);
          w.key("conserved").value(r.conserved);
          w.key("epoch_mismatches").value(r.epoch_mismatches);
          w.key("epochs_consistent").value(r.epochs_consistent);
          w.key("link_downs").value(r.link_downs);
          w.key("adaptations").value(r.adaptations);
          w.key("retries").value(r.retries);
          w.key("rollbacks").value(r.rollbacks);
          w.key("reconciles").value(r.reconciles);
          w.key("degraded_entries").value(r.degraded_entries);
          w.key("recoveries").value(r.recoveries);
          w.key("committed_epoch").value(r.committed_epoch);
          w.key("plan_fingerprint").value(r.plan_fingerprint);
          w.key("ok").value(o.cell.ok);
          w.end_object();
        }
      });

  std::vector<SweepCell> result;
  result.reserve(outs.size());
  for (ChaosCellOut& o : outs) result.push_back(std::move(o.cell));
  return result;
}

// --- overload -------------------------------------------------------------

namespace {
struct OverloadCellOut {
  SweepCell cell;
  OverloadResult result;
  trafficgen::AdversaryMode mode = trafficgen::AdversaryMode::kFlooder;
  std::uint64_t seed = 0;
};

void append_overload_victim(std::string& s, const char* name,
                            const OverloadTenantStats& b,
                            const OverloadTenantStats& a) {
  appendf(s,
          "  %s: delivered %llu -> %llu bytes (%.1f%%), p99 %lld -> "
          "%lld ns\n",
          name, static_cast<unsigned long long>(b.delivered_bytes),
          static_cast<unsigned long long>(a.delivered_bytes),
          b.delivered_bytes == 0
              ? 0.0
              : 100.0 * static_cast<double>(a.delivered_bytes) /
                    static_cast<double>(b.delivered_bytes),
          static_cast<long long>(b.p99_latency),
          static_cast<long long>(a.p99_latency));
}
}  // namespace

std::vector<SweepCell> run_overload_sweep(const OverloadSweepConfig& sweep) {
  const std::size_t cells = sweep.modes.size() * sweep.seeds.size();
  auto outs = exec::run_sweep<OverloadCellOut>(
      cells,
      [&sweep](std::size_t i) {
        const trafficgen::AdversaryMode mode =
            sweep.modes[i / sweep.seeds.size()];
        const std::uint64_t seed = sweep.seeds[i % sweep.seeds.size()];
        OverloadCellOut out;
        out.mode = mode;
        out.seed = seed;
        out.cell.stem = sweep.out_dir + "/overload_" +
                        trafficgen::adversary_mode_name(mode) +
                        seed_suffix(sweep.seeds, seed);
        ScopedLogCapture capture(&out.cell.log);
        CellObs cell_obs(sweep.obs);

        OverloadConfig config = sweep.base;
        config.mode = mode;
        config.seed = seed;
        config.obs = &cell_obs.obs;
        out.result = run_overload(config);
        cell_obs.save(out.cell.stem);
        out.cell.ok = out.result.ok;

        const OverloadRun& atk = out.result.attack;
        const OverloadRun& base = out.result.baseline;
        std::string& s = out.cell.summary;
        appendf(s, "overload (mode %s, seed %llu, guard %s)\n",
                trafficgen::adversary_mode_name(mode),
                static_cast<unsigned long long>(seed),
                config.guard ? "on" : "off");
        append_overload_victim(s, "gold  ", base.gold, atk.gold);
        append_overload_victim(s, "silver", base.silver, atk.silver);
        appendf(s,
                "  attacker: offered %llu bytes, admitted %llu bytes, "
                "drops rate/share/quantile %llu/%llu/%llu\n",
                static_cast<unsigned long long>(atk.attacker.offered_bytes),
                static_cast<unsigned long long>(atk.attacker_admitted_bytes),
                static_cast<unsigned long long>(atk.guard_rate_dropped),
                static_cast<unsigned long long>(atk.guard_share_dropped),
                static_cast<unsigned long long>(atk.guard_quantile_dropped));
        appendf(s,
                "  quarantines %llu, unquarantines %llu, spill tracked "
                "max %zu (evictions %llu), monitor tracked max %zu "
                "(untracked %llu)\n",
                static_cast<unsigned long long>(atk.quarantines),
                static_cast<unsigned long long>(atk.unquarantines),
                atk.max_spill_tracked,
                static_cast<unsigned long long>(atk.spill_evictions),
                atk.max_tracked_tenants,
                static_cast<unsigned long long>(atk.untracked_observations));
        appendf(s,
                "  checks: conserved %s/%s, guard-balanced %s, "
                "accounting %s, throughput %s, latency %s, throttled %s, "
                "quarantined %s, bounded %s\n",
                base.conserved ? "yes" : "NO", atk.conserved ? "yes" : "NO",
                atk.guard_balanced ? "yes" : "NO",
                atk.accounting_balanced ? "yes" : "NO",
                out.result.victims_throughput_ok ? "yes" : "NO",
                out.result.victims_latency_ok ? "yes" : "NO",
                out.result.attacker_throttled ? "yes" : "NO",
                out.result.attacker_quarantined ? "yes" : "NO",
                out.result.state_bounded ? "yes" : "NO");
        appendf(s, "  artifacts: %s_{metrics.json,trace.json}\n",
                out.cell.stem.c_str());
        return out;
      },
      {sweep.jobs});

  write_summary_json(
      sweep.out_dir + "/overload_summary.json", "overload",
      [&outs](obs::JsonWriter& w) {
        for (const OverloadCellOut& o : outs) {
          const OverloadRun& atk = o.result.attack;
          w.begin_object();
          w.key("mode").value(trafficgen::adversary_mode_name(o.mode));
          w.key("seed").value(o.seed);
          w.key("gold_delivered_bytes").value(atk.gold.delivered_bytes);
          w.key("silver_delivered_bytes").value(atk.silver.delivered_bytes);
          w.key("attacker_admitted_bytes").value(atk.attacker_admitted_bytes);
          w.key("guard_rate_dropped").value(atk.guard_rate_dropped);
          w.key("guard_share_dropped").value(atk.guard_share_dropped);
          w.key("guard_quantile_dropped").value(atk.guard_quantile_dropped);
          w.key("quarantines").value(atk.quarantines);
          w.key("victims_throughput_ok")
              .value(o.result.victims_throughput_ok);
          w.key("victims_latency_ok").value(o.result.victims_latency_ok);
          w.key("attacker_throttled").value(o.result.attacker_throttled);
          w.key("attacker_quarantined").value(o.result.attacker_quarantined);
          w.key("state_bounded").value(o.result.state_bounded);
          w.key("ok").value(o.result.ok);
          w.end_object();
        }
      });

  std::vector<SweepCell> result;
  result.reserve(outs.size());
  for (OverloadCellOut& o : outs) result.push_back(std::move(o.cell));
  return result;
}

}  // namespace qv::experiments
