#include "experiments/fig2.hpp"

#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "experiments/obs_wiring.hpp"
#include "netsim/network.hpp"
#include "netsim/topology.hpp"
#include "obs/obs.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/qvisor.hpp"
#include "qvisor/runtime.hpp"
#include "sched/fifo.hpp"
#include "sched/pifo.hpp"
#include "sched/rank/edf.hpp"
#include "sched/rank/pfabric.hpp"
#include "sched/rank/stfq.hpp"
#include "telemetry/fct_tracker.hpp"
#include "telemetry/trace_io.hpp"
#include "trafficgen/cbr_source.hpp"
#include "trafficgen/host_source.hpp"
#include "workload/arrivals.hpp"
#include "workload/cdf.hpp"

namespace qv::experiments {

namespace {

constexpr TenantId kInteractive = 1;
constexpr TenantId kDeadline = 2;
constexpr TenantId kBackground = 3;

}  // namespace

const char* fig2_scheme_name(Fig2Scheme scheme) {
  switch (scheme) {
    case Fig2Scheme::kFifo:
      return "FIFO";
    case Fig2Scheme::kPifoNaive:
      return "PIFO (naive ranks)";
    case Fig2Scheme::kQvisor:
      return "QVISOR (static)";
    case Fig2Scheme::kQvisorAdapt:
      return "QVISOR (+runtime)";
  }
  return "?";
}

Fig2Result run_fig2(const Fig2Config& config) {
  assert(config.hosts >= 5);
  netsim::Simulator sim;
  sim.set_simcore(config.per_event_simcore
                      ? netsim::Simulator::SimCore::kPerEventReference
                      : netsim::Simulator::SimCore::kOverhauled);

  // --- tenant rank functions -------------------------------------------
  const std::int64_t max_flow = 200'000;  // interactive flows <= 200 KB
  auto pfabric_ranker = std::make_shared<sched::PFabricRanker>(
      1, static_cast<Rank>(max_flow + 1));
  auto edf_ranker = std::make_shared<sched::EdfRanker>(
      microseconds(1),
      static_cast<Rank>(config.cbr_deadline_slack / microseconds(1) + 1));
  auto fq_ranker = std::make_shared<sched::StfqRanker>(1, 1 << 16);

  const bool uses_qvisor = config.scheme == Fig2Scheme::kQvisor ||
                           config.scheme == Fig2Scheme::kQvisorAdapt;
  std::unique_ptr<qvisor::Hypervisor> hv;
  if (uses_qvisor) {
    std::vector<qvisor::TenantSpec> tenants;
    tenants.push_back(qvisor::TenantSpec::make(
        kInteractive, "interactive", pfabric_ranker));
    tenants.push_back(
        qvisor::TenantSpec::make(kDeadline, "deadline", edf_ranker));
    tenants.push_back(
        qvisor::TenantSpec::make(kBackground, "background", fq_ranker));
    auto parsed =
        qvisor::parse_policy("interactive + deadline >> background");
    assert(parsed.ok());
    hv = std::make_unique<qvisor::Hypervisor>(
        std::move(tenants), std::move(*parsed.policy),
        std::make_shared<qvisor::PifoBackend>());
    auto compiled = hv->compile();
    if (!compiled.ok) {
      throw std::runtime_error("fig2: compile failed: " + compiled.error);
    }
  }

  netsim::SchedulerFactory factory =
      [&](const netsim::PortContext&) -> std::unique_ptr<sched::Scheduler> {
    switch (config.scheme) {
      case Fig2Scheme::kFifo:
        return std::make_unique<sched::FifoQueue>();
      case Fig2Scheme::kPifoNaive:
        return std::make_unique<sched::PifoQueue>();
      default:
        return hv->make_port_scheduler();
    }
  };

  netsim::Network net(sim);
  auto topo = netsim::build_single_switch(net, config.hosts, config.rate,
                                          microseconds(1), factory);

  // --- telemetry ----------------------------------------------------------
  // Everything converges on host 0 (the congested egress of Fig. 2).
  telemetry::FctTracker fct;
  telemetry::DeadlineTracker deadlines;
  std::int64_t bg_phase1_bytes = 0;
  std::int64_t bg_phase2_bytes = 0;
  topo.hosts[0]->set_sink([&](const Packet& p) {
    fct.on_packet_delivered(p, sim.now());
    if (p.tenant == kDeadline) deadlines.on_packet_delivered(p, sim.now());
    if (p.tenant == kBackground) {
      if (sim.now() >= config.warmup && sim.now() < config.t1) {
        bg_phase1_bytes += p.size_bytes;
      } else if (sim.now() >= config.t1 && sim.now() < config.end) {
        bg_phase2_bytes += p.size_bytes;
      }
    }
  });

  // --- T1: interactive short flows, hosts 1..3 -> host 0, until t1 ------
  std::vector<std::unique_ptr<trafficgen::HostSource>> interactive;
  for (std::size_t h = 1; h <= 3; ++h) {
    interactive.push_back(std::make_unique<trafficgen::HostSource>(
        sim, *topo.hosts[h], kInteractive, pfabric_ranker, config.rate));
  }
  const workload::Cdf cdf = workload::web_search_cdf(max_flow);
  workload::ArrivalConfig arrivals_cfg;
  arrivals_cfg.load = config.interactive_load / 3.0;  // split over 3 hosts
  arrivals_cfg.access_rate = config.rate;
  arrivals_cfg.num_hosts = 3;
  arrivals_cfg.start = 0;
  arrivals_cfg.end = config.t1;
  arrivals_cfg.seed = config.seed;
  FlowId next_flow = 1000;
  for (const auto& arrival :
       workload::generate_poisson_arrivals(arrivals_cfg, cdf)) {
    const FlowId flow = next_flow++;
    sim.at(arrival.at, [&, flow, arrival] {
      fct.on_flow_start(flow, kInteractive, arrival.size_bytes, sim.now());
      interactive[arrival.src_host]->start_flow(
          flow, topo.hosts[0]->id(), arrival.size_bytes);
    });
  }

  // --- T2: deadline CBR, host 4 -> host 0, until t1 ----------------------
  trafficgen::CbrSource cbr(sim, *topo.hosts[4], topo.hosts[0]->id(),
                            /*flow=*/1, kDeadline, edf_ranker,
                            config.cbr_rate, config.cbr_deadline_slack,
                            /*start=*/0, /*stop=*/config.t1);

  // --- T3: background bulk, last host -> host 0, whole run ---------------
  trafficgen::HostSource bulk(sim, *topo.hosts[config.hosts - 1],
                              kBackground, fq_ranker, config.rate);
  // Back-to-back bulk flows: start the next when the previous finishes
  // sending, so the background tenant is always backlogged.
  FlowId bulk_flow = 1;
  std::function<void()> start_bulk = [&] {
    if (sim.now() >= config.end) return;
    bulk.start_flow(500'000 + bulk_flow++, topo.hosts[0]->id(),
                    config.bulk_flow_bytes);
  };
  bulk.set_on_flow_sent([&](FlowId, TimeNs) { start_bulk(); });
  sim.at(0, [&] { start_bulk(); });

  // --- runtime controller --------------------------------------------------
  std::unique_ptr<qvisor::RuntimeController> controller;
  if (config.scheme == Fig2Scheme::kQvisorAdapt) {
    qvisor::RuntimeConfig rc;
    // The window must cover the interactive tenant's arrival gaps, or
    // the controller thrashes (deactivating a merely-bursty tenant
    // demotes its in-flight traffic to best effort — see the runtime
    // test suite for the pathology).
    rc.activity_window = milliseconds(10);
    rc.min_reconfig_interval = milliseconds(2);
    controller = std::make_unique<qvisor::RuntimeController>(*hv, rc);
    for (TimeNs t = milliseconds(1); t < config.end; t += milliseconds(1)) {
      sim.at(t, [&, t] { controller->tick(t); });
    }
  }

  // --- observability -------------------------------------------------------
  if (config.obs != nullptr) {
    wire_network_obs(net, *config.obs, config.end);
    if (hv) wire_hypervisor_obs(*hv, *config.obs);
    if (controller) controller->set_tracer(&config.obs->tracer);
  }

  sim.run_until(config.end);

  // --- collect ----------------------------------------------------------------
  Fig2Result result;
  telemetry::FlowFilter phase1;
  phase1.tenant = kInteractive;
  phase1.started_from = config.warmup;
  phase1.started_to = config.t1 - milliseconds(5);  // room to finish
  const Sample fcts = fct.fct_lower_bound_ms(phase1, config.end);
  result.interactive_mean_fct_ms = fcts.mean();
  result.interactive_p99_fct_ms = fcts.p99();
  result.interactive_flows = fcts.count();
  result.deadline_met = deadlines.met_fraction();
  const double phase1_secs = to_seconds(config.t1 - config.warmup);
  const double phase2_secs = to_seconds(config.end - config.t1);
  result.background_phase1_gbps =
      static_cast<double>(bg_phase1_bytes) * 8.0 / phase1_secs / 1e9;
  result.background_phase2_gbps =
      static_cast<double>(bg_phase2_bytes) * 8.0 / phase2_secs / 1e9;
  if (controller) result.adaptations = controller->adaptations();

  if (!config.flow_csv.empty()) {
    telemetry::save_flow_csv(config.flow_csv, fct);
  }

  // Export + freeze LAST, while the schedulers/hypervisor the registry
  // views point at are still alive; after freeze() the registry is
  // self-contained and outlives this function.
  if (config.obs != nullptr) {
    obs::Registry& reg = config.obs->registry;
    export_network_metrics(net, reg);
    if (hv) hv->export_metrics(reg, "qvisor");
    if (controller) controller->export_metrics(reg, "runtime");
    reg.counter("sim.events_processed").inc(sim.events_processed());
    reg.set_gauge("result.interactive_mean_fct_ms",
                  result.interactive_mean_fct_ms);
    reg.set_gauge("result.interactive_p99_fct_ms",
                  result.interactive_p99_fct_ms);
    reg.set_gauge("result.deadline_met", result.deadline_met);
    reg.set_gauge("result.background_phase1_gbps",
                  result.background_phase1_gbps);
    reg.set_gauge("result.background_phase2_gbps",
                  result.background_phase2_gbps);
    reg.set_gauge("result.adaptations",
                  static_cast<double>(result.adaptations));
    reg.freeze();
  }
  return result;
}

}  // namespace qv::experiments
