// chaos: run the fault-injection harness over a seed grid and emit each
// cell's artifacts:
//
//   chaos[_s<seed>]_metrics.json  the full metrics registry (fault
//                                 counters, rollbacks/retries/
//                                 reconciles, conservation)
//   chaos[_s<seed>]_trace.json    Chrome trace-event timeline: link
//                                 outage spans, install failures,
//                                 rollbacks, reconciles, degraded
//                                 enter/exit (runtime category)
//   chaos_summary.json            the whole grid, in grid order
//
// Seeds fan across cores (--jobs, default hardware_concurrency); every
// artifact except trace.json is byte-identical for every --jobs value.
// Exits non-zero when any seed's invariant fails, so CI can run the
// whole former seed-matrix as ONE invocation.
#include <cstdio>
#include <string>

#include "experiments/sweeps.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_int("seed", 1, "fault-schedule RNG seed");
  flags.define_string("seeds", "", "comma-separated seed list (grid axis); "
                      "overrides --seed");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("jobs", 0,
                   "parallel runs (0 = hardware concurrency, 1 = serial; "
                   "output is byte-identical either way)");
  flags.define_bool("faults", true, "arm the random data-plane faults");
  flags.define_bool("control-faults", true,
                    "inject the install-fault window + agent reboot");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::ChaosSweepConfig sweep;
  sweep.base.faults = flags.get_bool("faults");
  sweep.base.control_faults = flags.get_bool("control-faults");
  if (!flags.get_string("seeds").empty()) {
    bool ok = false;
    sweep.seeds =
        qv::experiments::parse_u64_list(flags.get_string("seeds"), &ok);
    if (!ok) {
      std::fprintf(stderr, "chaos: bad --seeds '%s'\n",
                   flags.get_string("seeds").c_str());
      return 1;
    }
  } else {
    sweep.seeds = {static_cast<std::uint64_t>(flags.get_int("seed"))};
  }
  sweep.out_dir = flags.get_string("out");
  sweep.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  sweep.obs.trace = flags.get_bool("trace");
  sweep.obs.trace_capacity =
      static_cast<std::size_t>(flags.get_int("trace-capacity"));

  const auto cells = qv::experiments::run_chaos_sweep(sweep);
  bool all_ok = true;
  for (const auto& cell : cells) {
    if (!cell.log.empty()) std::fputs(cell.log.c_str(), stderr);
    std::fputs(cell.summary.c_str(), stdout);
    if (!cell.ok) {
      std::fprintf(stderr, "chaos: INVARIANT VIOLATED (%s)\n",
                   cell.stem.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
