// chaos: run the fault-injection harness and emit run artifacts:
//
//   chaos_metrics.json  the full metrics registry (fault counters,
//                       rollbacks/retries/reconciles, conservation)
//   chaos_trace.json    Chrome trace-event timeline: link outage spans,
//                       install failures, rollbacks, reconciles,
//                       degraded enter/exit (runtime category)
//
// Exits non-zero when an invariant fails, so CI can run it directly.
#include <cstdio>
#include <string>

#include "experiments/chaos.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_int("seed", 1, "fault-schedule RNG seed");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_bool("faults", true, "arm the random data-plane faults");
  flags.define_bool("control-faults", true,
                    "inject the install-fault window + agent reboot");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::obs::Observability obs(
      static_cast<std::size_t>(flags.get_int("trace-capacity")));
  if (flags.get_bool("trace")) {
    obs.tracer.set_mask(
        qv::obs::trace_bit(qv::obs::TraceCategory::kSched) |
        qv::obs::trace_bit(qv::obs::TraceCategory::kQvisor) |
        qv::obs::trace_bit(qv::obs::TraceCategory::kRuntime));
  }

  qv::experiments::ChaosConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.faults = flags.get_bool("faults");
  config.control_faults = flags.get_bool("control-faults");
  config.obs = &obs;

  const auto result = qv::experiments::run_chaos(config);

  const std::string base = flags.get_string("out") + "/chaos";
  qv::obs::save_metrics_json(base + "_metrics.json", obs.registry);
  qv::obs::save_trace_json(base + "_trace.json", obs.tracer);

  std::printf("chaos (seed %llu)\n",
              static_cast<unsigned long long>(config.seed));
  std::printf(
      "  offered %llu + injected %llu = delivered %llu + queue-drop %llu"
      " + fault-drop %llu + buffered %llu (conserved: %s)\n",
      static_cast<unsigned long long>(result.offered_pkts),
      static_cast<unsigned long long>(result.injected_pkts),
      static_cast<unsigned long long>(result.delivered_pkts),
      static_cast<unsigned long long>(result.queue_dropped_pkts),
      static_cast<unsigned long long>(result.fault_dropped_pkts),
      static_cast<unsigned long long>(result.buffered_pkts),
      result.conserved ? "yes" : "NO");
  std::printf(
      "  link downs/ups %llu/%llu, epoch mismatches %llu, epochs %s\n",
      static_cast<unsigned long long>(result.link_downs),
      static_cast<unsigned long long>(result.link_ups),
      static_cast<unsigned long long>(result.epoch_mismatches),
      result.epochs_consistent ? "consistent" : "INCONSISTENT");
  std::printf(
      "  adaptations %llu, retries %llu, rollbacks %llu, reconciles %llu,"
      " degraded %llu/%llu\n",
      static_cast<unsigned long long>(result.adaptations),
      static_cast<unsigned long long>(result.retries),
      static_cast<unsigned long long>(result.rollbacks),
      static_cast<unsigned long long>(result.reconciles),
      static_cast<unsigned long long>(result.degraded_entries),
      static_cast<unsigned long long>(result.recoveries));
  std::printf("  plan: %s\n", result.plan_fingerprint.c_str());
  std::printf("  artifacts: %s_{metrics.json,trace.json}\n", base.c_str());

  const bool ok =
      result.conserved && result.epoch_mismatches == 0 &&
      result.epochs_consistent &&
      (!config.control_faults ||
       (result.rollbacks > 0 && result.retries > 0 &&
        result.reconciles > 0));
  if (!ok) std::fprintf(stderr, "chaos: INVARIANT VIOLATED\n");
  return ok ? 0 : 1;
}
