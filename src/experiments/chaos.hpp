// Chaos harness (robustness): a leaf-spine fabric under a seeded
// random fault schedule — link flaps, loss episodes, pressure spikes —
// while the fleet controller keeps re-synthesizing through an injected
// control-plane outage (switch agent rejecting installs) and a switch
// agent reboot.
//
// The run checks the three invariants the fault-tolerance machinery
// promises:
//   1. packet conservation — every offered or injected packet is
//      delivered, queue-dropped, fault-dropped, or still buffered;
//   2. no packet is ever scheduled under a half-installed plan (every
//      port's epoch-mismatch counter stays zero);
//   3. post-recovery convergence — once faults clear, the fleet's plan
//      fingerprint equals the one a fault-free run settles on.
// Faulty runs replay bit-identically from the same seed.
#pragma once

#include <cstdint>
#include <string>

#include "netsim/fault.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qv::obs {
struct Observability;
}

namespace qv::experiments {

struct ChaosConfig {
  std::uint64_t seed = 1;

  // Topology: small leaf-spine (leaves * hosts_per_leaf hosts).
  std::size_t leaves = 2;
  std::size_t spines = 2;
  std::size_t hosts_per_leaf = 2;
  BitsPerSec access_rate = gbps(1);
  BitsPerSec fabric_rate = gbps(4);
  TimeNs link_delay = microseconds(1);

  // Workload: every host sends cross-leaf CBR-ish traffic; the tenant
  // is host % 3 (gold / silver / bronze). Bronze pauses in
  // [bronze_off, bronze_on) so the controller has a reason to adapt.
  TimeNs traffic_stop = milliseconds(50);
  TimeNs end = milliseconds(60);  ///< drain horizon (then run to empty)
  TimeNs packet_interval = microseconds(20);
  std::int32_t packet_bytes = 1000;
  TimeNs bronze_off = milliseconds(15);
  TimeNs bronze_on = milliseconds(35);

  // Data-plane chaos: the seeded random schedule (disable for the
  // fault-free reference run).
  bool faults = true;
  netsim::RandomFaultConfig fault_cfg = {
      .start = milliseconds(5),
      .end = milliseconds(40),
      .flaps = 4,
      .min_down = microseconds(100),
      .max_down = milliseconds(2),
      .loss_episodes = 2,
      .max_loss = 0.02,
      .loss_duration = milliseconds(1),
      .pressure_spikes = 2,
      .spike_packets = 32,
      .spike_bytes = 1000,
  };

  // Control-plane chaos: one switch agent rejects every install inside
  // the window (forcing rollbacks, retries, and — once the budget runs
  // out — degraded mode), and another agent reboots, losing its plan
  // (healed by anti-entropy).
  bool control_faults = true;
  TimeNs install_fault_from = milliseconds(18);
  TimeNs install_fault_to = milliseconds(30);
  TimeNs reboot_at = milliseconds(42);
  std::size_t reboot_switch = 0;

  // Controller cadence / self-healing knobs.
  TimeNs tick_interval = milliseconds(1);
  TimeNs activity_window = milliseconds(5);
  int retry_budget = 2;
  TimeNs retry_backoff = milliseconds(1);
  TimeNs retry_backoff_cap = milliseconds(4);

  /// Run on the pre-overhaul simulation core (heap event ordering +
  /// per-packet link events) — the differential-testing reference.
  bool per_event_simcore = false;

  /// Optional instrumentation (not owned); see Fig2Config::obs.
  obs::Observability* obs = nullptr;
};

struct ChaosResult {
  // Conservation tallies (packets / bytes).
  std::uint64_t offered_pkts = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t injected_pkts = 0;  ///< pressure spikes
  std::uint64_t injected_bytes = 0;
  std::uint64_t delivered_pkts = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t queue_dropped_pkts = 0;
  std::uint64_t queue_dropped_bytes = 0;
  std::uint64_t fault_dropped_pkts = 0;
  std::uint64_t fault_dropped_bytes = 0;
  std::uint64_t buffered_pkts = 0;  ///< left in queues after the drain
  std::uint64_t unrouted_pkts = 0;
  bool conserved = false;  ///< both pkt and byte equations hold

  // Atomic-install invariant.
  std::uint64_t epoch_mismatches = 0;
  bool epochs_consistent = false;

  // Fault + self-healing activity.
  std::uint64_t link_downs = 0;
  std::uint64_t link_ups = 0;
  std::uint64_t adaptations = 0;
  std::uint64_t retries = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t reconciles = 0;
  std::uint64_t failed_installs = 0;
  std::uint64_t degraded_entries = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t committed_epoch = 0;

  /// Order-independent digest of the final plan (tenant name + output
  /// band per tenant); equal digests mean equal scheduling behaviour.
  std::string plan_fingerprint;
};

ChaosResult run_chaos(const ChaosConfig& config);

}  // namespace qv::experiments
