// fig2: run the paper's Fig. 2 scenario — one scheme, a list of
// schemes, or the whole grid crossed with a seed list — and emit each
// cell's artifacts next to each other in --out:
//
//   fig2_<scheme>[_s<seed>]_flows.csv    per-flow records
//   fig2_<scheme>[_s<seed>]_metrics.json the full metrics registry
//   fig2_<scheme>[_s<seed>]_trace.json   Chrome trace-event timeline
//   fig2_summary.json                    the whole grid, in grid order
//
// The grid fans across cores (--jobs, default hardware_concurrency);
// artifacts and summaries are byte-identical for every --jobs value
// (trace.json excepted: its span durations record wall-clock handler
// cost by design). Simulator dispatch spans are the bulk of a trace,
// so the `sim` category is opt-in via --trace-sim; --no-trace disables
// the timeline entirely.
#include <cstdio>
#include <string>

#include "experiments/sweeps.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_string("scheme", "qvisor-adapt",
                      "fifo | pifo | qvisor | qvisor-adapt | all");
  flags.define_string("seeds", "", "comma-separated seed list (grid axis); "
                      "overrides --seed");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("seed", 1, "workload RNG seed");
  flags.define_int("jobs", 0,
                   "parallel runs (0 = hardware concurrency, 1 = serial; "
                   "output is byte-identical either way)");
  flags.define_int("sample-interval-us", 100,
                   "periodic sampler cadence (simulated microseconds)");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  flags.define_bool("trace-sim", false,
                    "also trace simulator event dispatch (voluminous)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::Fig2SweepConfig sweep;
  const std::string scheme = flags.get_string("scheme");
  if (scheme == "all") {
    sweep.schemes = qv::experiments::fig2_all_schemes();
  } else {
    qv::experiments::Fig2Scheme one;
    if (!qv::experiments::parse_fig2_scheme(scheme, &one)) {
      std::fprintf(stderr, "fig2: unknown --scheme '%s'\n", scheme.c_str());
      return 1;
    }
    sweep.schemes = {one};
  }
  if (!flags.get_string("seeds").empty()) {
    bool ok = false;
    sweep.seeds = qv::experiments::parse_u64_list(flags.get_string("seeds"),
                                                  &ok);
    if (!ok) {
      std::fprintf(stderr, "fig2: bad --seeds '%s'\n",
                   flags.get_string("seeds").c_str());
      return 1;
    }
  } else {
    sweep.seeds = {static_cast<std::uint64_t>(flags.get_int("seed"))};
  }
  sweep.out_dir = flags.get_string("out");
  sweep.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  sweep.obs.trace = flags.get_bool("trace");
  sweep.obs.trace_sim = flags.get_bool("trace-sim");
  sweep.obs.trace_capacity =
      static_cast<std::size_t>(flags.get_int("trace-capacity"));
  sweep.obs.sample_interval_us = flags.get_int("sample-interval-us");

  const auto cells = qv::experiments::run_fig2_sweep(sweep);
  for (const auto& cell : cells) {
    if (!cell.log.empty()) std::fputs(cell.log.c_str(), stderr);
    std::fputs(cell.summary.c_str(), stdout);
  }
  return 0;
}
