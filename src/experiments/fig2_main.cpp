// fig2: run one scheme of the paper's Fig. 2 scenario and emit the run
// artifacts next to each other in --out:
//
//   fig2_<scheme>_flows.csv   per-flow records (plotting input)
//   fig2_<scheme>_metrics.json  the full metrics registry
//   fig2_<scheme>_trace.json  Chrome trace-event timeline (Perfetto)
//
// Simulator dispatch spans are the bulk of a trace, so the `sim`
// category is opt-in via --trace-sim; scheduler/qvisor/runtime events
// are on whenever tracing is (--no-trace disables it entirely).
#include <cstdio>
#include <string>

#include "experiments/fig2.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"

namespace {

bool parse_scheme(const std::string& name,
                  qv::experiments::Fig2Scheme* out) {
  using qv::experiments::Fig2Scheme;
  if (name == "fifo") *out = Fig2Scheme::kFifo;
  else if (name == "pifo") *out = Fig2Scheme::kPifoNaive;
  else if (name == "qvisor") *out = Fig2Scheme::kQvisor;
  else if (name == "qvisor-adapt") *out = Fig2Scheme::kQvisorAdapt;
  else return false;
  return true;
}

const char* scheme_slug(qv::experiments::Fig2Scheme s) {
  using qv::experiments::Fig2Scheme;
  switch (s) {
    case Fig2Scheme::kFifo: return "fifo";
    case Fig2Scheme::kPifoNaive: return "pifo";
    case Fig2Scheme::kQvisor: return "qvisor";
    case Fig2Scheme::kQvisorAdapt: return "qvisor-adapt";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_string("scheme", "qvisor-adapt",
                      "fifo | pifo | qvisor | qvisor-adapt");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("seed", 1, "workload RNG seed");
  flags.define_int("sample-interval-us", 100,
                   "periodic sampler cadence (simulated microseconds)");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  flags.define_bool("trace-sim", false,
                    "also trace simulator event dispatch (voluminous)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::Fig2Config config;
  if (!parse_scheme(flags.get_string("scheme"), &config.scheme)) {
    std::fprintf(stderr, "fig2: unknown --scheme '%s'\n",
                 flags.get_string("scheme").c_str());
    return 1;
  }
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  qv::obs::Observability obs(
      static_cast<std::size_t>(flags.get_int("trace-capacity")));
  obs.sample_interval = qv::microseconds(flags.get_int("sample-interval-us"));
  if (flags.get_bool("trace")) {
    std::uint32_t mask = qv::obs::trace_bit(qv::obs::TraceCategory::kSched) |
                         qv::obs::trace_bit(qv::obs::TraceCategory::kQvisor) |
                         qv::obs::trace_bit(qv::obs::TraceCategory::kRuntime);
    if (flags.get_bool("trace-sim")) {
      mask |= qv::obs::trace_bit(qv::obs::TraceCategory::kSim);
    }
    obs.tracer.set_mask(mask);
  }

  const std::string base =
      flags.get_string("out") + "/fig2_" + scheme_slug(config.scheme);
  config.obs = &obs;
  config.flow_csv = base + "_flows.csv";

  const auto result = qv::experiments::run_fig2(config);

  qv::obs::save_metrics_json(base + "_metrics.json", obs.registry);
  qv::obs::save_trace_json(base + "_trace.json", obs.tracer);

  std::printf("fig2 %s (seed %llu)\n",
              qv::experiments::fig2_scheme_name(config.scheme),
              static_cast<unsigned long long>(config.seed));
  std::printf("  interactive: mean FCT %.3f ms, p99 %.3f ms (%zu flows)\n",
              result.interactive_mean_fct_ms, result.interactive_p99_fct_ms,
              result.interactive_flows);
  std::printf("  deadline met: %.3f\n", result.deadline_met);
  std::printf("  background: phase1 %.3f Gb/s, phase2 %.3f Gb/s\n",
              result.background_phase1_gbps, result.background_phase2_gbps);
  std::printf("  adaptations: %llu\n",
              static_cast<unsigned long long>(result.adaptations));
  std::printf("  artifacts: %s_{flows.csv,metrics.json,trace.json}\n",
              base.c_str());
  return 0;
}
