// Parallel experiment sweeps: every experiment grid (fig2 schemes x
// seeds, fig4 schemes x loads x seeds, chaos seeds, overload modes x
// seeds) fanned across cores by the exec engine, with artifacts and
// summaries reduced in deterministic grid order.
//
// Each cell is fully isolated: it builds its own Observability
// (registry + tracer + samplers), its own Simulator and RNG streams
// inside the run_* function, writes only cell-unique files
// (<stem>_flows.csv / <stem>_metrics.json / <stem>_trace.json), and
// captures its log records into the cell instead of stderr. The
// reducer (calling thread) then writes <experiment>_summary.json and
// returns the cells in grid order — so for every artifact EXCEPT
// trace.json, `--jobs N` output is byte-identical to `--jobs 1`.
// trace.json is excluded from the byte-identity contract only because
// span durations deliberately record wall-clock handler cost (see
// obs/trace.hpp); every simulated-time field in it is deterministic.
//
// Grid order is row-major over the parameter vectors in declaration
// order (schemes, then loads, then seeds), i.e. exactly the nested
// loops a serial driver would write.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/chaos.hpp"
#include "experiments/fig2.hpp"
#include "experiments/fig4.hpp"
#include "experiments/overload.hpp"
#include "trafficgen/adversary_source.hpp"

namespace qv::experiments {

/// One completed grid cell, in grid order.
struct SweepCell {
  std::string stem;     ///< artifact path stem (out_dir + "/fig2_qvisor"...)
  std::string summary;  ///< human-readable result block (newline-terminated)
  std::string log;      ///< captured QV_LOG records from this run
  bool ok = true;       ///< run-level invariants (chaos / overload)
};

/// Observability shape shared by every cell of a sweep.
struct SweepObsOptions {
  bool trace = true;
  bool trace_sim = false;  ///< fig2/fig4: also trace simulator dispatch
  std::size_t trace_capacity = 1u << 16;
  std::int64_t sample_interval_us = 100;  ///< fig2/fig4 samplers
};

// --- slug / list helpers (shared by CLIs and tests) -----------------------

const char* fig2_scheme_slug(Fig2Scheme s);
bool parse_fig2_scheme(const std::string& name, Fig2Scheme* out);
std::vector<Fig2Scheme> fig2_all_schemes();

const char* fig4_scheme_slug(Fig4Scheme s);
bool parse_fig4_scheme(const std::string& name, Fig4Scheme* out);
std::vector<Fig4Scheme> fig4_all_schemes();

/// "1,7,1337" -> {1,7,1337}; empty / malformed -> ok=false.
std::vector<std::uint64_t> parse_u64_list(const std::string& csv, bool* ok);
/// "0.1,0.5,0.9" -> {0.1,0.5,0.9}; empty / malformed -> ok=false.
std::vector<double> parse_double_list(const std::string& csv, bool* ok);

// --- fig2: schemes x seeds ------------------------------------------------

struct Fig2SweepConfig {
  Fig2Config base;  ///< scheme/seed/obs/flow_csv overridden per cell
  std::vector<Fig2Scheme> schemes = {Fig2Scheme::kQvisorAdapt};
  std::vector<std::uint64_t> seeds = {1};
  std::string out_dir = ".";
  std::size_t jobs = 0;  ///< 0 = hardware_concurrency, 1 = serial
  SweepObsOptions obs;
};

std::vector<SweepCell> run_fig2_sweep(const Fig2SweepConfig& sweep);

// --- fig4: schemes x loads x seeds ----------------------------------------

struct Fig4SweepConfig {
  Fig4Config base;  ///< from fig4_scaled_config() / fig4_paper_config()
  std::vector<Fig4Scheme> schemes = {Fig4Scheme::kQvisorPfabricOverEdf};
  std::vector<double> loads = {0.5};
  std::vector<std::uint64_t> seeds = {1};
  std::string out_dir = ".";
  std::size_t jobs = 0;
  SweepObsOptions obs;
};

std::vector<SweepCell> run_fig4_sweep(const Fig4SweepConfig& sweep);

// --- chaos: seeds ---------------------------------------------------------

struct ChaosSweepConfig {
  ChaosConfig base;  ///< seed/obs overridden per cell
  std::vector<std::uint64_t> seeds = {1};
  std::string out_dir = ".";
  std::size_t jobs = 0;
  SweepObsOptions obs;
};

std::vector<SweepCell> run_chaos_sweep(const ChaosSweepConfig& sweep);

// --- overload: modes x seeds ----------------------------------------------

struct OverloadSweepConfig {
  OverloadConfig base;  ///< mode/seed/obs overridden per cell
  std::vector<trafficgen::AdversaryMode> modes = {
      trafficgen::AdversaryMode::kFlooder};
  std::vector<std::uint64_t> seeds = {1};
  std::string out_dir = ".";
  std::size_t jobs = 0;
  SweepObsOptions obs;
};

std::vector<SweepCell> run_overload_sweep(const OverloadSweepConfig& sweep);

}  // namespace qv::experiments
