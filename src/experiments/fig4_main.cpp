// fig4: run one (scheme, load) point of the paper's Fig. 4 evaluation
// on the scaled-down leaf-spine topology and emit the artifacts:
//
//   fig4_<scheme>_flows.csv     measured pFabric flow records
//   fig4_<scheme>_metrics.json  the full metrics registry
//   fig4_<scheme>_trace.json    Chrome trace-event timeline (Perfetto)
//
// See fig2_main.cpp for the tracing flags; --paper-topo switches to the
// paper-scale fabric (much slower).
#include <cstdio>
#include <string>

#include "experiments/fig4.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"

namespace {

bool parse_scheme(const std::string& name,
                  qv::experiments::Fig4Scheme* out) {
  using qv::experiments::Fig4Scheme;
  if (name == "fifo") *out = Fig4Scheme::kFifoBoth;
  else if (name == "pifo") *out = Fig4Scheme::kPifoNaive;
  else if (name == "pifo-ideal") *out = Fig4Scheme::kPifoIdeal;
  else if (name == "qvisor-edf") *out = Fig4Scheme::kQvisorEdfOverPfabric;
  else if (name == "qvisor-share") *out = Fig4Scheme::kQvisorShare;
  else if (name == "qvisor-pfabric") *out = Fig4Scheme::kQvisorPfabricOverEdf;
  else return false;
  return true;
}

const char* scheme_slug(qv::experiments::Fig4Scheme s) {
  using qv::experiments::Fig4Scheme;
  switch (s) {
    case Fig4Scheme::kFifoBoth: return "fifo";
    case Fig4Scheme::kPifoNaive: return "pifo";
    case Fig4Scheme::kPifoIdeal: return "pifo-ideal";
    case Fig4Scheme::kQvisorEdfOverPfabric: return "qvisor-edf";
    case Fig4Scheme::kQvisorShare: return "qvisor-share";
    case Fig4Scheme::kQvisorPfabricOverEdf: return "qvisor-pfabric";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_string(
      "scheme", "qvisor-pfabric",
      "fifo | pifo | pifo-ideal | qvisor-edf | qvisor-share | qvisor-pfabric");
  flags.define_double("load", 0.5, "pFabric tenant access-link load");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("seed", 1, "workload RNG seed");
  flags.define_bool("paper-topo", false,
                    "paper-scale 144-host fabric instead of the scaled one");
  flags.define_int("sample-interval-us", 100,
                   "periodic sampler cadence (simulated microseconds)");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  flags.define_bool("trace-sim", false,
                    "also trace simulator event dispatch (voluminous)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::Fig4Config config =
      flags.get_bool("paper-topo") ? qv::experiments::fig4_paper_config()
                                   : qv::experiments::fig4_scaled_config();
  if (!parse_scheme(flags.get_string("scheme"), &config.scheme)) {
    std::fprintf(stderr, "fig4: unknown --scheme '%s'\n",
                 flags.get_string("scheme").c_str());
    return 1;
  }
  config.load = flags.get_double("load");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  qv::obs::Observability obs(
      static_cast<std::size_t>(flags.get_int("trace-capacity")));
  obs.sample_interval = qv::microseconds(flags.get_int("sample-interval-us"));
  if (flags.get_bool("trace")) {
    std::uint32_t mask = qv::obs::trace_bit(qv::obs::TraceCategory::kSched) |
                         qv::obs::trace_bit(qv::obs::TraceCategory::kQvisor) |
                         qv::obs::trace_bit(qv::obs::TraceCategory::kRuntime);
    if (flags.get_bool("trace-sim")) {
      mask |= qv::obs::trace_bit(qv::obs::TraceCategory::kSim);
    }
    obs.tracer.set_mask(mask);
  }

  const std::string base =
      flags.get_string("out") + "/fig4_" + scheme_slug(config.scheme);
  config.obs = &obs;
  config.flow_csv = base + "_flows.csv";

  const auto result = qv::experiments::run_fig4(config);

  qv::obs::save_metrics_json(base + "_metrics.json", obs.registry);
  qv::obs::save_trace_json(base + "_trace.json", obs.tracer);

  std::printf("fig4 %s, load %.2f (seed %llu)\n",
              qv::experiments::fig4_scheme_name(config.scheme), config.load,
              static_cast<unsigned long long>(config.seed));
  std::printf("  small flows: mean %.3f ms (lb %.3f), p99 %.3f ms (%zu)\n",
              result.mean_small_ms, result.mean_small_lb_ms,
              result.p99_small_ms, result.small_flows);
  std::printf("  large flows: mean %.3f ms (lb %.3f) (%zu)\n",
              result.mean_large_ms, result.mean_large_lb_ms,
              result.large_flows);
  std::printf("  EDF deadline met: %.3f, drops %llu, events %llu\n",
              result.edf_deadline_met,
              static_cast<unsigned long long>(result.drops),
              static_cast<unsigned long long>(result.events));
  std::printf("  artifacts: %s_{flows.csv,metrics.json,trace.json}\n",
              base.c_str());
  return 0;
}
