// fig4: run the paper's Fig. 4 evaluation — one (scheme, load) point
// or a schemes x loads x seeds grid — on the scaled-down leaf-spine
// topology and emit each cell's artifacts:
//
//   fig4_<scheme>[_l<load%>][_s<seed>]_flows.csv     pFabric flow records
//   fig4_<scheme>[_l<load%>][_s<seed>]_metrics.json  metrics registry
//   fig4_<scheme>[_l<load%>][_s<seed>]_trace.json    timeline (Perfetto)
//   fig4_summary.json                                grid, in grid order
//
// The grid fans across cores (--jobs); output is byte-identical for
// every --jobs value (trace.json excepted — wall-clock span durations).
// See fig2_main.cpp for the tracing flags; --paper-topo switches to the
// paper-scale fabric (much slower).
#include <cstdio>
#include <string>

#include "experiments/sweeps.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_string(
      "scheme", "qvisor-pfabric",
      "fifo | pifo | pifo-ideal | qvisor-edf | qvisor-share | "
      "qvisor-pfabric | all");
  flags.define_double("load", 0.5, "pFabric tenant access-link load");
  flags.define_string("loads", "",
                      "comma-separated load list (grid axis); overrides "
                      "--load");
  flags.define_string("seeds", "", "comma-separated seed list (grid axis); "
                      "overrides --seed");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("seed", 1, "workload RNG seed");
  flags.define_int("jobs", 0,
                   "parallel runs (0 = hardware concurrency, 1 = serial; "
                   "output is byte-identical either way)");
  flags.define_bool("paper-topo", false,
                    "paper-scale 144-host fabric instead of the scaled one");
  flags.define_int("sample-interval-us", 100,
                   "periodic sampler cadence (simulated microseconds)");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  flags.define_bool("trace-sim", false,
                    "also trace simulator event dispatch (voluminous)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::Fig4SweepConfig sweep;
  sweep.base = flags.get_bool("paper-topo")
                   ? qv::experiments::fig4_paper_config()
                   : qv::experiments::fig4_scaled_config();
  const std::string scheme = flags.get_string("scheme");
  if (scheme == "all") {
    sweep.schemes = qv::experiments::fig4_all_schemes();
  } else {
    qv::experiments::Fig4Scheme one;
    if (!qv::experiments::parse_fig4_scheme(scheme, &one)) {
      std::fprintf(stderr, "fig4: unknown --scheme '%s'\n", scheme.c_str());
      return 1;
    }
    sweep.schemes = {one};
  }
  if (!flags.get_string("loads").empty()) {
    bool ok = false;
    sweep.loads =
        qv::experiments::parse_double_list(flags.get_string("loads"), &ok);
    if (!ok) {
      std::fprintf(stderr, "fig4: bad --loads '%s'\n",
                   flags.get_string("loads").c_str());
      return 1;
    }
  } else {
    sweep.loads = {flags.get_double("load")};
  }
  if (!flags.get_string("seeds").empty()) {
    bool ok = false;
    sweep.seeds =
        qv::experiments::parse_u64_list(flags.get_string("seeds"), &ok);
    if (!ok) {
      std::fprintf(stderr, "fig4: bad --seeds '%s'\n",
                   flags.get_string("seeds").c_str());
      return 1;
    }
  } else {
    sweep.seeds = {static_cast<std::uint64_t>(flags.get_int("seed"))};
  }
  sweep.out_dir = flags.get_string("out");
  sweep.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  sweep.obs.trace = flags.get_bool("trace");
  sweep.obs.trace_sim = flags.get_bool("trace-sim");
  sweep.obs.trace_capacity =
      static_cast<std::size_t>(flags.get_int("trace-capacity"));
  sweep.obs.sample_interval_us = flags.get_int("sample-interval-us");

  const auto cells = qv::experiments::run_fig4_sweep(sweep);
  for (const auto& cell : cells) {
    if (!cell.log.empty()) std::fputs(cell.log.c_str(), stderr);
    std::fputs(cell.summary.c_str(), stdout);
  }
  return 0;
}
