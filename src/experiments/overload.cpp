#include "experiments/overload.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "experiments/obs_wiring.hpp"
#include "netsim/network.hpp"
#include "netsim/topology.hpp"
#include "obs/obs.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/fleet.hpp"
#include "sched/fifo.hpp"

namespace qv::experiments {

namespace {

constexpr TenantId kGold = 1;
constexpr TenantId kSilver = 2;
constexpr TenantId kAttacker = 3;
/// Churn mode fabricates ids from here up — above the pre-processor's
/// dense range, so every packet hits the spill path.
constexpr TenantId kChurnBase = qvisor::Preprocessor::kDenseLimit;
/// Monitor tracked-tenant default cap (bounded-state assertion).
constexpr std::size_t kMonitorTrackedCap = 4096;

qvisor::TenantSpec tenant(TenantId id, const std::string& name) {
  qvisor::TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {0, 99};
  return spec;
}

TimeNs p99_of(std::vector<TimeNs>& latencies) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  return latencies[(latencies.size() - 1) * 99 / 100];
}

struct TenantTally {
  OverloadTenantStats stats;
  std::vector<TimeNs> latencies;
};

OverloadRun run_once(const OverloadConfig& config, bool attack) {
  const bool churn =
      config.mode == trafficgen::AdversaryMode::kTenantChurn;

  netsim::Simulator sim;
  sim.set_simcore(config.per_event_simcore
                      ? netsim::Simulator::SimCore::kPerEventReference
                      : netsim::Simulator::SimCore::kOverhauled);

  // Fleet before the network: ports detach from their hypervisors on
  // destruction, so the fleet must be torn down last.
  qvisor::Fleet fleet(
      {tenant(kGold, "gold"), tenant(kSilver, "silver"),
       tenant(kAttacker, "attacker")},
      *qvisor::parse_policy("gold >> silver + attacker").policy,
      std::make_shared<qvisor::PifoBackend>());

  netsim::Network net(sim);

  std::map<std::string, std::size_t> switch_index;
  netsim::SchedulerFactory factory =
      [&](const netsim::PortContext& ctx)
      -> std::unique_ptr<sched::Scheduler> {
    if (ctx.from_host) return std::make_unique<sched::FifoQueue>();
    auto [it, inserted] =
        switch_index.try_emplace(ctx.node_name, fleet.switch_count());
    if (inserted) fleet.add_switch(ctx.node_name);
    return fleet.make_port_scheduler(it->second);
  };

  netsim::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = 2;
  topo_cfg.spines = 2;
  topo_cfg.hosts_per_leaf = 2;
  topo_cfg.access_rate = config.access_rate;
  topo_cfg.fabric_rate = config.fabric_rate;
  topo_cfg.link_delay = config.link_delay;
  auto topo = netsim::build_leaf_spine(net, topo_cfg, factory);

  // --- contracts + admission guard --------------------------------------
  // The attacker's contract is the throttle target; the well-behaved
  // tenants keep their rank-bounds-only defaults (unpoliced rate, a
  // weighted share of the port buffer once the guard is on).
  qvisor::TenantContract attacker_contract;
  attacker_contract.tenant = kAttacker;
  attacker_contract.rank_min = 0;
  attacker_contract.rank_max = 99;
  attacker_contract.max_rate = config.attacker_contract_rate;
  attacker_contract.burst_bytes = config.attacker_burst_bytes;
  fleet.set_contract(attacker_contract);

  if (config.guard) {
    qvisor::AdmissionSettings guard;
    guard.enabled = true;
    guard.port_buffer_bytes = config.port_buffer_bytes;
    guard.share_headroom = config.share_headroom;
    guard.rank_window = config.rank_window;
    guard.k = config.aifo_k;
    // Tenants with no contract of their own (the id churner) share one
    // aggregate bucket policed at the attacker contract rate.
    guard.unknown_rate_bytes_per_sec =
        static_cast<double>(config.attacker_contract_rate) / 8.0;
    guard.unknown_burst_bytes =
        static_cast<double>(config.attacker_burst_bytes);
    guard.unknown_share_cap_bytes = config.port_buffer_bytes / 4;
    fleet.set_admission(guard);
  }

  const auto compiled = fleet.compile();
  if (!compiled.ok) {
    throw std::runtime_error("overload: initial compile failed: " +
                             compiled.error);
  }

  // --- fleet controller (quarantine path) -------------------------------
  qvisor::RuntimeConfig rc;
  rc.activity_window = config.activity_window;
  rc.min_reconfig_interval = config.tick_interval;
  rc.quarantine_adversarial = true;
  rc.quarantine_clean_window = config.quarantine_clean_window;
  qvisor::FleetController controller(fleet, rc);
  for (TimeNs t = config.tick_interval; t < config.end;
       t += config.tick_interval) {
    sim.at(t, [&controller, t] { controller.tick(t); });
  }

  // --- sinks: per-tenant delivery + latency tallies ---------------------
  OverloadRun run;
  TenantTally gold, silver, attacker_tally;
  const auto classify = [&](TenantId id) -> TenantTally& {
    if (id == kGold) return gold;
    if (id == kSilver) return silver;
    return attacker_tally;  // kAttacker or any churned id
  };
  for (auto* host : topo.hosts) {
    host->set_sink([&](const Packet& p) {
      TenantTally& t = classify(p.tenant);
      ++t.stats.delivered_pkts;
      t.stats.delivered_bytes += static_cast<std::uint64_t>(p.size_bytes);
      t.latencies.push_back(sim.now() - p.created_at);
    });
  }

  // --- victim workload (identical in baseline and attack runs) ----------
  // Cross-leaf CBR: gold from h0, silver from h1, both into h3 — the
  // same access downlink the attacker (h2, same leaf as h3) contends
  // for.
  const NodeId dst = topo.hosts[3]->id();
  const TimeNs victim_interval =
      serialization_delay(config.packet_bytes, config.victim_rate);
  for (std::size_t h = 0; h < 2; ++h) {
    const TenantId tenant_id = h == 0 ? kGold : kSilver;
    std::uint64_t i = 0;
    for (TimeNs t = microseconds(static_cast<std::int64_t>(h));
         t < config.traffic_stop; t += victim_interval, ++i) {
      const Rank label = static_cast<Rank>((h * 13 + i * 7) % 100);
      sim.at(t, [&, h, tenant_id, label, i] {
        Packet p;
        p.flow = h * 4096 + i % 8;
        p.seq = static_cast<std::uint32_t>(i);
        p.src = topo.hosts[h]->id();
        p.dst = dst;
        p.size_bytes = config.packet_bytes;
        p.tenant = tenant_id;
        p.rank = label;
        p.original_rank = label;
        p.created_at = sim.now();
        TenantTally& tally = classify(tenant_id);
        ++tally.stats.offered_pkts;
        tally.stats.offered_bytes +=
            static_cast<std::uint64_t>(p.size_bytes);
        ++run.offered_pkts;
        topo.hosts[h]->send(p);
      });
    }
  }

  // --- the attacker -------------------------------------------------------
  std::optional<trafficgen::AdversarySource> adversary;
  if (attack) {
    trafficgen::AdversaryConfig ac;
    ac.mode = config.mode;
    ac.tenant = churn ? kChurnBase : kAttacker;
    ac.dst = dst;
    ac.flow = 9 * 4096;
    ac.rate = config.attack_rate;
    // The churner probes per-tenant state, so more (smaller) packets =
    // more fabricated ids for the same byte rate — enough to overflow
    // the spill-counter and monitor caps inside the attack window.
    ac.packet_bytes = churn ? 250 : config.packet_bytes;
    ac.start = config.attack_start;
    ac.stop = config.attack_stop;
    ac.rank_lo = 0;
    ac.rank_hi = 99;
    ac.gamed_rank = 0;
    ac.seed = config.seed;
    adversary.emplace(sim, *topo.hosts[2], ac);
  }

  // --- observability ------------------------------------------------------
  if (config.obs != nullptr && attack) {
    wire_network_obs(net, *config.obs, config.end);
    controller.set_tracer(&config.obs->tracer);
  }

  sim.run_until(config.end);
  sim.run();  // drain in-flight packets before auditing conservation

  // --- audit ---------------------------------------------------------------
  if (adversary) {
    run.offered_pkts += adversary->packets_sent();
    attacker_tally.stats.offered_pkts = adversary->packets_sent();
    attacker_tally.stats.offered_bytes = adversary->bytes_sent();
  }

  std::uint64_t per_tenant_total = 0;
  std::uint64_t degraded_total = 0;
  for (const auto& link : net.links()) {
    run.queue_dropped_pkts += link->queue().counters().dropped;
    run.buffered_pkts += link->queue().size();
    const auto* port =
        dynamic_cast<const qvisor::QvisorPort*>(&link->queue());
    if (port == nullptr) continue;
    const auto& pre = port->preprocessor();
    const auto& pc = pre.counters();
    run.pre_processed += pc.processed;
    run.pre_admission_dropped += pc.admission_dropped;
    run.pre_rank_clamped += pc.rank_clamped;
    run.spill_evictions += pc.spill_evictions;
    run.spill_evicted_packets += pc.spill_evicted_packets;
    run.max_spill_tracked =
        std::max(run.max_spill_tracked, pre.spill_tracked());
    degraded_total += pc.degraded_passthrough;
    for (const auto& [id, count] : pre.per_tenant()) per_tenant_total += count;
    if (const auto* guard = pre.admission()) {
      const auto& totals = guard->totals();
      run.guard_offered += totals.offered;
      run.guard_admitted += totals.admitted;
      run.guard_rate_dropped += totals.rate_dropped;
      run.guard_share_dropped += totals.share_dropped;
      run.guard_quantile_dropped += totals.quantile_dropped;
      run.attacker_admitted_bytes +=
          guard->tenant_counters(churn ? kChurnBase : kAttacker)
              .admitted_bytes;
    }
  }
  for (const auto& node : net.nodes()) {
    if (const auto* sw = dynamic_cast<const netsim::Switch*>(node.get())) {
      run.unrouted_pkts += sw->unrouted();
    }
  }
  run.gold = gold.stats;
  run.silver = silver.stats;
  run.attacker = attacker_tally.stats;
  run.gold.p99_latency = p99_of(gold.latencies);
  run.silver.p99_latency = p99_of(silver.latencies);
  run.attacker.p99_latency = p99_of(attacker_tally.latencies);
  run.delivered_pkts = run.gold.delivered_pkts + run.silver.delivered_pkts +
                       run.attacker.delivered_pkts;

  run.conserved =
      run.offered_pkts == run.delivered_pkts + run.queue_dropped_pkts +
                              run.buffered_pkts + run.unrouted_pkts;
  run.guard_balanced =
      run.guard_offered == run.guard_admitted + run.guard_rate_dropped +
                               run.guard_share_dropped +
                               run.guard_quantile_dropped;
  // Every processed packet lands in exactly one per-tenant tally, an
  // evicted tally, or the degraded-passthrough count.
  run.accounting_balanced =
      run.pre_processed ==
      per_tenant_total + run.spill_evicted_packets + degraded_total;

  for (std::size_t s = 0; s < fleet.switch_count(); ++s) {
    const auto& monitor = fleet.hypervisor(s).monitor();
    run.max_tracked_tenants =
        std::max(run.max_tracked_tenants, monitor.tracked_tenants());
    run.untracked_observations += monitor.untracked_observations();
  }
  run.quarantines = controller.quarantines();
  run.unquarantines = controller.unquarantines();
  run.adaptations = controller.adaptations();

  if (config.obs != nullptr && attack) {
    obs::Registry& reg = config.obs->registry;
    export_network_metrics(net, reg);
    fleet.export_metrics(reg, "fleet");
    controller.export_metrics(reg, "fleet.controller");
    reg.set_gauge("result.conserved", run.conserved ? 1.0 : 0.0);
    reg.set_gauge("result.guard_balanced", run.guard_balanced ? 1.0 : 0.0);
    reg.set_gauge("result.victim_gold_bytes",
                  static_cast<double>(run.gold.delivered_bytes));
    reg.set_gauge("result.victim_silver_bytes",
                  static_cast<double>(run.silver.delivered_bytes));
    reg.set_gauge("result.attacker_admitted_bytes",
                  static_cast<double>(run.attacker_admitted_bytes));
    reg.freeze();
  }
  return run;
}

}  // namespace

OverloadResult run_overload(const OverloadConfig& config) {
  OverloadResult result;
  result.baseline = run_once(config, /*attack=*/false);
  result.attack = run_once(config, /*attack=*/true);

  const auto throughput_ok = [&](const OverloadTenantStats& base,
                                 const OverloadTenantStats& under) {
    return static_cast<double>(under.delivered_bytes) >=
           config.victim_throughput_frac *
               static_cast<double>(base.delivered_bytes);
  };
  // Multiplicative envelope with one serialization-quantum of absolute
  // slack: at microsecond-scale baselines a pure factor would sit below
  // a single extra queued packet.
  const auto latency_ok = [&](const OverloadTenantStats& base,
                              const OverloadTenantStats& under) {
    const double limit =
        config.victim_p99_factor * static_cast<double>(base.p99_latency) +
        static_cast<double>(config.victim_p99_slack);
    return static_cast<double>(under.p99_latency) <= limit;
  };
  result.victims_throughput_ok =
      throughput_ok(result.baseline.gold, result.attack.gold) &&
      throughput_ok(result.baseline.silver, result.attack.silver);
  result.victims_latency_ok =
      latency_ok(result.baseline.gold, result.attack.gold) &&
      latency_ok(result.baseline.silver, result.attack.silver);

  // Throttle: what the guard let through converges to the contract
  // (rate x attack window + one burst), within the configured factor.
  const double attack_seconds =
      to_seconds(config.attack_stop - config.attack_start);
  const double contract_bytes =
      static_cast<double>(config.attacker_contract_rate) / 8.0 *
          attack_seconds +
      static_cast<double>(config.attacker_burst_bytes);
  result.attacker_throttled =
      static_cast<double>(result.attack.attacker_admitted_bytes) <=
      config.attacker_rate_factor * contract_bytes;

  const bool churn =
      config.mode == trafficgen::AdversaryMode::kTenantChurn;
  // An id-churning attacker is never identifiable as ONE tenant, so
  // quarantine is vacuous there — it is policed via the aggregate
  // unknown bucket instead (covered by attacker_throttled).
  result.attacker_quarantined = churn || result.attack.quarantines >= 1;

  result.state_bounded =
      result.attack.max_spill_tracked <=
          qvisor::Preprocessor::kDefaultSpillCap &&
      result.attack.max_tracked_tenants <= kMonitorTrackedCap;
  if (churn) {
    // The churner must actually have pushed past both caps, or the
    // bound was never exercised.
    result.state_bounded = result.state_bounded &&
                           result.attack.spill_evictions > 0 &&
                           result.attack.untracked_observations > 0;
  }

  result.ok = result.baseline.conserved && result.attack.conserved &&
              result.attack.guard_balanced &&
              result.baseline.accounting_balanced &&
              result.attack.accounting_balanced && result.state_bounded;
  if (config.guard) {
    result.ok = result.ok && result.victims_throughput_ok &&
                result.victims_latency_ok && result.attacker_throttled &&
                result.attacker_quarantined;
  }
  return result;
}

}  // namespace qv::experiments
