#include "experiments/fig4.hpp"
#include "experiments/fig4_backend.hpp"

#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "experiments/obs_wiring.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "obs/obs.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/qvisor.hpp"
#include "sched/fifo.hpp"
#include "sched/pifo.hpp"
#include "sched/rank/edf.hpp"
#include "sched/rank/pfabric.hpp"
#include "telemetry/fct_tracker.hpp"
#include "telemetry/trace_io.hpp"
#include "trafficgen/cbr_source.hpp"
#include "trafficgen/host_source.hpp"
#include "trafficgen/reliable_source.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "workload/arrivals.hpp"
#include "workload/cdf.hpp"

namespace qv::experiments {

namespace {

constexpr TenantId kPfabricTenant = 1;
constexpr TenantId kEdfTenant = 2;
constexpr FlowId kPfabricFlowBase = 1'000'000;
constexpr std::int64_t kMtu = 1500;

bool uses_qvisor(Fig4Scheme s) {
  return s == Fig4Scheme::kQvisorEdfOverPfabric ||
         s == Fig4Scheme::kQvisorShare ||
         s == Fig4Scheme::kQvisorPfabricOverEdf;
}

const char* qvisor_policy_string(Fig4Scheme s) {
  switch (s) {
    case Fig4Scheme::kQvisorEdfOverPfabric:
      return "edf >> pfabric";
    case Fig4Scheme::kQvisorShare:
      return "pfabric + edf";
    case Fig4Scheme::kQvisorPfabricOverEdf:
      return "pfabric >> edf";
    default:
      return "";
  }
}

}  // namespace

const char* fig4_scheme_name(Fig4Scheme scheme) {
  switch (scheme) {
    case Fig4Scheme::kFifoBoth:
      return "FIFO: pFabric and EDF";
    case Fig4Scheme::kPifoNaive:
      return "PIFO: pFabric and EDF";
    case Fig4Scheme::kPifoIdeal:
      return "PIFO: pFabric (ideal)";
    case Fig4Scheme::kQvisorEdfOverPfabric:
      return "QVISOR: EDF >> pFabric";
    case Fig4Scheme::kQvisorShare:
      return "QVISOR: pFabric + EDF";
    case Fig4Scheme::kQvisorPfabricOverEdf:
      return "QVISOR: pFabric >> EDF";
  }
  return "?";
}

Fig4Config fig4_scaled_config() {
  Fig4Config cfg;
  cfg.topo.leaves = 4;
  cfg.topo.spines = 2;
  cfg.topo.hosts_per_leaf = 4;
  cfg.topo.access_rate = gbps(1);
  cfg.topo.fabric_rate = gbps(4);
  // Keep the paper's CBR *intensity*: 100 flows x 0.5 Gb/s over 144
  // access links ~= 0.35 load, so cbr_flows ~= 0.7 per host.
  cfg.cbr_flows = (cfg.topo.total_hosts() * 7 + 5) / 10;
  cfg.max_flow_bytes = 10e6;  // truncated tail fits the shorter horizon
  return cfg;
}

Fig4Config fig4_paper_config() {
  Fig4Config cfg;  // LeafSpineConfig defaults ARE the paper topology
  cfg.cbr_flows = 100;
  cfg.max_flow_bytes = 0;
  cfg.warmup = milliseconds(100);
  cfg.measure_window = milliseconds(300);
  cfg.drain = milliseconds(600);
  return cfg;
}

namespace {
/// Shared implementation; `backend` (when non-null) overrides the
/// default PIFO backend for QVISOR schemes.
Fig4Result run_fig4_impl(const Fig4Config& config,
                         qvisor::BackendPtr backend);
}  // namespace

namespace {
/// Apply the reliable-transport buffer default.
Fig4Config normalized(Fig4Config config) {
  if (config.reliable && config.buffer_bytes == 0) {
    config.buffer_bytes = config.reliable_buffer_bytes;
  }
  return config;
}
}  // namespace

Fig4Result run_fig4(const Fig4Config& config) {
  return run_fig4_impl(normalized(config), nullptr);
}

Fig4Result run_fig4_with_backend(const Fig4Config& raw_config,
                                 Fig4BackendKind kind,
                                 std::size_t num_queues) {
  const Fig4Config config = normalized(raw_config);
  assert(config.scheme == Fig4Scheme::kQvisorEdfOverPfabric ||
         config.scheme == Fig4Scheme::kQvisorShare ||
         config.scheme == Fig4Scheme::kQvisorPfabricOverEdf);
  qvisor::BackendPtr backend;
  switch (kind) {
    case Fig4BackendKind::kPifo:
      backend =
          std::make_shared<qvisor::PifoBackend>(config.buffer_bytes);
      break;
    case Fig4BackendKind::kSpPifo:
      backend = std::make_shared<qvisor::SpPifoBackend>(
          num_queues, config.buffer_bytes);
      break;
    case Fig4BackendKind::kStrictPriority:
      backend = std::make_shared<qvisor::StrictPriorityBackend>(
          num_queues, config.buffer_bytes);
      break;
  }
  return run_fig4_impl(config, std::move(backend));
}

namespace {

Fig4Result run_fig4_impl(const Fig4Config& config,
                         qvisor::BackendPtr backend) {
  netsim::Simulator sim;
  sim.set_simcore(config.per_event_simcore
                      ? netsim::Simulator::SimCore::kPerEventReference
                      : netsim::Simulator::SimCore::kOverhauled);

  const workload::Cdf cdf = workload::data_mining_cdf(config.max_flow_bytes);

  // --- tenants' rank functions (computed at the end hosts) -----------
  // Each tenant uses its NATURAL rank scale: pFabric ranks in remaining
  // BYTES, EDF ranks in microseconds of slack. The scales are
  // incomparable — that is exactly the paper's Problem 1, which the
  // naive-PIFO configuration exhibits and QVISOR's normalization fixes.
  // Declared bounds are tight for the actual workload: the synthesizer
  // relies on rank distributions being "bounded and known in advance"
  // (§3.2).
  const auto max_pfabric_rank =
      static_cast<Rank>(static_cast<std::int64_t>(cdf.max()) + 1);
  auto pfabric_ranker =
      std::make_shared<sched::PFabricRanker>(/*bytes_per_level=*/1,
                                             max_pfabric_rank);
  const TimeNs edf_granularity = microseconds(1);
  const auto max_edf_rank =
      static_cast<Rank>(config.cbr_deadline_slack / edf_granularity + 1);
  auto edf_ranker =
      std::make_shared<sched::EdfRanker>(edf_granularity, max_edf_rank);

  // --- scheduling configuration --------------------------------------
  std::unique_ptr<qvisor::Hypervisor> hv;
  if (uses_qvisor(config.scheme)) {
    std::vector<qvisor::TenantSpec> tenants;
    tenants.push_back(qvisor::TenantSpec::make(kPfabricTenant, "pfabric",
                                               pfabric_ranker));
    tenants.push_back(
        qvisor::TenantSpec::make(kEdfTenant, "edf", edf_ranker));
    auto parsed = qvisor::parse_policy(qvisor_policy_string(config.scheme));
    assert(parsed.ok());
    qvisor::SynthesizerConfig synth;
    synth.levels_per_group = config.qvisor_levels;
    if (backend == nullptr) {
      backend = std::make_shared<qvisor::PifoBackend>(config.buffer_bytes);
    }
    hv = std::make_unique<qvisor::Hypervisor>(
        std::move(tenants), std::move(*parsed.policy), std::move(backend),
        synth);
    auto compiled = hv->compile();
    if (!compiled.ok) {
      throw std::runtime_error("fig4: QVISOR compile failed: " +
                               compiled.error);
    }
  }

  netsim::SchedulerFactory factory =
      [&](const netsim::PortContext&) -> std::unique_ptr<sched::Scheduler> {
    switch (config.scheme) {
      case Fig4Scheme::kFifoBoth:
        return std::make_unique<sched::FifoQueue>(config.buffer_bytes);
      case Fig4Scheme::kPifoNaive:
      case Fig4Scheme::kPifoIdeal:
        return std::make_unique<sched::PifoQueue>(config.buffer_bytes);
      default:
        return hv->make_port_scheduler();
    }
  };

  // `net` is declared after `hv` so ports are destroyed before the
  // hypervisor they are attached to.
  netsim::Network net(sim);
  netsim::LeafSpine fabric = build_leaf_spine(net, config.topo, factory);
  const std::size_t num_hosts = fabric.hosts.size();
  assert(num_hosts >= 2);

  // --- telemetry -------------------------------------------------------
  telemetry::FctTracker fct(/*dedup_by_seq=*/config.reliable);
  telemetry::DeadlineTracker deadlines;
  const auto on_data = [&](const Packet& p, TimeNs now) {
    fct.on_packet_delivered(p, now);
    if (p.tenant == kEdfTenant) deadlines.on_packet_delivered(p, now);
  };
  if (!config.reliable) {
    for (netsim::Host* host : fabric.hosts) {
      host->set_sink(
          [&](const Packet& p) { on_data(p, sim.now()); });
    }
  }

  // --- tenant 1: data-mining flows under pFabric -----------------------
  std::vector<std::unique_ptr<trafficgen::HostSource>> sources;
  std::vector<std::unique_ptr<trafficgen::ReliableHostSource>> rsources;
  std::vector<std::unique_ptr<trafficgen::ReliableSink>> rsinks;
  if (config.reliable) {
    rsources.reserve(num_hosts);
    rsinks.reserve(num_hosts);
    for (netsim::Host* host : fabric.hosts) {
      rsources.push_back(std::make_unique<trafficgen::ReliableHostSource>(
          sim, *host, kPfabricTenant, pfabric_ranker,
          config.topo.access_rate, config.rto, kMtu));
      rsinks.push_back(std::make_unique<trafficgen::ReliableSink>(
          sim, *host, rsources.back().get(), on_data));
      rsinks.back()->set_ack_filter(
          [](const Packet& p) { return p.tenant == kPfabricTenant; });
      rsinks.back()->attach();
    }
  } else {
    sources.reserve(num_hosts);
    for (netsim::Host* host : fabric.hosts) {
      sources.push_back(std::make_unique<trafficgen::HostSource>(
          sim, *host, kPfabricTenant, pfabric_ranker,
          config.topo.access_rate, kMtu));
    }
  }

  workload::ArrivalConfig arrivals_cfg;
  arrivals_cfg.load = config.load;
  arrivals_cfg.access_rate = config.topo.access_rate;
  arrivals_cfg.num_hosts = num_hosts;
  arrivals_cfg.start = 0;
  arrivals_cfg.end = config.total_duration();
  arrivals_cfg.seed = config.seed;
  const auto arrivals = workload::generate_poisson_arrivals(arrivals_cfg, cdf);

  FlowId next_flow = kPfabricFlowBase;
  for (const auto& arrival : arrivals) {
    const FlowId flow = next_flow++;
    sim.at(arrival.at, [&, flow, arrival] {
      fct.on_flow_start(flow, kPfabricTenant, arrival.size_bytes,
                        sim.now());
      const NodeId dst = fabric.hosts[arrival.dst_host]->id();
      if (config.reliable) {
        rsources[arrival.src_host]->start_flow(flow, dst,
                                               arrival.size_bytes);
      } else {
        sources[arrival.src_host]->start_flow(flow, dst,
                                              arrival.size_bytes);
      }
    });
  }

  // --- tenant 2: CBR flows under EDF -----------------------------------
  std::vector<std::unique_ptr<trafficgen::CbrSource>> cbr;
  if (config.scheme != Fig4Scheme::kPifoIdeal) {
    // Random server pairs via a random permutation: every host carries
    // at most one outgoing and one incoming CBR stream, so CBR never
    // exceeds `cbr_rate` on any access link by itself. (Sampling pairs
    // WITH replacement can stack two 0.5 Gb/s streams onto one 1 Gb/s
    // link and starve it outright at any load.)
    Rng pair_rng(config.seed ^ 0xedf0edf0edf0ULL);
    std::vector<std::size_t> perm(num_hosts);
    for (std::size_t i = 0; i < num_hosts; ++i) perm[i] = i;
    for (std::size_t i = num_hosts - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(pair_rng.next_below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    std::size_t made = 0;
    for (std::size_t i = 0; i < num_hosts && made < config.cbr_flows; ++i) {
      if (perm[i] == i) continue;  // skip fixed points (src == dst)
      cbr.push_back(std::make_unique<trafficgen::CbrSource>(
          sim, *fabric.hosts[i], fabric.hosts[perm[i]]->id(),
          /*flow=*/1 + made, kEdfTenant, edf_ranker, config.cbr_rate,
          config.cbr_deadline_slack, /*start=*/TimeNs{0},
          /*stop=*/config.total_duration()));
      ++made;
    }
  }

  // --- observability ----------------------------------------------------
  if (config.obs != nullptr) {
    wire_network_obs(net, *config.obs, config.total_duration());
    if (hv) wire_hypervisor_obs(*hv, *config.obs);
  }

  // --- run --------------------------------------------------------------
  sim.run_until(config.total_duration());

  // --- collect -----------------------------------------------------------
  telemetry::FlowFilter measured;
  measured.tenant = kPfabricTenant;
  measured.started_from = config.warmup;
  measured.started_to = config.warmup + config.measure_window;

  telemetry::FlowFilter small = measured;
  small.max_bytes = 100'000;  // (0, 100 KB)
  telemetry::FlowFilter large = measured;
  large.min_bytes = 1'000'000;  // [1 MB, inf)

  Fig4Result result;
  const TimeNs horizon = config.total_duration();
  const Sample small_fct = fct.fct_ms(small);
  result.mean_small_ms = small_fct.mean();
  result.p99_small_ms = small_fct.p99();
  result.small_flows = small_fct.count();
  result.small_incomplete = fct.incomplete(small);
  result.mean_small_lb_ms = fct.fct_lower_bound_ms(small, horizon).mean();

  const Sample large_fct = fct.fct_ms(large);
  result.mean_large_ms = large_fct.mean();
  result.large_flows = large_fct.count();
  result.large_incomplete = fct.incomplete(large);
  result.mean_large_lb_ms = fct.fct_lower_bound_ms(large, horizon).mean();

  const Sample all_fct = fct.fct_ms(measured);
  result.mean_all_ms = all_fct.mean();
  result.all_flows = all_fct.count();

  result.edf_deadline_met = deadlines.met_fraction();
  result.drops = net.total_drops();
  result.events = sim.events_processed();
  result.wheel = sim.wheel_stats();
  result.events_replayed = sim.events_replayed();

  if (result.drops > 0) {
    QV_WARN << "fig4 " << fig4_scheme_name(config.scheme) << " load "
            << config.load << ": " << result.drops
            << " packet drops (finite buffers?)";
  }

  if (!config.flow_csv.empty()) {
    telemetry::save_flow_csv(config.flow_csv, fct, measured);
  }

  // Export + freeze LAST, while the instrumented objects still exist.
  if (config.obs != nullptr) {
    obs::Registry& reg = config.obs->registry;
    export_network_metrics(net, reg);
    if (hv) hv->export_metrics(reg, "qvisor");
    reg.counter("sim.events_processed").inc(result.events);
    reg.set_gauge("result.mean_small_ms", result.mean_small_ms);
    reg.set_gauge("result.p99_small_ms", result.p99_small_ms);
    reg.set_gauge("result.mean_small_lb_ms", result.mean_small_lb_ms);
    reg.set_gauge("result.mean_large_ms", result.mean_large_ms);
    reg.set_gauge("result.mean_large_lb_ms", result.mean_large_lb_ms);
    reg.set_gauge("result.edf_deadline_met", result.edf_deadline_met);
    reg.set_gauge("result.drops", static_cast<double>(result.drops));
    reg.freeze();
  }
  return result;
}

}  // namespace

}  // namespace qv::experiments
