// Observability wiring for experiment runs: connects an
// obs::Observability bundle to a built simulation.
//
//  * tracer — attached to the simulator (dispatch spans when the `sim`
//    category is enabled) and given one labelled swimlane per port, so
//    enqueue/drop instants and wire-occupancy spans render per port in
//    Perfetto;
//  * samplers — a periodic queue sampler (per-port depth counters into
//    the trace, depth histograms into the registry, SP-PIFO inversion
//    counters where that discipline is present) plus a per-tenant
//    observed-rank sampler against the hypervisor's live estimators;
//  * registry — export_network_metrics() publishes every port
//    scheduler's counters at end of run.
//
// Lifetime: samplers capture the network/hypervisor by reference; call
// registry.freeze() before the simulation objects are destroyed (the
// run_fig* helpers do).
#pragma once

#include "netsim/network.hpp"
#include "obs/obs.hpp"
#include "qvisor/qvisor.hpp"

namespace qv::experiments {

/// Attach the tracer, label per-port lanes, and register + schedule the
/// periodic queue samplers over (0, end].
void wire_network_obs(netsim::Network& net, obs::Observability& o,
                      TimeNs end);

/// Register the per-tenant observed-rank sampler and the monitor's
/// verdict-change instants.
void wire_hypervisor_obs(qvisor::Hypervisor& hv, obs::Observability& o);

/// Publish every port scheduler's metrics under "port.<src->dst>".
void export_network_metrics(netsim::Network& net, obs::Registry& reg);

}  // namespace qv::experiments
