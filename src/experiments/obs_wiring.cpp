#include "experiments/obs_wiring.hpp"

#include <cstdint>
#include <vector>

#include "netsim/link.hpp"
#include "qvisor/rank_distribution.hpp"
#include "sched/sp_pifo.hpp"

namespace qv::experiments {

namespace {

/// Everything the per-port queue sampler needs, resolved once at wiring
/// time: the sampler body runs thousands of times per run, so it should
/// not build strings or look up registry entries.
///
/// The Link pointer is stable (Network keeps links in unique_ptrs); the
/// scheduler behind link->queue() is re-read every tick because the
/// runtime controller may swap it mid-run.
struct PortProbe {
  netsim::Link* link;
  const char* depth_name;       ///< interned "qdepth <label>"
  const char* inversions_name;  ///< interned "inversions <label>"
  std::uint32_t tid;
  obs::Log2Histogram* depth_pkts;
  obs::Log2Histogram* depth_bytes;
};

/// The discipline whose SP-PIFO statistics to sample, if any: the port
/// scheduler itself, or the hardware scheduler behind a QVISOR port.
const sched::SpPifoQueue* sp_pifo_of(const sched::Scheduler& s) {
  const sched::Scheduler* inner = &s;
  if (const auto* port = dynamic_cast<const qvisor::QvisorPort*>(inner)) {
    inner = &port->inner();
  }
  return dynamic_cast<const sched::SpPifoQueue*>(inner);
}

}  // namespace

void wire_network_obs(netsim::Network& net, obs::Observability& o,
                      TimeNs end) {
  obs::Tracer& tracer = o.tracer;
  net.sim().set_tracer(&tracer);

  std::vector<PortProbe> probes;
  const auto& links = net.links();
  probes.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    netsim::Link& link = *links[i];
    const auto tid = static_cast<std::uint32_t>(1 + i);
    link.set_trace_tid(tid);
    tracer.set_thread_name(tid, "port " + link.label());
    probes.push_back(PortProbe{
        &link,
        tracer.intern("qdepth " + link.label()),
        tracer.intern("inversions " + link.label()),
        tid,
        &o.registry.histogram("port." + link.label() + ".depth_pkts"),
        &o.registry.histogram("port." + link.label() + ".depth_bytes"),
    });
  }

  o.samplers.add("queues",
                 [probes = std::move(probes), &tracer](TimeNs now) {
    const bool traced = tracer.enabled(obs::TraceCategory::kSched);
    for (const PortProbe& probe : probes) {
      const sched::Scheduler& q = probe.link->queue();
      const auto depth = static_cast<std::uint64_t>(q.size());
      const auto bytes = static_cast<std::uint64_t>(q.buffered_bytes());
      probe.depth_pkts->add(depth);
      probe.depth_bytes->add(bytes);
      if (!traced) continue;
      tracer.counter(obs::TraceCategory::kSched, probe.depth_name, now,
                     depth, probe.tid);
      if (const sched::SpPifoQueue* sp = sp_pifo_of(q)) {
        tracer.counter(obs::TraceCategory::kSched, probe.inversions_name,
                       now, sp->inversions(), probe.tid);
      }
    }
  });

  obs::schedule_samplers(net.sim(), o.samplers, o.sample_interval, end);
}

void wire_hypervisor_obs(qvisor::Hypervisor& hv, obs::Observability& o) {
  hv.set_tracer(&o.tracer);

  // Per-tenant observed-rank sampler: the live estimators' medians feed
  // a registry histogram (distribution over the run) and, when runtime
  // tracing is on, per-tenant counter tracks in the timeline.
  struct TenantProbe {
    TenantId id;
    const char* track_name;  ///< interned "rank_p50 <tenant>"
    obs::Log2Histogram* rank_p50;
    obs::Log2Histogram* rank_p99;
  };
  std::vector<TenantProbe> probes;
  probes.reserve(hv.tenants().size());
  for (const auto& spec : hv.tenants()) {
    probes.push_back(TenantProbe{
        spec.id,
        o.tracer.intern("rank_p50 " + spec.name),
        &o.registry.histogram("tenant." + spec.name + ".rank_p50"),
        &o.registry.histogram("tenant." + spec.name + ".rank_p99"),
    });
  }

  obs::Tracer& tracer = o.tracer;
  o.samplers.add("tenant-ranks",
                 [probes = std::move(probes), &hv, &tracer](TimeNs now) {
    const bool traced = tracer.enabled(obs::TraceCategory::kRuntime);
    for (const TenantProbe& probe : probes) {
      const qvisor::RankDistEstimator* est = hv.find_estimator(probe.id);
      if (est == nullptr || est->empty()) continue;
      const auto p50 = static_cast<std::uint64_t>(est->quantile(0.5));
      probe.rank_p50->add(p50);
      probe.rank_p99->add(static_cast<std::uint64_t>(est->quantile(0.99)));
      if (traced) {
        tracer.counter(obs::TraceCategory::kRuntime, probe.track_name, now,
                       p50);
      }
    }
  });
}

void export_network_metrics(netsim::Network& net, obs::Registry& reg) {
  for (const auto& link : net.links()) {
    link->queue().export_metrics(reg, "port." + link->label());
  }
  reg.set_gauge("net.total_drops",
                static_cast<double>(net.total_drops()));
}

}  // namespace qv::experiments
