// overload: run the adversarial-tenant harness and emit run artifacts:
//
//   overload_metrics.json  the full metrics registry of the attack run
//                          (per-tenant admission counters, monitor
//                          observations, quarantine activity)
//   overload_trace.json    Chrome trace-event timeline: admission
//                          throttle engaging, verdict escalations,
//                          quarantine/unquarantine instants
//
// Exits non-zero when the isolation contract fails, so CI can run it
// directly (one invocation per adversary mode).
#include <cstdio>
#include <string>

#include "experiments/overload.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_int("seed", 1, "adversary RNG seed");
  flags.define_string("mode", "flooder",
                      "adversary mode: flooder | gamer | churn | herd");
  flags.define_bool("guard", true,
                    "enable the admission guard (off = demonstration)");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::trafficgen::AdversaryMode mode;
  if (!qv::trafficgen::parse_adversary_mode(flags.get_string("mode"),
                                            &mode)) {
    std::fprintf(stderr, "overload: unknown mode '%s'\n",
                 flags.get_string("mode").c_str());
    return 1;
  }

  qv::obs::Observability obs(
      static_cast<std::size_t>(flags.get_int("trace-capacity")));
  if (flags.get_bool("trace")) {
    obs.tracer.set_mask(
        qv::obs::trace_bit(qv::obs::TraceCategory::kSched) |
        qv::obs::trace_bit(qv::obs::TraceCategory::kQvisor) |
        qv::obs::trace_bit(qv::obs::TraceCategory::kRuntime));
  }

  qv::experiments::OverloadConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.mode = mode;
  config.guard = flags.get_bool("guard");
  config.obs = &obs;

  const auto result = qv::experiments::run_overload(config);
  const auto& atk = result.attack;
  const auto& base = result.baseline;

  const std::string stem =
      flags.get_string("out") + "/overload_" + flags.get_string("mode");
  qv::obs::save_metrics_json(stem + "_metrics.json", obs.registry);
  qv::obs::save_trace_json(stem + "_trace.json", obs.tracer);

  std::printf("overload (mode %s, seed %llu, guard %s)\n",
              qv::trafficgen::adversary_mode_name(mode),
              static_cast<unsigned long long>(config.seed),
              config.guard ? "on" : "off");
  const auto victim = [](const char* name,
                         const qv::experiments::OverloadTenantStats& b,
                         const qv::experiments::OverloadTenantStats& a) {
    std::printf(
        "  %s: delivered %llu -> %llu bytes (%.1f%%), p99 %lld -> %lld ns\n",
        name, static_cast<unsigned long long>(b.delivered_bytes),
        static_cast<unsigned long long>(a.delivered_bytes),
        b.delivered_bytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(a.delivered_bytes) /
                  static_cast<double>(b.delivered_bytes),
        static_cast<long long>(b.p99_latency),
        static_cast<long long>(a.p99_latency));
  };
  victim("gold  ", base.gold, atk.gold);
  victim("silver", base.silver, atk.silver);
  std::printf(
      "  attacker: offered %llu bytes, admitted %llu bytes, drops"
      " rate/share/quantile %llu/%llu/%llu\n",
      static_cast<unsigned long long>(atk.attacker.offered_bytes),
      static_cast<unsigned long long>(atk.attacker_admitted_bytes),
      static_cast<unsigned long long>(atk.guard_rate_dropped),
      static_cast<unsigned long long>(atk.guard_share_dropped),
      static_cast<unsigned long long>(atk.guard_quantile_dropped));
  std::printf(
      "  quarantines %llu, unquarantines %llu, spill tracked max %zu"
      " (evictions %llu), monitor tracked max %zu (untracked %llu)\n",
      static_cast<unsigned long long>(atk.quarantines),
      static_cast<unsigned long long>(atk.unquarantines),
      atk.max_spill_tracked,
      static_cast<unsigned long long>(atk.spill_evictions),
      atk.max_tracked_tenants,
      static_cast<unsigned long long>(atk.untracked_observations));
  std::printf(
      "  checks: conserved %s/%s, guard-balanced %s, accounting %s,"
      " throughput %s, latency %s, throttled %s, quarantined %s,"
      " bounded %s\n",
      base.conserved ? "yes" : "NO", atk.conserved ? "yes" : "NO",
      atk.guard_balanced ? "yes" : "NO",
      atk.accounting_balanced ? "yes" : "NO",
      result.victims_throughput_ok ? "yes" : "NO",
      result.victims_latency_ok ? "yes" : "NO",
      result.attacker_throttled ? "yes" : "NO",
      result.attacker_quarantined ? "yes" : "NO",
      result.state_bounded ? "yes" : "NO");
  std::printf("  artifacts: %s_{metrics.json,trace.json}\n", stem.c_str());

  if (!result.ok) std::fprintf(stderr, "overload: ISOLATION VIOLATED\n");
  return result.ok ? 0 : 1;
}
