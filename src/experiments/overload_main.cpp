// overload: run the adversarial-tenant harness over a modes x seeds
// grid and emit each cell's artifacts:
//
//   overload_<mode>[_s<seed>]_metrics.json  metrics registry of the
//                                           attack run (per-tenant
//                                           admission counters, monitor
//                                           observations, quarantines)
//   overload_<mode>[_s<seed>]_trace.json    timeline: admission throttle
//                                           engaging, verdict
//                                           escalations, quarantine
//                                           instants
//   overload_summary.json                   the whole grid, grid order
//
// Cells fan across cores (--jobs); every artifact except trace.json is
// byte-identical for every --jobs value. Exits non-zero when any
// cell's isolation contract fails, so CI can run the whole former
// mode x seed matrix as ONE invocation.
#include <cstdio>
#include <string>

#include "experiments/sweeps.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_int("seed", 1, "adversary RNG seed");
  flags.define_string("seeds", "", "comma-separated seed list (grid axis); "
                      "overrides --seed");
  flags.define_string("mode", "flooder",
                      "adversary mode: flooder | gamer | churn | herd | all");
  flags.define_bool("guard", true,
                    "enable the admission guard (off = demonstration)");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("jobs", 0,
                   "parallel runs (0 = hardware concurrency, 1 = serial; "
                   "output is byte-identical either way)");
  flags.define_int("trace-capacity", 1 << 16,
                   "trace ring capacity (events; oldest overwritten)");
  flags.define_bool("trace", true, "emit the timeline trace at all");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::OverloadSweepConfig sweep;
  const std::string mode = flags.get_string("mode");
  if (mode == "all") {
    sweep.modes = {qv::trafficgen::AdversaryMode::kFlooder,
                   qv::trafficgen::AdversaryMode::kRankGamer,
                   qv::trafficgen::AdversaryMode::kTenantChurn,
                   qv::trafficgen::AdversaryMode::kBurstHerd};
  } else {
    qv::trafficgen::AdversaryMode one;
    if (!qv::trafficgen::parse_adversary_mode(mode, &one)) {
      std::fprintf(stderr, "overload: unknown mode '%s'\n", mode.c_str());
      return 1;
    }
    sweep.modes = {one};
  }
  if (!flags.get_string("seeds").empty()) {
    bool ok = false;
    sweep.seeds =
        qv::experiments::parse_u64_list(flags.get_string("seeds"), &ok);
    if (!ok) {
      std::fprintf(stderr, "overload: bad --seeds '%s'\n",
                   flags.get_string("seeds").c_str());
      return 1;
    }
  } else {
    sweep.seeds = {static_cast<std::uint64_t>(flags.get_int("seed"))};
  }
  sweep.base.guard = flags.get_bool("guard");
  sweep.out_dir = flags.get_string("out");
  sweep.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  sweep.obs.trace = flags.get_bool("trace");
  sweep.obs.trace_capacity =
      static_cast<std::size_t>(flags.get_int("trace-capacity"));

  const auto cells = qv::experiments::run_overload_sweep(sweep);
  bool all_ok = true;
  for (const auto& cell : cells) {
    if (!cell.log.empty()) std::fputs(cell.log.c_str(), stderr);
    std::fputs(cell.summary.c_str(), stdout);
    if (!cell.ok) {
      std::fprintf(stderr, "overload: ISOLATION VIOLATED (%s)\n",
                   cell.stem.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
