// Dataplane chaos harness (robustness): the sharded dataplane under
// injected shard faults — worker stalls, worker crashes, poisoned
// descriptors, ring desyncs, and a seeded random mix — swept over
// fault kinds x seeds, with every run checked against the fault-domain
// contracts the supervision machinery promises:
//
//   1. balanced books — generated == processed + quarantined +
//      lost_in_flight holds on every port after every recovery;
//   2. fault-free determinism — the supervised pipeline with no faults
//      produces books byte-identical to the unsupervised dataplane
//      (supervision must be a pure observer on the healthy path);
//   3. replay determinism — stall and crash recoveries replay the
//      uncommitted ring region, so the faulted run's books are
//      byte-identical to the fault-free run's;
//   4. bounded loss — a drain recovery (ring desync) itemizes at most
//      ring_capacity + one burst packets per recovery into
//      lost_in_flight, never silently;
//   5. bounded recovery — every checkpoint restore (+ drain) completes
//      within the configured recovery budget, and a stalled worker is
//      detected by the watchdog (not by the run hanging).
//
// Each cell writes <stem>_metrics.json (the dataplane + supervisor
// registries) and <stem>_trace.json (a Perfetto/Chrome trace-event
// timeline of the recovery episodes: one span per checkpoint restore,
// one instant per quarantine verdict). The CLI mirrors `chaos`:
// seeds fan across cores and the summary is reduced in grid order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "util/time.hpp"

namespace qv::experiments {

enum class DataplaneFaultKind { kStall, kCrash, kPoison, kDesync, kRandom };

const char* dataplane_fault_kind_slug(DataplaneFaultKind k);
bool parse_dataplane_fault_kind(const std::string& name,
                                DataplaneFaultKind* out);
std::vector<DataplaneFaultKind> dataplane_all_fault_kinds();

/// The small supervised dataplane shape every chaos cell runs: 2 shards
/// x 2 ports, a few thousand packets per port, a fast watchdog so a
/// stall cell finishes in milliseconds rather than the production
/// deadline.
dataplane::DataplaneConfig dataplane_chaos_base();

struct DataplaneChaosConfig {
  std::uint64_t seed = 1;
  DataplaneFaultKind kind = DataplaneFaultKind::kRandom;
  dataplane::DataplaneConfig base = dataplane_chaos_base();

  /// Per-recovery restore (+ drain) wall budget. Generous: restores
  /// copy a few KB of per-port state, but sanitizer presets tax every
  /// access and the drain handshake waits out a producer burst.
  std::int64_t max_recovery_ns = 2'000'000'000;
};

struct DataplaneChaosResult {
  // Faulted-run tallies (the fault-free reference runs only feed the
  // determinism checks).
  std::uint64_t generated = 0;
  std::uint64_t processed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t lost_in_flight = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t poison_faults = 0;
  std::uint64_t desyncs = 0;
  std::uint64_t watchdog_detects = 0;
  std::uint64_t recovery_count = 0;      ///< RecoveryRecord entries
  std::int64_t max_restore_ns = 0;       ///< slowest single recovery
  std::uint64_t max_lost_per_recovery = 0;
  std::uint64_t loss_bound = 0;          ///< ring_capacity + batch

  // Contract verdicts (see file header; `ok` is their conjunction).
  bool balanced = false;             ///< every faulted-run port book
  bool faultfree_identical = false;  ///< supervised==unsupervised, no faults
  bool replay_identical = false;     ///< replay kinds: faulted==fault-free
  bool loss_bounded = false;         ///< per-recovery drain bound held
  bool recovery_bounded = false;     ///< every restore within budget
  bool activity_seen = false;        ///< the injected kind actually fired
  bool ok = false;

  std::vector<dataplane::RecoveryRecord> recoveries;
  std::vector<dataplane::QuarantineRecord> quarantine;
};

/// Run one cell: unsupervised baseline, supervised fault-free, then the
/// faulted run, and evaluate the contracts. When `metrics_path` is
/// non-empty the faulted run's registry (books, stage histograms,
/// supervisor counters) is saved there before the run state is torn
/// down.
DataplaneChaosResult run_dataplane_chaos(const DataplaneChaosConfig& config,
                                         const std::string& metrics_path = "");

/// Serialize the cell's recovery episodes as a Chrome/Perfetto
/// trace-event JSON ({"traceEvents": [...]}): one complete ("X") span
/// per checkpoint restore on the faulting shard's track, one instant
/// per quarantine verdict. Timestamps are rebased so the first fault
/// lands at t=0.
void write_dataplane_chaos_trace(const std::string& path,
                                 const DataplaneChaosResult& result);

// --- sweep: kinds x seeds -------------------------------------------------

struct DataplaneChaosSweepConfig {
  DataplaneChaosConfig base;  ///< kind/seed overridden per cell
  std::vector<DataplaneFaultKind> kinds = dataplane_all_fault_kinds();
  std::vector<std::uint64_t> seeds = {1};
  std::string out_dir = ".";
  std::size_t jobs = 0;  ///< 0 = hardware_concurrency, 1 = serial
};

/// One completed cell (mirrors SweepCell; kept local so the dataplane
/// harness does not drag the netsim experiment headers in).
struct DataplaneChaosCell {
  std::string stem;
  std::string summary;
  bool ok = true;
  DataplaneChaosResult result;
};

/// Fan the grid across cores, write per-cell artifacts plus
/// dpchaos_summary.json, and return the cells in grid order (kinds
/// outer, seeds inner). Every artifact except the wall-clock fields is
/// byte-identical for every --jobs value.
std::vector<DataplaneChaosCell> run_dataplane_chaos_sweep(
    const DataplaneChaosSweepConfig& sweep);

}  // namespace qv::experiments
