// dataplane_chaos: run the dataplane fault-domain harness over a
// fault-kind x seed grid and emit each cell's artifacts:
//
//   dpchaos_<kind>[_s<seed>]_metrics.json  the faulted run's registry
//                                          (books, stage histograms,
//                                          dataplane.supervisor.*)
//   dpchaos_<kind>[_s<seed>]_trace.json    Perfetto/Chrome trace-event
//                                          timeline: one span per
//                                          checkpoint restore, one
//                                          instant per quarantine
//   dpchaos_summary.json                   the whole grid, grid order
//
// Cells fan across cores (--jobs); exits non-zero when any cell's
// fault-domain contract fails (unbalanced books, supervision overhead
// on the fault-free path, unbounded loss, slow recovery, or a fault
// kind that never fired), so CI runs the matrix as ONE invocation.
#include <cstdio>
#include <string>

#include "experiments/dataplane_chaos.hpp"
#include "experiments/sweeps.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  qv::Flags flags;
  flags.define_int("seed", 1, "dataplane + fault-schedule RNG seed");
  flags.define_string("seeds", "", "comma-separated seed list (grid axis); "
                      "overrides --seed");
  flags.define_string("kinds", "",
                      "comma-separated fault kinds "
                      "(stall,crash,poison,desync,random); default all");
  flags.define_string("out", ".", "output directory for run artifacts");
  flags.define_int("jobs", 0,
                   "parallel cells (0 = hardware concurrency, 1 = serial)");
  flags.define_int("packets", 0,
                   "packets per port (0 = harness default)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) return 0;

  qv::experiments::DataplaneChaosSweepConfig sweep;
  if (!flags.get_string("seeds").empty()) {
    bool ok = false;
    sweep.seeds =
        qv::experiments::parse_u64_list(flags.get_string("seeds"), &ok);
    if (!ok) {
      std::fprintf(stderr, "dataplane_chaos: bad --seeds '%s'\n",
                   flags.get_string("seeds").c_str());
      return 1;
    }
  } else {
    sweep.seeds = {static_cast<std::uint64_t>(flags.get_int("seed"))};
  }
  if (!flags.get_string("kinds").empty()) {
    sweep.kinds.clear();
    std::string csv = flags.get_string("kinds");
    std::size_t pos = 0;
    while (pos <= csv.size()) {
      const std::size_t comma = std::min(csv.find(',', pos), csv.size());
      const std::string name = csv.substr(pos, comma - pos);
      qv::experiments::DataplaneFaultKind kind;
      if (!qv::experiments::parse_dataplane_fault_kind(name, &kind)) {
        std::fprintf(stderr, "dataplane_chaos: bad fault kind '%s'\n",
                     name.c_str());
        return 1;
      }
      sweep.kinds.push_back(kind);
      pos = comma + 1;
    }
  }
  sweep.out_dir = flags.get_string("out");
  sweep.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  if (flags.get_int("packets") > 0) {
    sweep.base.base.packets_per_port =
        static_cast<std::uint64_t>(flags.get_int("packets"));
  }

  const auto cells = qv::experiments::run_dataplane_chaos_sweep(sweep);
  bool all_ok = true;
  for (const auto& cell : cells) {
    std::fputs(cell.summary.c_str(), stdout);
    if (!cell.ok) {
      std::fprintf(stderr, "dataplane_chaos: CONTRACT VIOLATED (%s)\n",
                   cell.stem.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
