// Backend-override variant of the Fig. 4 runner, used by the
// queue-count ablation: the same experiment with QVISOR deployed on an
// SP-PIFO or strict-priority bank instead of an ideal PIFO (§3.4).
#pragma once

#include <cstddef>

#include "experiments/fig4.hpp"

namespace qv::experiments {

enum class Fig4BackendKind { kPifo, kSpPifo, kStrictPriority };

/// Run a QVISOR scheme from `config` with the given hardware backend.
/// `num_queues` applies to the queue-bank kinds; ignored for kPifo.
/// The scheme must be one of the QVISOR schemes.
Fig4Result run_fig4_with_backend(const Fig4Config& config,
                                 Fig4BackendKind kind,
                                 std::size_t num_queues);

}  // namespace qv::experiments
