// The paper's evaluation (§4, Fig. 4): two tenants on a leaf-spine
// fabric — a data-mining workload scheduled with pFabric and a set of
// CBR flows scheduled with EDF — under six scheduling configurations.
// This runner reproduces one (scheme, load) point; the bench harness
// sweeps the grid and prints the two series (small flows / big flows).
#pragma once

#include <cstdint>
#include <string>

#include "netsim/event.hpp"
#include "netsim/topology.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qv::obs {
struct Observability;
}

namespace qv::experiments {

/// The six lines of the paper's Fig. 4.
enum class Fig4Scheme {
  kFifoBoth,             ///< "FIFO: pFabric and EDF"
  kPifoNaive,            ///< "PIFO: pFabric and EDF" (no QVISOR)
  kPifoIdeal,            ///< "PIFO: pFabric" (pFabric alone, ideal)
  kQvisorEdfOverPfabric, ///< "QVISOR: EDF >> pFabric"
  kQvisorShare,          ///< "QVISOR: pFabric + EDF"
  kQvisorPfabricOverEdf, ///< "QVISOR: pFabric >> EDF"
};

const char* fig4_scheme_name(Fig4Scheme scheme);

struct Fig4Config {
  netsim::LeafSpineConfig topo;  ///< paper: 9x4, 16 hosts/leaf, 1/4 Gb/s

  Fig4Scheme scheme = Fig4Scheme::kQvisorPfabricOverEdf;
  double load = 0.5;       ///< pFabric tenant's access-link load
  std::uint64_t seed = 1;

  /// Measurement protocol: flows STARTING in
  /// [warmup, warmup + measure_window) count; the run continues for
  /// `drain` more so measured flows can finish.
  TimeNs warmup = milliseconds(30);
  TimeNs measure_window = milliseconds(80);
  TimeNs drain = milliseconds(200);

  /// EDF tenant: `cbr_flows` CBR streams at `cbr_rate` between random
  /// server pairs, each packet with `cbr_deadline_slack` to live.
  std::size_t cbr_flows = 100;
  BitsPerSec cbr_rate = mbps(500);
  TimeNs cbr_deadline_slack = milliseconds(5);

  /// Truncate the data-mining tail so big flows fit the horizon when
  /// running the scaled-down topology (0 = the full distribution).
  double max_flow_bytes = 0;

  /// Per-port buffer (0 = unbounded; see DESIGN.md on the
  /// no-retransmission substitution).
  std::int64_t buffer_bytes = 0;

  /// Reliable pFabric transport: small priority-drop buffers + ACKs +
  /// timeout retransmission (the paper's actual Netbench setup) instead
  /// of generous buffers + censoring-aware accounting. When enabled and
  /// `buffer_bytes` is 0, ports default to `reliable_buffer_bytes`.
  bool reliable = false;
  std::int64_t reliable_buffer_bytes = 60'000;
  TimeNs rto = microseconds(600);

  /// QVISOR quantization levels per sharing band. Must be fine enough
  /// to keep each tenant's intra-tenant order useful (§3.2); the
  /// quantization ablation bench sweeps this.
  std::uint32_t qvisor_levels = 4096;

  /// Run on the pre-overhaul simulation core (heap event ordering +
  /// per-packet link events) — the differential-testing reference and
  /// benchmark baseline. Artifacts are byte-identical either way.
  bool per_event_simcore = false;

  /// Optional instrumentation (not owned): the run attaches the tracer
  /// + samplers and, at teardown, exports every metric and freeze()s
  /// the registry so the caller can write the artifacts afterwards.
  obs::Observability* obs = nullptr;

  /// When non-empty, write the measured pFabric flows here as CSV.
  std::string flow_csv;

  TimeNs total_duration() const { return warmup + measure_window + drain; }
};

/// A scaled-down configuration (16 hosts, truncated tail) that keeps
/// the full sweep under ~2 minutes; set env QVISOR_FIG4_FULL=1 in the
/// bench to use the paper-scale topology instead.
Fig4Config fig4_scaled_config();

/// The paper-scale configuration (144 hosts, full tail).
Fig4Config fig4_paper_config();

struct Fig4Result {
  // pFabric-tenant FCTs, milliseconds, over measured completed flows.
  double mean_small_ms = 0;  ///< flows in (0, 100 KB) — Fig. 4a
  double p99_small_ms = 0;
  std::size_t small_flows = 0;
  std::size_t small_incomplete = 0;
  /// Censoring-aware mean: incomplete flows counted at their age when
  /// the simulation ended (lower bound). This is the headline number —
  /// without it a configuration that STARVES flows looks good because
  /// only its lucky flows complete.
  double mean_small_lb_ms = 0;

  double mean_large_ms = 0;  ///< flows in [1 MB, inf) — Fig. 4b
  std::size_t large_flows = 0;
  std::size_t large_incomplete = 0;
  double mean_large_lb_ms = 0;

  double mean_all_ms = 0;
  std::size_t all_flows = 0;

  double edf_deadline_met = 1.0;  ///< EDF tenant's deadline-met fraction
  std::uint64_t drops = 0;        ///< total packet drops (should be ~0)
  std::uint64_t events = 0;       ///< simulator events processed

  /// Timing-wheel diagnostics for the run (NOT exported into
  /// metrics.json: the split differs between drain modes while the
  /// artifacts must stay byte-identical).
  netsim::EventQueue::WheelStats wheel;
  /// Link sub-steps replayed inline by the coalesced drain (same
  /// caveat: diagnostics only, 0 on the per-event reference).
  std::uint64_t events_replayed = 0;
};

Fig4Result run_fig4(const Fig4Config& config);

}  // namespace qv::experiments
