// Deployment backends (paper §3.4): QVISOR must run on whatever the
// switch actually has. A Backend abstracts one scheduler type behind a
// capability descriptor ("what packet-processing operations it supports
// and what guarantees it provides") and knows how to instantiate the
// scheduler configured for a given synthesis plan.
//
// The strict-priority backend reproduces the paper's worked example: a
// bank of priority queues where whole queue SETS are dedicated to
// isolation tiers ("map traffic from T1 to the three highest-priority
// queues, and traffic from T2 and T3 to the two lowest-priority
// queues"), with each tier's rank band spread across its queues.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qvisor/synthesizer.hpp"
#include "sched/scheduler.hpp"

namespace qv::qvisor {

struct SchedulerCapabilities {
  enum class Kind { kPifo, kSpPifo, kStrictPriority, kAifo, kFifo };

  Kind kind = Kind::kPifo;
  std::size_t num_queues = 1;  ///< for queue-bank kinds
  Rank rank_space = 1u << 20;  ///< ranks the hardware can represent
  std::int64_t buffer_bytes = 0;  ///< 0 = unbounded

  /// True iff dequeue order is exactly rank order (a real PIFO). When
  /// false, QVISOR can only promise approximate ordering and must lean
  /// on dedicated queues for strict isolation.
  bool perfect_ordering = false;

  std::string describe() const;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual SchedulerCapabilities capabilities() const = 0;
  virtual std::string name() const = 0;

  /// Build one hardware-scheduler instance configured for `plan`
  /// (queue maps installed, buffers sized). Called once per port.
  virtual std::unique_ptr<sched::Scheduler> instantiate(
      const SynthesisPlan& plan) const = 0;

  /// The guarantees this backend offers for `plan`, human-readable
  /// (paper §5: output "the supported specifications and the offered
  /// guarantees").
  virtual std::vector<std::string> guarantees(
      const SynthesisPlan& plan) const;
};

using BackendPtr = std::shared_ptr<Backend>;

/// Ideal PIFO: perfect rank ordering (the abstraction of §2 Problem 3).
class PifoBackend final : public Backend {
 public:
  explicit PifoBackend(std::int64_t buffer_bytes = 0,
                       Rank rank_space = 1u << 20);
  SchedulerCapabilities capabilities() const override;
  std::string name() const override { return "pifo"; }
  std::unique_ptr<sched::Scheduler> instantiate(
      const SynthesisPlan& plan) const override;

 private:
  std::int64_t buffer_bytes_;
  Rank rank_space_;
};

/// SP-PIFO on N strict-priority queues (adaptive queue bounds).
class SpPifoBackend final : public Backend {
 public:
  SpPifoBackend(std::size_t num_queues, std::int64_t buffer_bytes = 0,
                Rank rank_space = 1u << 20);
  SchedulerCapabilities capabilities() const override;
  std::string name() const override { return "sp-pifo"; }
  std::unique_ptr<sched::Scheduler> instantiate(
      const SynthesisPlan& plan) const override;
  std::vector<std::string> guarantees(
      const SynthesisPlan& plan) const override;

 private:
  std::size_t num_queues_;
  std::int64_t buffer_bytes_;
  Rank rank_space_;
};

/// Fixed strict-priority queues with a plan-derived rank→queue map:
/// queues are DEDICATED to isolation tiers (≥1 per tier, remainder
/// spread by band width), so '>>' holds exactly even without a PIFO.
class StrictPriorityBackend final : public Backend {
 public:
  StrictPriorityBackend(std::size_t num_queues,
                        std::int64_t buffer_bytes = 0,
                        Rank rank_space = 1u << 20);
  SchedulerCapabilities capabilities() const override;
  std::string name() const override { return "strict-priority"; }
  std::unique_ptr<sched::Scheduler> instantiate(
      const SynthesisPlan& plan) const override;
  std::vector<std::string> guarantees(
      const SynthesisPlan& plan) const override;

  /// The queue index a given transformed rank maps to under `plan`
  /// (exposed for tests and for the example binaries to print).
  static std::size_t queue_for(const SynthesisPlan& plan,
                               std::size_t num_queues, Rank rank);

  /// Queues assigned to each tier: tier i owns
  /// [assignment[i], assignment[i+1]).
  static std::vector<std::size_t> tier_queue_split(
      const SynthesisPlan& plan, std::size_t num_queues);

 private:
  std::size_t num_queues_;
  std::int64_t buffer_bytes_;
  Rank rank_space_;
};

/// AIFO: single FIFO + rank-aware admission.
class AifoBackend final : public Backend {
 public:
  explicit AifoBackend(std::int64_t buffer_bytes, std::size_t window = 64,
                       double k = 0.1, Rank rank_space = 1u << 20);
  SchedulerCapabilities capabilities() const override;
  std::string name() const override { return "aifo"; }
  std::unique_ptr<sched::Scheduler> instantiate(
      const SynthesisPlan& plan) const override;
  std::vector<std::string> guarantees(
      const SynthesisPlan& plan) const override;

 private:
  std::int64_t buffer_bytes_;
  std::size_t window_;
  double k_;
  Rank rank_space_;
};

/// Plain FIFO: the degenerate baseline (ranks ignored entirely).
class FifoBackend final : public Backend {
 public:
  explicit FifoBackend(std::int64_t buffer_bytes = 0);
  SchedulerCapabilities capabilities() const override;
  std::string name() const override { return "fifo"; }
  std::unique_ptr<sched::Scheduler> instantiate(
      const SynthesisPlan& plan) const override;
  std::vector<std::string> guarantees(
      const SynthesisPlan& plan) const override;

 private:
  std::int64_t buffer_bytes_;
};

}  // namespace qv::qvisor
