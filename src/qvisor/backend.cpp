#include "qvisor/backend.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "sched/aifo.hpp"
#include "sched/fifo.hpp"
#include "sched/pifo.hpp"
#include "sched/sp_pifo.hpp"
#include "sched/strict_priority.hpp"

namespace qv::qvisor {

std::string SchedulerCapabilities::describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kPifo:
      out << "PIFO";
      break;
    case Kind::kSpPifo:
      out << "SP-PIFO(" << num_queues << " queues)";
      break;
    case Kind::kStrictPriority:
      out << "strict-priority(" << num_queues << " queues)";
      break;
    case Kind::kAifo:
      out << "AIFO";
      break;
    case Kind::kFifo:
      out << "FIFO";
      break;
  }
  out << ", rank space " << rank_space << ", "
      << (perfect_ordering ? "perfect" : "approximate") << " ordering";
  return out.str();
}

std::vector<std::string> Backend::guarantees(
    const SynthesisPlan& plan) const {
  std::vector<std::string> out;
  const auto caps = capabilities();
  if (caps.perfect_ordering) {
    out.push_back(
        "perfect rank ordering: the full plan semantics hold exactly");
  }
  if (plan.degraded) {
    out.push_back("plan itself is degraded (reduced quantization)");
  }
  return out;
}

// --- PIFO --------------------------------------------------------------

PifoBackend::PifoBackend(std::int64_t buffer_bytes, Rank rank_space)
    : buffer_bytes_(buffer_bytes), rank_space_(rank_space) {}

SchedulerCapabilities PifoBackend::capabilities() const {
  SchedulerCapabilities caps;
  caps.kind = SchedulerCapabilities::Kind::kPifo;
  caps.rank_space = rank_space_;
  caps.buffer_bytes = buffer_bytes_;
  caps.perfect_ordering = true;
  return caps;
}

std::unique_ptr<sched::Scheduler> PifoBackend::instantiate(
    const SynthesisPlan& plan) const {
  // The synthesized plan bounds every transformed rank to a small used
  // prefix of the hardware rank space, which lets PifoQueue select the
  // flat bucketed backend. One extra level of headroom catches ranks
  // above the bands (best-effort unknown-tenant traffic lands at
  // rank_space - 1): they clamp into the bucket BELOW every band.
  const Rank used = plan.used_rank_space();
  return std::make_unique<sched::PifoQueue>(buffer_bytes_,
                                            used == 0 ? 0 : used + 1);
}

// --- SP-PIFO -----------------------------------------------------------

SpPifoBackend::SpPifoBackend(std::size_t num_queues,
                             std::int64_t buffer_bytes, Rank rank_space)
    : num_queues_(num_queues), buffer_bytes_(buffer_bytes),
      rank_space_(rank_space) {
  assert(num_queues > 0);
}

SchedulerCapabilities SpPifoBackend::capabilities() const {
  SchedulerCapabilities caps;
  caps.kind = SchedulerCapabilities::Kind::kSpPifo;
  caps.num_queues = num_queues_;
  caps.rank_space = rank_space_;
  caps.buffer_bytes = buffer_bytes_;
  caps.perfect_ordering = false;
  return caps;
}

std::unique_ptr<sched::Scheduler> SpPifoBackend::instantiate(
    const SynthesisPlan& /*plan*/) const {
  return std::make_unique<sched::SpPifoQueue>(num_queues_, buffer_bytes_);
}

std::vector<std::string> SpPifoBackend::guarantees(
    const SynthesisPlan& plan) const {
  auto out = Backend::guarantees(plan);
  out.push_back("rank ordering approximated by " +
                std::to_string(num_queues_) +
                " adaptive queues; bounded per-queue inversions, no "
                "strict isolation guarantee under adversarial ranks");
  return out;
}

// --- strict priority -----------------------------------------------------

StrictPriorityBackend::StrictPriorityBackend(std::size_t num_queues,
                                             std::int64_t buffer_bytes,
                                             Rank rank_space)
    : num_queues_(num_queues), buffer_bytes_(buffer_bytes),
      rank_space_(rank_space) {
  assert(num_queues > 0);
}

SchedulerCapabilities StrictPriorityBackend::capabilities() const {
  SchedulerCapabilities caps;
  caps.kind = SchedulerCapabilities::Kind::kStrictPriority;
  caps.num_queues = num_queues_;
  caps.rank_space = rank_space_;
  caps.buffer_bytes = buffer_bytes_;
  caps.perfect_ordering = false;
  return caps;
}

std::vector<std::size_t> StrictPriorityBackend::tier_queue_split(
    const SynthesisPlan& plan, std::size_t num_queues) {
  const std::size_t tiers = std::max<std::size_t>(plan.tier_bands.size(), 1);
  // Every tier gets at least one queue; leftover queues go to tiers in
  // proportion to their band widths (wider band = more distinct ranks
  // worth separating).
  std::vector<std::size_t> queues_per_tier(tiers, tiers <= num_queues ? 1 : 0);
  if (tiers > num_queues) {
    // More tiers than queues: the last queues absorb multiple tiers.
    // Assign one queue per tier until we run out; the rest share the
    // final queue. Expressed as a split for uniformity.
    std::vector<std::size_t> split(tiers + 1, 0);
    for (std::size_t t = 0; t <= tiers; ++t) {
      split[t] = std::min(t, num_queues - 1);
    }
    split[tiers] = num_queues;
    return split;
  }
  std::size_t leftover = num_queues - tiers;
  std::uint64_t total_width = 0;
  for (const auto& band : plan.tier_bands) {
    total_width += static_cast<std::uint64_t>(band.hi) - band.lo + 1;
  }
  if (total_width == 0) total_width = 1;
  std::size_t assigned = 0;
  for (std::size_t t = 0; t < tiers && leftover > 0; ++t) {
    const std::uint64_t width =
        static_cast<std::uint64_t>(plan.tier_bands[t].hi) -
        plan.tier_bands[t].lo + 1;
    const auto extra = static_cast<std::size_t>(
        static_cast<std::uint64_t>(leftover) * width / total_width);
    queues_per_tier[t] += extra;
    assigned += extra;
  }
  // Rounding remainder goes to the first (highest-priority) tier.
  queues_per_tier[0] += leftover - assigned;

  std::vector<std::size_t> split(tiers + 1, 0);
  for (std::size_t t = 0; t < tiers; ++t) {
    split[t + 1] = split[t] + queues_per_tier[t];
  }
  return split;
}

std::size_t StrictPriorityBackend::queue_for(const SynthesisPlan& plan,
                                             std::size_t num_queues,
                                             Rank rank) {
  const auto split = tier_queue_split(plan, num_queues);
  for (std::size_t t = 0; t < plan.tier_bands.size(); ++t) {
    const auto& band = plan.tier_bands[t];
    if (rank < band.lo || rank > band.hi) continue;
    const std::size_t first = split[t];
    const std::size_t count = std::max<std::size_t>(split[t + 1] - first, 1);
    const std::uint64_t width =
        static_cast<std::uint64_t>(band.hi) - band.lo + 1;
    const std::uint64_t offset = rank - band.lo;
    return first + static_cast<std::size_t>(offset * count / width);
  }
  return num_queues - 1;  // outside every band: best effort
}

std::unique_ptr<sched::Scheduler> StrictPriorityBackend::instantiate(
    const SynthesisPlan& plan) const {
  auto bank = std::make_unique<sched::StrictPriorityBank>(
      num_queues_, buffer_bytes_, rank_space_);
  // Capture the pieces of the plan the map needs by value so the
  // scheduler outlives the plan object.
  const auto bands = plan.tier_bands;
  const auto split = tier_queue_split(plan, num_queues_);
  const std::size_t nq = num_queues_;
  bank->set_queue_map([bands, split, nq](const Packet& p) -> std::size_t {
    for (std::size_t t = 0; t < bands.size(); ++t) {
      if (p.rank < bands[t].lo || p.rank > bands[t].hi) continue;
      const std::size_t first = split[t];
      const std::size_t count =
          std::max<std::size_t>(split[t + 1] - first, 1);
      const std::uint64_t width =
          static_cast<std::uint64_t>(bands[t].hi) - bands[t].lo + 1;
      const std::uint64_t offset = p.rank - bands[t].lo;
      return first + static_cast<std::size_t>(offset * count / width);
    }
    return nq - 1;
  });
  return bank;
}

std::vector<std::string> StrictPriorityBackend::guarantees(
    const SynthesisPlan& plan) const {
  auto out = Backend::guarantees(plan);
  const auto split = tier_queue_split(plan, num_queues_);
  for (std::size_t t = 0; t + 1 < split.size(); ++t) {
    std::ostringstream msg;
    msg << "tier " << t << " owns dedicated queues [" << split[t] << ", "
        << split[t + 1] << "): '>>' isolation holds exactly";
    if (split[t + 1] - split[t] <= 1 && plan.tier_bands.size() > t) {
      msg << "; intra-tier order collapses to FIFO (1 queue)";
    }
    out.push_back(msg.str());
  }
  return out;
}

// --- AIFO ----------------------------------------------------------------

AifoBackend::AifoBackend(std::int64_t buffer_bytes, std::size_t window,
                         double k, Rank rank_space)
    : buffer_bytes_(buffer_bytes), window_(window), k_(k),
      rank_space_(rank_space) {}

SchedulerCapabilities AifoBackend::capabilities() const {
  SchedulerCapabilities caps;
  caps.kind = SchedulerCapabilities::Kind::kAifo;
  caps.rank_space = rank_space_;
  caps.buffer_bytes = buffer_bytes_;
  caps.perfect_ordering = false;
  return caps;
}

std::unique_ptr<sched::Scheduler> AifoBackend::instantiate(
    const SynthesisPlan& /*plan*/) const {
  return std::make_unique<sched::AifoQueue>(buffer_bytes_, window_, k_);
}

std::vector<std::string> AifoBackend::guarantees(
    const SynthesisPlan& plan) const {
  auto out = Backend::guarantees(plan);
  out.push_back(
      "single-queue admission control: low ranks favored by admission, "
      "FIFO order inside the buffer; no in-buffer reordering");
  return out;
}

// --- FIFO ------------------------------------------------------------------

FifoBackend::FifoBackend(std::int64_t buffer_bytes)
    : buffer_bytes_(buffer_bytes) {}

SchedulerCapabilities FifoBackend::capabilities() const {
  SchedulerCapabilities caps;
  caps.kind = SchedulerCapabilities::Kind::kFifo;
  caps.rank_space = 1;
  caps.buffer_bytes = buffer_bytes_;
  caps.perfect_ordering = false;
  return caps;
}

std::unique_ptr<sched::Scheduler> FifoBackend::instantiate(
    const SynthesisPlan& /*plan*/) const {
  return std::make_unique<sched::FifoQueue>(buffer_bytes_);
}

std::vector<std::string> FifoBackend::guarantees(
    const SynthesisPlan& plan) const {
  auto out = Backend::guarantees(plan);
  out.push_back("ranks are ignored: no part of the policy is enforced");
  return out;
}

}  // namespace qv::qvisor
