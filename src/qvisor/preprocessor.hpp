// The QVISOR pre-processor (paper §3.3): the data-plane half. For each
// incoming packet it extracts the tenant identifier and rank, looks up
// the tenant's transformation function, rewrites the rank, and hands
// the packet to the hardware scheduler.
//
// The lookup structure is a dense tenant-indexed table (transforms and
// per-tenant counters side by side), mirroring how a real pipeline
// would burn the plan into match-action stages: the per-packet cost is
// one bounds check and one array load, no hashing. Tenant ids beyond
// the dense range (a control-plane misconfiguration, not a data-plane
// case) fall back to a spill map. A batch entry point amortizes the
// call overhead across a burst — the switch output-port path
// (QvisorPort::enqueue_batch / Link::transmit_burst) uses it.
//
// Plans install atomically (a swap of the lookup table), which is what
// lets the runtime controller re-synthesize between packets (§2 Idea 2).
//
// Hostile-input hardening (overload protection):
//  * an optional per-tenant AdmissionGuard runs AFTER the rank rewrite
//    (so quantile admission sees the transformed rank). With no guard
//    configured the extra cost is one predictable null check and the
//    rank rewrite is bit-identical to the unguarded pre-processor.
//  * the spill COUNTER map — the only map hostile traffic can grow, by
//    churning through never-before-seen tenant ids — is LRU-bounded;
//    evictions fold the evicted tally into `spill_evicted_packets` so
//    per-tenant accounting stays conservative. (`spill_` itself is
//    rebuilt from the installed plan and is control-plane sized.)
//  * transform outputs that overflow the rank space saturate into the
//    best-effort band and bump `rank_clamped` instead of wrapping into
//    a high-priority band.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "control/group_plan.hpp"
#include "netsim/packet.hpp"
#include "obs/metrics.hpp"
#include "qvisor/admission.hpp"
#include "qvisor/synthesizer.hpp"
#include "util/time.hpp"

namespace qv::qvisor {

/// What to do with packets whose tenant has no installed transform.
enum class UnknownTenantAction {
  kPassThrough,  ///< keep the original rank (useful for debugging)
  kBestEffort,   ///< send to the very bottom of the rank space
  kDrop,         ///< reject (the caller drops the packet)
};

struct PreprocessorCounters {
  std::uint64_t processed = 0;
  std::uint64_t unknown_tenant = 0;
  std::uint64_t out_of_bounds = 0;  ///< input rank outside declared bounds
  std::uint64_t degraded_passthrough = 0;  ///< packets ranked in degraded mode
  std::uint64_t admission_dropped = 0;  ///< rejected by the admission guard
  std::uint64_t rank_clamped = 0;  ///< transform output saturated into top band
  std::uint64_t spill_evictions = 0;  ///< tenants evicted from spill counters
  std::uint64_t spill_evicted_packets = 0;  ///< tallies folded by evictions
};

class Preprocessor {
 public:
  /// Dense-table ceiling: tenants with ids below this index straight
  /// into the flat table; larger ids (misconfigurations — real tenant
  /// ids are small and dense) spill to a hash map.
  static constexpr TenantId kDenseLimit = 1u << 16;

  /// Default bound on distinct spilled tenant ids whose packet tallies
  /// are kept exactly; beyond it the least-recently-seen tally is
  /// folded into `spill_evicted_packets`.
  static constexpr std::size_t kDefaultSpillCap = 4096;

  explicit Preprocessor(
      UnknownTenantAction unknown = UnknownTenantAction::kBestEffort);

  /// Deep copy: clones the installed plan, counters, spill tallies, and
  /// the admission guard's full token/occupancy/window state, so a copy
  /// is a faithful checkpoint of the data-plane state (dataplane
  /// supervision snapshots one per port). Copy-assignment reuses the
  /// destination's buffers where the standard containers allow it, so a
  /// periodic checkpoint into a warm destination allocates rarely.
  Preprocessor(const Preprocessor& other);
  Preprocessor& operator=(const Preprocessor& other);
  Preprocessor(Preprocessor&&) = default;
  Preprocessor& operator=(Preprocessor&&) = default;
  ~Preprocessor() = default;

  /// Install (replace) the active plan. O(#tenants); never observed
  /// mid-packet. Leaves group mode (the two modes are exclusive; the
  /// last install wins).
  void install(const SynthesisPlan& plan);

  // --- group-compiled mode (million-tenant control plane) ----------------
  /// Install a group-compiled plan: O(groups) transform table + the
  /// shared O(1) tenant -> group index. Per-tenant dense tables are NOT
  /// built — this is the whole point at 1M tenants.
  void install_groups(const control::CompiledGroupPlan& plan);

  /// Incremental install: update only the delta's changed groups (and
  /// swap the index if membership moved). Returns false — leaving the
  /// installed state untouched — when this pre-processor is not in
  /// group mode at the matching group count, in which case the caller
  /// falls back to install_groups().
  bool apply_group_delta(const control::CompiledGroupPlan& plan,
                         const control::GroupPlanDelta& delta);

  bool group_mode() const { return group_index_ != nullptr; }
  const control::GroupIndex* group_index() const {
    return group_index_.get();
  }
  /// Per-group processed-packet tallies (ordinal-indexed); O(groups)
  /// bytes, the group-mode replacement for per_tenant().
  const std::vector<std::uint64_t>& group_counts() const {
    return group_counts_;
  }

  /// Rewrite `p.rank` in place. Returns false only when the packet must
  /// be dropped (unknown tenant under kDrop, or rejected by the
  /// admission guard). `p.original_rank` keeps the tenant-assigned rank
  /// for telemetry. Defined here so the per-packet cost stays a bounds
  /// check + array load + transform, fully inlined into the port
  /// enqueue and batch loops. `now` only matters when an admission
  /// guard is configured (token-bucket refill clock).
  bool process(Packet& p, TimeNs now = 0) {
    ++counters_.processed;
    if (degraded_) [[unlikely]] {
      // Degraded fallback (runtime controller lost the control plane):
      // ignore possibly-stale transforms and schedule every packet by
      // its tenant-assigned label, clamped into the rank space. Safe —
      // no tenant can be starved by a transform nobody can update —
      // and allocation-free: one branch, no lookups. The admission
      // guard stays engaged: losing the control plane must not open
      // the floodgates.
      ++counters_.degraded_passthrough;
      const Rank label = p.original_rank;
      p.rank = label < rank_space_ ? label : best_effort_rank_;
      return admit(p, now);
    }
    const TenantId t = p.tenant;
    if (group_index_ != nullptr) {
      // Group-compiled mode: one O(1) index load resolves the tenant to
      // its group; the transform table is O(groups). Any tenant id —
      // including one never seen before — costs the same, because there
      // is no per-tenant state to look up or grow.
      const control::GroupId g = group_index_->lookup(t);
      if (g != control::kInvalidGroup) [[likely]] {
        ++group_counts_[g];
        return apply_entry(group_table_[g], p, now);
      }
      // No covering range and no catch-all: the unknown-tenant action,
      // without the per-tenant spill tally (nothing per-tenant exists
      // to tally in group mode).
      ++counters_.unknown_tenant;
      return finish_unknown(p, now);
    }
    if (t < dense_.size()) {
      const Installed& e = dense_[t];
      if (e.active) {
        ++dense_counts_[t];
        return apply_entry(e, p, now);
      }
    }
    return process_slow(p, now);
  }

  /// Batch variant: rewrite every rank in place, compacting survivors
  /// to the front of the span (stable). Returns the survivor count —
  /// batch[0, n) is what the caller enqueues.
  std::size_t process(std::span<Packet> batch, TimeNs now = 0);

  const PreprocessorCounters& counters() const { return counters_; }
  PreprocessorCounters& mutable_counters() { return counters_; }

  /// Publish the processing counters as live registry views (the hot
  /// path already maintains them; nothing new is counted).
  void export_metrics(obs::Registry& reg, const std::string& prefix) const {
    reg.counter_view(prefix + ".processed", &counters_.processed);
    reg.counter_view(prefix + ".unknown_tenant", &counters_.unknown_tenant);
    reg.counter_view(prefix + ".out_of_bounds", &counters_.out_of_bounds);
    reg.counter_view(prefix + ".degraded_passthrough",
                     &counters_.degraded_passthrough);
    reg.counter_view(prefix + ".admission_dropped",
                     &counters_.admission_dropped);
    reg.counter_view(prefix + ".rank_clamped", &counters_.rank_clamped);
    reg.counter_view(prefix + ".spill_evictions",
                     &counters_.spill_evictions);
    reg.counter_view(prefix + ".spill_evicted_packets",
                     &counters_.spill_evicted_packets);
    if (guard_) guard_->export_metrics(reg, prefix + ".admission");
  }

  /// Enter/leave degraded pass-through mode (see process()).
  void set_degraded(bool degraded) { degraded_ = degraded; }
  bool degraded() const { return degraded_; }

  // --- admission guard ---------------------------------------------------
  /// Install (replace) the per-tenant admission guard. Passing a fresh
  /// config resets token buckets and occupancy accounts.
  void configure_admission(AdmissionConfig config);
  void disable_admission() { guard_.reset(); }
  bool admission_enabled() const { return guard_ != nullptr; }
  AdmissionGuard* admission() { return guard_.get(); }
  const AdmissionGuard* admission() const { return guard_.get(); }
  /// Return queue occupancy charged at admit time (dequeue / inner
  /// rejection). No-op without a guard.
  void admission_release(TenantId tenant, std::int32_t bytes) {
    if (guard_) guard_->release(tenant, bytes);
  }

  // --- spill-counter bound ------------------------------------------------
  /// Cap on distinct spilled tenant ids tracked exactly (>= 1).
  void set_spill_cap(std::size_t cap);
  std::size_t spill_cap() const { return spill_cap_; }
  /// Distinct spilled tenant ids currently tracked (<= spill_cap()).
  std::size_t spill_tracked() const { return spill_counts_.size(); }

  /// Per-tenant processed-packet counts (runtime controller input).
  /// Materialized from the dense counter table on demand — a
  /// control-plane read, not a hot path. Evicted spill tallies are not
  /// included (see `spill_evicted_packets`).
  std::unordered_map<TenantId, std::uint64_t> per_tenant() const;

  bool has_plan() const { return installed_tenants_ > 0; }
  Rank rank_space() const { return rank_space_; }

 private:
  struct Installed {
    RankTransform range;
    std::optional<BreakpointTransform> quantile;
    bool active = false;
  };
  struct SpillCount {
    std::uint64_t count = 0;
    std::list<TenantId>::iterator lru_it;
  };

  /// Admission tail, shared by every admit path. One predictable null
  /// check when no guard is configured.
  bool admit(const Packet& p, TimeNs now) {
    if (guard_ == nullptr) [[likely]] return true;
    if (guard_->admit(p, now)) return true;
    ++counters_.admission_dropped;
    return false;
  }

  /// Transform application shared by the per-tenant and group paths.
  /// The input is always the tenant-assigned label, NOT the current
  /// scheduling rank: an upstream QVISOR hop may already have rewritten
  /// `p.rank`, and transforming a transformed rank would collapse the
  /// rank space (each pre-processor derives its scheduling rank from
  /// the label the tenant stamped at the source, §3.1/§3.3).
  bool apply_entry(const Installed& e, Packet& p, TimeNs now) {
    const Rank label = p.original_rank;
    const auto bounds = e.range.input_bounds();
    if (label < bounds.min || label > bounds.max) {
      // The transform clamps, so scheduling stays safe; count it so the
      // monitor can flag tenants violating their declared bounds.
      ++counters_.out_of_bounds;
    }
    Rank out = e.quantile ? e.quantile->apply(label) : e.range.apply(label);
    if (out >= rank_space_) [[unlikely]] {
      // A transform that overflows the rank space (stride/base near the
      // numeric edge) saturates into the best-effort band; it must
      // never wrap around into a high-priority one.
      ++counters_.rank_clamped;
      out = best_effort_rank_;
    }
    p.rank = out;
    return admit(p, now);
  }

  /// Apply the unknown-tenant action (the caller already counted it).
  bool finish_unknown(Packet& p, TimeNs now) {
    switch (unknown_) {
      case UnknownTenantAction::kPassThrough:
        return admit(p, now);
      case UnknownTenantAction::kBestEffort:
        p.rank = best_effort_rank_;
        return admit(p, now);
      case UnknownTenantAction::kDrop:
        return false;
    }
    return admit(p, now);
  }

  bool process_slow(Packet& p, TimeNs now);  ///< spill / unknown path
  void count_spill(TenantId tenant);

  UnknownTenantAction unknown_;
  bool degraded_ = false;
  /// Dense tables, indexed by tenant id; sized to the largest
  /// installed id + 1 (counter table grows on demand for unknown-but-
  /// in-range tenants as well, so counting stays hash-free).
  std::vector<Installed> dense_;
  std::vector<std::uint64_t> dense_counts_;
  /// Group-compiled mode: O(groups) transform table, ordinal-indexed by
  /// the shared index's group id. Non-null group_index_ IS the mode
  /// flag — install() (per-tenant) resets it.
  std::vector<Installed> group_table_;
  std::vector<std::uint64_t> group_counts_;
  std::shared_ptr<const control::GroupIndex> group_index_;
  /// Spilled transforms: rebuilt from the plan on install, so its size
  /// is operator-controlled — hostile traffic cannot grow it.
  std::unordered_map<TenantId, Installed> spill_;
  /// Spilled per-tenant tallies: the data path CAN grow this (tenant-id
  /// churn), so it is LRU-bounded at spill_cap_ entries.
  std::unordered_map<TenantId, SpillCount> spill_counts_;
  std::list<TenantId> spill_lru_;  ///< front = most recently counted
  std::size_t spill_cap_ = kDefaultSpillCap;
  std::unique_ptr<AdmissionGuard> guard_;
  std::size_t installed_tenants_ = 0;
  Rank rank_space_ = kMaxRank;
  Rank best_effort_rank_ = kMaxRank - 1;
  PreprocessorCounters counters_;
};

}  // namespace qv::qvisor
