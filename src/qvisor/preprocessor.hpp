// The QVISOR pre-processor (paper §3.3): the data-plane half. For each
// incoming packet it extracts the tenant identifier and rank, looks up
// the tenant's transformation function, rewrites the rank, and hands
// the packet to the hardware scheduler.
//
// The lookup structure is a dense tenant-indexed table (transforms and
// per-tenant counters side by side), mirroring how a real pipeline
// would burn the plan into match-action stages: the per-packet cost is
// one bounds check and one array load, no hashing. Tenant ids beyond
// the dense range (a control-plane misconfiguration, not a data-plane
// case) fall back to a spill map. A batch entry point amortizes the
// call overhead across a burst — the switch output-port path
// (QvisorPort::enqueue_batch / Link::transmit_burst) uses it.
//
// Plans install atomically (a swap of the lookup table), which is what
// lets the runtime controller re-synthesize between packets (§2 Idea 2).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netsim/packet.hpp"
#include "obs/metrics.hpp"
#include "qvisor/synthesizer.hpp"

namespace qv::qvisor {

/// What to do with packets whose tenant has no installed transform.
enum class UnknownTenantAction {
  kPassThrough,  ///< keep the original rank (useful for debugging)
  kBestEffort,   ///< send to the very bottom of the rank space
  kDrop,         ///< reject (the caller drops the packet)
};

struct PreprocessorCounters {
  std::uint64_t processed = 0;
  std::uint64_t unknown_tenant = 0;
  std::uint64_t out_of_bounds = 0;  ///< input rank outside declared bounds
  std::uint64_t degraded_passthrough = 0;  ///< packets ranked in degraded mode
};

class Preprocessor {
 public:
  /// Dense-table ceiling: tenants with ids below this index straight
  /// into the flat table; larger ids (misconfigurations — real tenant
  /// ids are small and dense) spill to a hash map.
  static constexpr TenantId kDenseLimit = 1u << 16;

  explicit Preprocessor(
      UnknownTenantAction unknown = UnknownTenantAction::kBestEffort);

  /// Install (replace) the active plan. O(#tenants); never observed
  /// mid-packet.
  void install(const SynthesisPlan& plan);

  /// Rewrite `p.rank` in place. Returns false only when the packet must
  /// be dropped (unknown tenant under kDrop). `p.original_rank` keeps
  /// the tenant-assigned rank for telemetry. Defined here so the
  /// per-packet cost stays a bounds check + array load + transform,
  /// fully inlined into the port enqueue and batch loops.
  bool process(Packet& p) {
    ++counters_.processed;
    if (degraded_) [[unlikely]] {
      // Degraded fallback (runtime controller lost the control plane):
      // ignore possibly-stale transforms and schedule every packet by
      // its tenant-assigned label, clamped into the rank space. Safe —
      // no tenant can be starved by a transform nobody can update —
      // and allocation-free: one branch, no lookups.
      ++counters_.degraded_passthrough;
      const Rank label = p.original_rank;
      p.rank = label < rank_space_ ? label : best_effort_rank_;
      return true;
    }
    const TenantId t = p.tenant;
    if (t < dense_.size()) {
      const Installed& e = dense_[t];
      if (e.active) {
        ++dense_counts_[t];
        // The input is always the tenant-assigned label, NOT the
        // current scheduling rank: an upstream QVISOR hop may already
        // have rewritten `p.rank`, and transforming a transformed rank
        // would collapse the rank space (each pre-processor derives its
        // scheduling rank from the label the tenant stamped at the
        // source, §3.1/§3.3).
        const Rank label = p.original_rank;
        const auto bounds = e.range.input_bounds();
        if (label < bounds.min || label > bounds.max) {
          // The transform clamps, so scheduling stays safe; count it so
          // the monitor can flag tenants violating their declared
          // bounds.
          ++counters_.out_of_bounds;
        }
        p.rank = e.quantile ? e.quantile->apply(label) : e.range.apply(label);
        return true;
      }
    }
    return process_slow(p);
  }

  /// Batch variant: rewrite every rank in place, compacting survivors
  /// to the front of the span (stable). Returns the survivor count —
  /// batch[0, n) is what the caller enqueues.
  std::size_t process(std::span<Packet> batch);

  const PreprocessorCounters& counters() const { return counters_; }
  PreprocessorCounters& mutable_counters() { return counters_; }

  /// Publish the processing counters as live registry views (the hot
  /// path already maintains them; nothing new is counted).
  void export_metrics(obs::Registry& reg, const std::string& prefix) const {
    reg.counter_view(prefix + ".processed", &counters_.processed);
    reg.counter_view(prefix + ".unknown_tenant", &counters_.unknown_tenant);
    reg.counter_view(prefix + ".out_of_bounds", &counters_.out_of_bounds);
    reg.counter_view(prefix + ".degraded_passthrough",
                     &counters_.degraded_passthrough);
  }

  /// Enter/leave degraded pass-through mode (see process()).
  void set_degraded(bool degraded) { degraded_ = degraded; }
  bool degraded() const { return degraded_; }

  /// Per-tenant processed-packet counts (runtime controller input).
  /// Materialized from the dense counter table on demand — a
  /// control-plane read, not a hot path.
  std::unordered_map<TenantId, std::uint64_t> per_tenant() const;

  bool has_plan() const { return installed_tenants_ > 0; }
  Rank rank_space() const { return rank_space_; }

 private:
  struct Installed {
    RankTransform range;
    std::optional<BreakpointTransform> quantile;
    bool active = false;
  };

  bool process_slow(Packet& p);  ///< spill-map / unknown-tenant path
  void count_spill(TenantId tenant);

  UnknownTenantAction unknown_;
  bool degraded_ = false;
  /// Dense tables, indexed by tenant id; sized to the largest
  /// installed id + 1 (counter table grows on demand for unknown-but-
  /// in-range tenants as well, so counting stays hash-free).
  std::vector<Installed> dense_;
  std::vector<std::uint64_t> dense_counts_;
  std::unordered_map<TenantId, Installed> spill_;
  std::unordered_map<TenantId, std::uint64_t> spill_counts_;
  std::size_t installed_tenants_ = 0;
  Rank rank_space_ = kMaxRank;
  Rank best_effort_rank_ = kMaxRank - 1;
  PreprocessorCounters counters_;
};

}  // namespace qv::qvisor
