// The QVISOR pre-processor (paper §3.3): the data-plane half. For each
// incoming packet it extracts the tenant identifier and rank, looks up
// the tenant's transformation function, rewrites the rank, and hands
// the packet to the hardware scheduler.
//
// Plans install atomically (a swap of the lookup table), which is what
// lets the runtime controller re-synthesize between packets (§2 Idea 2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netsim/packet.hpp"
#include "qvisor/synthesizer.hpp"

namespace qv::qvisor {

/// What to do with packets whose tenant has no installed transform.
enum class UnknownTenantAction {
  kPassThrough,  ///< keep the original rank (useful for debugging)
  kBestEffort,   ///< send to the very bottom of the rank space
  kDrop,         ///< reject (the caller drops the packet)
};

struct PreprocessorCounters {
  std::uint64_t processed = 0;
  std::uint64_t unknown_tenant = 0;
  std::uint64_t out_of_bounds = 0;  ///< input rank outside declared bounds
};

class Preprocessor {
 public:
  explicit Preprocessor(
      UnknownTenantAction unknown = UnknownTenantAction::kBestEffort);

  /// Install (replace) the active plan. O(#tenants); never observed
  /// mid-packet.
  void install(const SynthesisPlan& plan);

  /// Rewrite `p.rank` in place. Returns false only when the packet must
  /// be dropped (unknown tenant under kDrop). `p.original_rank` keeps
  /// the tenant-assigned rank for telemetry.
  bool process(Packet& p);

  const PreprocessorCounters& counters() const { return counters_; }
  PreprocessorCounters& mutable_counters() { return counters_; }

  /// Per-tenant processed-packet counts (runtime controller input).
  const std::unordered_map<TenantId, std::uint64_t>& per_tenant() const {
    return per_tenant_;
  }

  bool has_plan() const { return !transforms_.empty(); }
  Rank rank_space() const { return rank_space_; }

 private:
  struct Installed {
    RankTransform range;
    std::optional<BreakpointTransform> quantile;
  };

  UnknownTenantAction unknown_;
  std::unordered_map<TenantId, Installed> transforms_;
  std::unordered_map<TenantId, std::uint64_t> per_tenant_;
  Rank rank_space_ = kMaxRank;
  PreprocessorCounters counters_;
};

}  // namespace qv::qvisor
