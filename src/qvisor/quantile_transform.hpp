// Runtime quantile refinement (paper §5, "Optimizing configurations at
// runtime"): replace range-based normalization with quantile
// normalization built from each tenant's live rank observations, while
// keeping the synthesizer's band placement intact.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "qvisor/rank_distribution.hpp"
#include "qvisor/synthesizer.hpp"

namespace qv::qvisor {

/// Build a quantile transform from an estimator window, targeting the
/// given level count and band base.
BreakpointTransform quantile_transform_from_estimator(
    const RankDistEstimator& estimator, std::uint32_t levels, Rank base);

/// Rewrite the normalization of every tenant in `plan` that has at
/// least `min_samples` observations: keep the band (base, level count)
/// chosen by the synthesizer, but quantize by empirical quantiles
/// instead of by declared range. Tenants with too few samples keep
/// their range transform. Returns the refined plan; `refined_count`
/// (optional) reports how many tenants were switched.
SynthesisPlan refine_with_quantiles(
    const SynthesisPlan& plan,
    const std::unordered_map<TenantId, const RankDistEstimator*>& estimators,
    std::size_t min_samples = 128, std::size_t* refined_count = nullptr);

}  // namespace qv::qvisor
