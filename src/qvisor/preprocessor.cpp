#include "qvisor/preprocessor.hpp"

#include <algorithm>

namespace qv::qvisor {

Preprocessor::Preprocessor(UnknownTenantAction unknown) : unknown_(unknown) {}

void Preprocessor::install(const SynthesisPlan& plan) {
  TenantId dense_max = 0;
  bool any_dense = false;
  for (const auto& tp : plan.tenants) {
    if (tp.tenant < kDenseLimit) {
      dense_max = std::max(dense_max, tp.tenant);
      any_dense = true;
    }
  }
  std::vector<Installed> next(any_dense ? dense_max + 1 : 0);
  std::unordered_map<TenantId, Installed> next_spill;
  for (const auto& tp : plan.tenants) {
    Installed entry{tp.transform, tp.quantile, /*active=*/true};
    if (tp.tenant < kDenseLimit) {
      next[tp.tenant] = std::move(entry);
    } else {
      next_spill.emplace(tp.tenant, std::move(entry));
    }
  }
  dense_ = std::move(next);
  spill_ = std::move(next_spill);
  installed_tenants_ = plan.tenants.size();
  rank_space_ = plan.rank_space;
  best_effort_rank_ = rank_space_ == 0 ? kMaxRank : rank_space_ - 1;
  // Counters persist across installs; make sure the dense counter table
  // covers the new dense id range so the hot path never bounds-checks.
  if (dense_counts_.size() < dense_.size()) dense_counts_.resize(dense_.size());
}

std::size_t Preprocessor::process(std::span<Packet> batch) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Packet& p = batch[i];
    if (process(p)) {
      if (kept != i) batch[kept] = p;
      ++kept;
    }
  }
  return kept;
}

void Preprocessor::count_spill(TenantId tenant) {
  if (tenant < kDenseLimit) {
    if (dense_counts_.size() <= tenant) dense_counts_.resize(tenant + 1);
    ++dense_counts_[tenant];
  } else {
    ++spill_counts_[tenant];
  }
}

bool Preprocessor::process_slow(Packet& p) {
  const TenantId t = p.tenant;
  if (t >= kDenseLimit) {
    const auto it = spill_.find(t);
    if (it != spill_.end()) {
      ++spill_counts_[t];
      const Installed& e = it->second;
      const Rank label = p.original_rank;
      const auto bounds = e.range.input_bounds();
      if (label < bounds.min || label > bounds.max) {
        ++counters_.out_of_bounds;
      }
      p.rank = e.quantile ? e.quantile->apply(label) : e.range.apply(label);
      return true;
    }
  }
  count_spill(t);
  ++counters_.unknown_tenant;
  switch (unknown_) {
    case UnknownTenantAction::kPassThrough:
      return true;
    case UnknownTenantAction::kBestEffort:
      p.rank = best_effort_rank_;
      return true;
    case UnknownTenantAction::kDrop:
      return false;
  }
  return true;
}

std::unordered_map<TenantId, std::uint64_t> Preprocessor::per_tenant() const {
  std::unordered_map<TenantId, std::uint64_t> out;
  out.reserve(spill_counts_.size() + 16);
  for (TenantId t = 0; t < dense_counts_.size(); ++t) {
    if (dense_counts_[t] != 0) out.emplace(t, dense_counts_[t]);
  }
  for (const auto& [t, count] : spill_counts_) out.emplace(t, count);
  return out;
}

}  // namespace qv::qvisor
