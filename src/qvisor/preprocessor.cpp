#include "qvisor/preprocessor.hpp"

#include <algorithm>
#include <utility>

namespace qv::qvisor {

Preprocessor::Preprocessor(UnknownTenantAction unknown) : unknown_(unknown) {}

Preprocessor::Preprocessor(const Preprocessor& other) { *this = other; }

Preprocessor& Preprocessor::operator=(const Preprocessor& other) {
  if (this == &other) return *this;
  unknown_ = other.unknown_;
  degraded_ = other.degraded_;
  dense_ = other.dense_;
  dense_counts_ = other.dense_counts_;
  group_table_ = other.group_table_;
  group_counts_ = other.group_counts_;
  group_index_ = other.group_index_;  // shared, immutable once built
  spill_ = other.spill_;
  spill_counts_ = other.spill_counts_;
  spill_lru_ = other.spill_lru_;
  spill_cap_ = other.spill_cap_;
  if (other.guard_) {
    if (guard_) {
      *guard_ = *other.guard_;  // reuse the allocation
    } else {
      guard_ = std::make_unique<AdmissionGuard>(*other.guard_);
    }
  } else {
    guard_.reset();
  }
  installed_tenants_ = other.installed_tenants_;
  rank_space_ = other.rank_space_;
  best_effort_rank_ = other.best_effort_rank_;
  counters_ = other.counters_;
  // The copied spill tallies still hold iterators into the SOURCE's LRU
  // list; re-point each at our own copy (element order is preserved by
  // list copy-assignment).
  for (auto it = spill_lru_.begin(); it != spill_lru_.end(); ++it) {
    spill_counts_[*it].lru_it = it;
  }
  return *this;
}

void Preprocessor::install(const SynthesisPlan& plan) {
  TenantId dense_max = 0;
  bool any_dense = false;
  for (const auto& tp : plan.tenants) {
    if (tp.tenant < kDenseLimit) {
      dense_max = std::max(dense_max, tp.tenant);
      any_dense = true;
    }
  }
  std::vector<Installed> next(any_dense ? dense_max + 1 : 0);
  std::unordered_map<TenantId, Installed> next_spill;
  for (const auto& tp : plan.tenants) {
    Installed entry{tp.transform, tp.quantile, /*active=*/true};
    if (tp.tenant < kDenseLimit) {
      next[tp.tenant] = std::move(entry);
    } else {
      next_spill.emplace(tp.tenant, std::move(entry));
    }
  }
  dense_ = std::move(next);
  spill_ = std::move(next_spill);
  installed_tenants_ = plan.tenants.size();
  rank_space_ = plan.rank_space;
  best_effort_rank_ = rank_space_ == 0 ? kMaxRank : rank_space_ - 1;
  // Counters persist across installs; make sure the dense counter table
  // covers the new dense id range so the hot path never bounds-checks.
  if (dense_counts_.size() < dense_.size()) dense_counts_.resize(dense_.size());
  // Per-tenant install leaves group mode (modes are exclusive).
  group_index_.reset();
  group_table_.clear();
  group_counts_.clear();
}

void Preprocessor::install_groups(const control::CompiledGroupPlan& plan) {
  std::vector<Installed> next;
  next.reserve(plan.table.tenants.size());
  for (const auto& tp : plan.table.tenants) {
    next.push_back(Installed{tp.transform, tp.quantile, /*active=*/true});
  }
  group_table_ = std::move(next);
  group_index_ = plan.index;
  // Tallies persist across installs like dense_counts_ does; only the
  // table size may move.
  group_counts_.resize(group_table_.size());
  installed_tenants_ = plan.table.tenants.size();
  rank_space_ = plan.table.rank_space;
  best_effort_rank_ = rank_space_ == 0 ? kMaxRank : rank_space_ - 1;
  // The per-tenant tables are dead weight in group mode; drop them so a
  // mode switch is also a memory release.
  dense_.clear();
  spill_.clear();
}

bool Preprocessor::apply_group_delta(const control::CompiledGroupPlan& plan,
                                     const control::GroupPlanDelta& delta) {
  if (delta.full || group_index_ == nullptr ||
      group_table_.size() != plan.table.tenants.size()) {
    return false;  // structurally incompatible; caller installs in full
  }
  for (const std::uint32_t g : delta.changed_groups) {
    const auto& tp = plan.table.tenants[g];
    group_table_[g] = Installed{tp.transform, tp.quantile, /*active=*/true};
  }
  if (delta.index_changed) group_index_ = plan.index;
  rank_space_ = plan.table.rank_space;
  best_effort_rank_ = rank_space_ == 0 ? kMaxRank : rank_space_ - 1;
  return true;
}

void Preprocessor::configure_admission(AdmissionConfig config) {
  guard_ = std::make_unique<AdmissionGuard>(std::move(config));
}

void Preprocessor::set_spill_cap(std::size_t cap) {
  spill_cap_ = std::max<std::size_t>(1, cap);
  while (spill_counts_.size() > spill_cap_) {
    const TenantId victim = spill_lru_.back();
    spill_lru_.pop_back();
    const auto it = spill_counts_.find(victim);
    counters_.spill_evicted_packets += it->second.count;
    ++counters_.spill_evictions;
    spill_counts_.erase(it);
  }
}

std::size_t Preprocessor::process(std::span<Packet> batch, TimeNs now) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Packet& p = batch[i];
    if (process(p, now)) {
      if (kept != i) batch[kept] = p;
      ++kept;
    }
  }
  return kept;
}

void Preprocessor::count_spill(TenantId tenant) {
  if (tenant < kDenseLimit) {
    if (dense_counts_.size() <= tenant) dense_counts_.resize(tenant + 1);
    ++dense_counts_[tenant];
    return;
  }
  const auto it = spill_counts_.find(tenant);
  if (it != spill_counts_.end()) {
    ++it->second.count;
    spill_lru_.splice(spill_lru_.begin(), spill_lru_, it->second.lru_it);
    return;
  }
  // New spilled tenant id: evict the least-recently-counted tally first
  // so the map never exceeds the cap. The evicted count is folded into
  // spill_evicted_packets, keeping aggregate accounting exact even
  // under unbounded tenant-id churn.
  if (spill_counts_.size() >= spill_cap_) {
    const TenantId victim = spill_lru_.back();
    spill_lru_.pop_back();
    const auto vit = spill_counts_.find(victim);
    counters_.spill_evicted_packets += vit->second.count;
    ++counters_.spill_evictions;
    spill_counts_.erase(vit);
  }
  spill_lru_.push_front(tenant);
  spill_counts_.emplace(tenant, SpillCount{1, spill_lru_.begin()});
}

bool Preprocessor::process_slow(Packet& p, TimeNs now) {
  const TenantId t = p.tenant;
  if (t >= kDenseLimit) {
    const auto it = spill_.find(t);
    if (it != spill_.end()) {
      count_spill(t);
      return apply_entry(it->second, p, now);
    }
  }
  count_spill(t);
  ++counters_.unknown_tenant;
  return finish_unknown(p, now);
}

std::unordered_map<TenantId, std::uint64_t> Preprocessor::per_tenant() const {
  std::unordered_map<TenantId, std::uint64_t> out;
  out.reserve(spill_counts_.size() + 16);
  for (TenantId t = 0; t < dense_counts_.size(); ++t) {
    if (dense_counts_[t] != 0) out.emplace(t, dense_counts_[t]);
  }
  for (const auto& [t, sc] : spill_counts_) out.emplace(t, sc.count);
  return out;
}

}  // namespace qv::qvisor
