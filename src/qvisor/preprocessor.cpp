#include "qvisor/preprocessor.hpp"

namespace qv::qvisor {

Preprocessor::Preprocessor(UnknownTenantAction unknown) : unknown_(unknown) {}

void Preprocessor::install(const SynthesisPlan& plan) {
  std::unordered_map<TenantId, Installed> next;
  next.reserve(plan.tenants.size());
  for (const auto& tp : plan.tenants) {
    next.emplace(tp.tenant, Installed{tp.transform, tp.quantile});
  }
  transforms_ = std::move(next);
  rank_space_ = plan.rank_space;
}

bool Preprocessor::process(Packet& p) {
  ++counters_.processed;
  ++per_tenant_[p.tenant];

  // The input is always the tenant-assigned label, NOT the current
  // scheduling rank: an upstream QVISOR hop may already have rewritten
  // `p.rank`, and transforming a transformed rank would collapse the
  // rank space (each pre-processor derives its scheduling rank from the
  // label the tenant stamped at the source, §3.1/§3.3).
  const Rank label = p.original_rank;

  const auto it = transforms_.find(p.tenant);
  if (it == transforms_.end()) {
    ++counters_.unknown_tenant;
    switch (unknown_) {
      case UnknownTenantAction::kPassThrough:
        return true;
      case UnknownTenantAction::kBestEffort:
        p.rank = rank_space_ == 0 ? kMaxRank : rank_space_ - 1;
        return true;
      case UnknownTenantAction::kDrop:
        return false;
    }
    return true;
  }
  const Installed& installed = it->second;
  const auto bounds = installed.range.input_bounds();
  if (label < bounds.min || label > bounds.max) {
    // The transform clamps, so scheduling stays safe; count it so the
    // monitor can flag tenants that violate their declared bounds.
    ++counters_.out_of_bounds;
  }
  p.rank = installed.quantile ? installed.quantile->apply(label)
                              : installed.range.apply(label);
  return true;
}

}  // namespace qv::qvisor
