#include "qvisor/synthesizer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace qv::qvisor {

const TenantPlan* SynthesisPlan::find(TenantId id) const {
  for (const auto& t : tenants) {
    if (t.tenant == id) return &t;
  }
  return nullptr;
}

const TenantPlan* SynthesisPlan::find(const std::string& name) const {
  for (const auto& t : tenants) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Rank SynthesisPlan::used_rank_space() const {
  Rank used = 0;
  for (const auto& band : tier_bands) {
    if (band.hi != kMaxRank) used = std::max(used, band.hi + 1);
  }
  // Quantile refinements stay inside the bands, but belt-and-braces:
  // cover every transform's worst-case output too.
  for (const auto& tp : tenants) {
    const Rank worst =
        tp.quantile ? tp.quantile->out_max() : tp.transform.out_max();
    if (worst != kMaxRank) used = std::max(used, worst + 1);
  }
  return used;
}

Synthesizer::Synthesizer(SynthesizerConfig config) : config_(config) {}

namespace {

Synthesizer::Result fail(std::string message) {
  Synthesizer::Result r;
  r.error = std::move(message);
  return r;
}

/// Width (in rank levels) one tier occupies for a given quantization.
std::uint64_t tier_width(const PriorityTier& tier, std::uint32_t levels,
                         std::uint32_t bias, std::uint32_t stagger) {
  std::uint64_t width = 0;
  for (std::size_t g = 0; g < tier.groups.size(); ++g) {
    const auto n = static_cast<std::uint64_t>(tier.groups[g].tenants.size());
    const std::uint64_t group_width =
        levels + stagger * (n > 0 ? n - 1 : 0);
    width = std::max(width, static_cast<std::uint64_t>(bias) * g +
                                group_width);
  }
  return width;
}

std::uint64_t total_width(const OperatorPolicy& policy, std::uint32_t levels,
                          std::uint32_t bias, std::uint32_t stagger) {
  std::uint64_t total = 0;
  for (const auto& tier : policy.tiers()) {
    total += tier_width(tier, levels, bias, stagger);
  }
  return total;
}

}  // namespace

Synthesizer::Result Synthesizer::synthesize(
    const std::vector<TenantSpec>& tenants,
    const OperatorPolicy& policy) const {
  if (policy.empty()) return fail("empty operator policy");
  if (config_.rank_space == 0) return fail("rank space is empty");

  // Match policy names to specs, both ways.
  std::map<std::string, const TenantSpec*> by_name;
  for (const auto& spec : tenants) {
    if (spec.name.empty()) return fail("tenant with empty name");
    if (!by_name.emplace(spec.name, &spec).second) {
      return fail("duplicate tenant spec: " + spec.name);
    }
  }
  const auto names = policy.tenant_names();
  const std::set<std::string> in_policy(names.begin(), names.end());
  for (const auto& name : names) {
    if (!by_name.count(name)) {
      return fail("policy mentions unknown tenant: " + name);
    }
  }
  for (const auto& spec : tenants) {
    if (!in_policy.count(spec.name)) {
      return fail("tenant not mentioned in policy: " + spec.name +
                  " (restrict the spec set or extend the policy)");
    }
  }

  SynthesisPlan plan;
  plan.policy = policy;
  plan.rank_space = config_.rank_space;

  // Pick the quantization. Start from the configured target; shrink if
  // the layout overflows the rank space and degradation is allowed.
  std::uint32_t levels = std::max<std::uint32_t>(config_.levels_per_group, 1);
  auto bias_for = [&](std::uint32_t lv) {
    return config_.pref_bias != 0 ? config_.pref_bias
                                  : std::max<std::uint32_t>(lv / 4, 1);
  };
  const std::uint32_t stagger = config_.share_stagger;

  std::uint64_t need =
      total_width(policy, levels, bias_for(levels), stagger);
  if (need > config_.rank_space) {
    if (!config_.allow_degraded) {
      return fail("policy needs " + std::to_string(need) +
                  " rank levels but the backend offers " +
                  std::to_string(config_.rank_space));
    }
    // Binary-search the largest quantization that fits.
    std::uint32_t lo = 1;
    std::uint32_t hi = levels;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo + 1) / 2;
      if (total_width(policy, mid, bias_for(mid), stagger) <=
          config_.rank_space) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    if (total_width(policy, lo, bias_for(lo), stagger) >
        config_.rank_space) {
      return fail("rank space too small even at 1 level per group (" +
                  std::to_string(config_.rank_space) + " available)");
    }
    plan.degraded = true;
    std::ostringstream note;
    note << "degraded: quantization reduced from "
         << config_.levels_per_group << " to " << lo
         << " levels per group to fit rank space "
         << config_.rank_space;
    plan.notes.push_back(note.str());
    levels = lo;
  }
  const std::uint32_t bias = bias_for(levels);

  // Lay out tiers bottom-up in rank value (tier 0 = lowest ranks =
  // highest priority) and emit per-tenant transforms.
  Rank tier_base = 0;
  const auto& tiers = policy.tiers();
  for (std::size_t ti = 0; ti < tiers.size(); ++ti) {
    const auto& tier = tiers[ti];
    const auto width = static_cast<Rank>(
        tier_width(tier, levels, bias, stagger));
    plan.tier_bands.push_back(TierBand{tier_base, tier_base + width - 1});

    for (std::size_t gi = 0; gi < tier.groups.size(); ++gi) {
      const auto& group = tier.groups[gi];
      const Rank group_base = tier_base + static_cast<Rank>(bias) *
                                              static_cast<Rank>(gi);
      for (std::size_t mi = 0; mi < group.tenants.size(); ++mi) {
        const TenantSpec& spec = *by_name.at(group.tenants[mi]);
        TenantPlan tp;
        tp.tenant = spec.id;
        tp.name = spec.name;
        tp.tier = ti;
        tp.group = gi;
        tp.index_in_group = mi;
        tp.transform = RankTransform(
            spec.declared_bounds, levels,
            group_base + static_cast<Rank>(stagger) * static_cast<Rank>(mi),
            /*stride=*/1);
        plan.tenants.push_back(std::move(tp));
      }
      if (group.tenants.size() > 1) {
        std::ostringstream note;
        note << "tier " << ti << " group " << gi << ": ";
        for (std::size_t mi = 0; mi < group.tenants.size(); ++mi) {
          if (mi > 0) note << " + ";
          note << group.tenants[mi];
        }
        note << " share a " << levels << "-level band fairly";
        plan.notes.push_back(note.str());
      }
      if (gi + 1 < tier.groups.size()) {
        std::ostringstream note;
        note << "tier " << ti << ": group " << gi
             << " preferred over group " << gi + 1 << " (bias " << bias
             << " of " << levels << " levels, best-effort)";
        plan.notes.push_back(note.str());
      }
    }

    if (ti + 1 < tiers.size()) {
      std::ostringstream note;
      note << "tier " << ti << " strictly isolated above tier " << ti + 1
           << " (bands [" << tier_base << "," << tier_base + width - 1
           << "] < [" << tier_base + width << ", ...])";
      plan.notes.push_back(note.str());
    }
    tier_base += width;
  }

  Result r;
  r.plan = std::move(plan);
  return r;
}

}  // namespace qv::qvisor
