// Online rank-distribution estimation (paper §2 Idea 2 "react upon
// [traffic shifts] ... based on the latest packets received", and §5
// "computing transformation functions at line rate, based on the
// distribution of the latest packets").
//
// A sliding window of recent ranks per tenant yields empirical bounds
// and quantiles that the runtime controller feeds back into the
// synthesizer to tighten bands, and that the monitor compares against
// the tenant's declared bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netsim/packet.hpp"
#include "sched/rank/ranker.hpp"
#include "util/time.hpp"

namespace qv::qvisor {

class RankDistEstimator {
 public:
  explicit RankDistEstimator(std::size_t window = 1024);

  void observe(Rank r, TimeNs now);

  std::size_t samples() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Empirical bounds over the current window. Meaningless when empty.
  sched::RankBounds bounds() const;

  /// Empirical quantile (0 <= q <= 1) over the window.
  Rank quantile(double q) const;

  /// Arrival rate over the window, packets/second. 0 until the window
  /// spans a positive time interval.
  double rate_pps(TimeNs now) const;

  TimeNs last_observation() const { return last_seen_; }

  void reset();

 private:
  struct Entry {
    Rank rank;
    TimeNs at;
  };

  std::vector<Entry> ring_;
  std::size_t head_ = 0;   ///< next slot to overwrite
  std::size_t count_ = 0;  ///< filled slots (<= ring_.size())
  TimeNs last_seen_ = 0;
};

}  // namespace qv::qvisor
