// Online rank-distribution estimation (paper §2 Idea 2 "react upon
// [traffic shifts] ... based on the latest packets received", and §5
// "computing transformation functions at line rate, based on the
// distribution of the latest packets").
//
// A sliding window of recent ranks per tenant yields empirical bounds
// and quantiles that the runtime controller feeds back into the
// synthesizer to tighten bands, and that the monitor compares against
// the tenant's declared bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "control/rank_digest.hpp"
#include "netsim/packet.hpp"
#include "sched/rank/ranker.hpp"
#include "util/time.hpp"

namespace qv::qvisor {

class RankDistEstimator {
 public:
  explicit RankDistEstimator(std::size_t window = 1024);

  /// Sketch-backed estimator (million-tenant control plane): ranks feed
  /// a fixed-byte mergeable RankDigest instead of the exact 1024-entry
  /// ring; bounds() and quantile() answer from the digest within its
  /// error bound. A small time ring (`time_window` entries) remains for
  /// rate_pps() — arrival TIMES have no sketch, and the controller only
  /// needs a recent-rate estimate. `decay_every` observations between
  /// digest decay() calls keeps the distribution sliding (0 = never).
  static RankDistEstimator sketched(control::RankDigestConfig config,
                                    std::size_t time_window = 128,
                                    std::uint32_t decay_every = 4096);

  bool sketch_mode() const { return digest_.has_value(); }

  /// Bytes held by this estimator's structures — constant per mode.
  std::size_t byte_size() const;

  void observe(Rank r, TimeNs now);

  std::size_t samples() const {
    return digest_ ? static_cast<std::size_t>(digest_->count()) : count_;
  }
  bool empty() const { return samples() == 0; }

  /// Empirical bounds over the current window. Meaningless when empty.
  sched::RankBounds bounds() const;

  /// Empirical quantile (0 <= q <= 1) over the window.
  Rank quantile(double q) const;

  /// Arrival rate over the window, packets/second. 0 until the window
  /// spans a positive time interval.
  double rate_pps(TimeNs now) const;

  TimeNs last_observation() const { return last_seen_; }

  void reset();

 private:
  struct Entry {
    Rank rank;
    TimeNs at;
  };

  std::vector<Entry> ring_;
  std::size_t head_ = 0;   ///< next slot to overwrite
  std::size_t count_ = 0;  ///< filled slots (<= ring_.size())
  TimeNs last_seen_ = 0;
  /// Sketch mode (set by sketched()): the distribution lives here and
  /// ring_ only carries arrival times for rate_pps().
  std::optional<control::RankDigest> digest_;
  std::uint32_t decay_every_ = 0;
  std::uint32_t since_decay_ = 0;
};

}  // namespace qv::qvisor
