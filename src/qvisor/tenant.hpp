// Tenant specification (paper §3.1): a tenant is the tuple
// {traffic subset, scheduling algorithm}. The traffic subset is carried
// on packets as the tenant identifier label; the algorithm is the rank
// function the tenant uses to tag its packets (computed at the end host
// or an upstream switch, before QVISOR's pre-processor).
#pragma once

#include <string>
#include <utility>

#include "netsim/packet.hpp"
#include "sched/rank/ranker.hpp"

namespace qv::qvisor {

struct TenantSpec {
  TenantId id = kInvalidTenant;
  std::string name;  ///< the identifier used in the operator's policy

  /// The tenant's rank function. May be null when the tenant computes
  /// ranks externally — `declared_bounds` is authoritative either way.
  sched::RankerPtr ranker;

  /// Bounds within which the tenant promises its ranks fall. The
  /// synthesizer's worst-case analysis (§2 Idea 2) reasons over these;
  /// the monitor polices them at runtime.
  sched::RankBounds declared_bounds;

  /// Relative weight used when sharing (`+`) tenants are normalized
  /// onto a common band. 1.0 = equal share.
  double weight = 1.0;

  static TenantSpec make(TenantId id, std::string name,
                         sched::RankerPtr ranker, double weight = 1.0) {
    TenantSpec spec;
    spec.id = id;
    spec.name = std::move(name);
    spec.declared_bounds = ranker ? ranker->bounds() : sched::RankBounds{};
    spec.ranker = std::move(ranker);
    spec.weight = weight;
    return spec;
  }
};

}  // namespace qv::qvisor
