// Rank transformation functions — the output of the synthesizer and the
// unit of work of the pre-processor (paper §3.2).
//
// QVISOR supports two primitive transformations:
//   * rank-shift: add a band base, prioritizing whole tenants;
//   * rank-normalization: bound a tenant's rank range and quantize it
//     onto discrete levels so different tenants compare fairly.
//
// Both compose into one affine-quantized map:
//
//   level(r) = clamp(r, in_min, in_max) scaled onto [0, levels)
//   apply(r) = base + level(r) * stride
//
// `stride` lets sharing tenants interleave with a per-tenant offset
// (paper Fig. 3 staggers T2 onto even and T3 onto odd ranks of the
// shared band). The map is monotone, so intra-tenant scheduling order
// is preserved — the property that keeps each tenant's algorithm
// meaningful after virtualization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/packet.hpp"
#include "sched/rank/ranker.hpp"

namespace qv::qvisor {

class RankTransform {
 public:
  /// Identity transform (no shift, no quantization).
  RankTransform() = default;

  /// `in`: the tenant's declared rank bounds. `levels`: quantization
  /// granularity (>= 1). `base`: band base added after quantization
  /// (the shift). `stride`: distance between adjacent output levels
  /// (>= 1; > 1 leaves space for interleaved sharing tenants).
  RankTransform(sched::RankBounds in, std::uint32_t levels, Rank base,
                std::uint32_t stride = 1);

  /// Hot path: one clamp, one multiply, one shift (the division by the
  /// input width is folded into a precomputed fixed-point reciprocal
  /// whenever the exactness precondition holds — see the constructor).
  Rank apply(Rank r) const {
    if (levels_ == 0) return r;  // identity
    const Rank clamped = r < in_.min ? in_.min : (r > in_.max ? in_.max : r);
    const std::uint64_t n =
        static_cast<std::uint64_t>(clamped - in_.min) * levels_;
    std::uint64_t level;
#if defined(__SIZEOF_INT128__)
    if (recip_ != 0) {
      // floor(n / width) == (n * recip) >> 64, exact under the
      // constructor's width^2 * levels <= 2^64 guard.
      level = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(n) * recip_) >> 64);
    } else
#endif
    {
      level = n / width_;
      if (level >= levels_) level = levels_ - 1;
    }
    // Saturating output: a base/stride near the numeric edge must not
    // wrap a low-priority band into rank 0 (the highest priority). The
    // 64-bit sum cannot itself overflow (all three factors < 2^32).
    const std::uint64_t out =
        static_cast<std::uint64_t>(base_) + level * stride_;
    return out > kMaxRank ? kMaxRank : static_cast<Rank>(out);
  }

  /// Lowest / highest rank apply() can produce (worst-case analysis);
  /// saturating, matching apply().
  Rank out_min() const { return base_; }
  Rank out_max() const {
    if (levels_ == 0) return kMaxRank;  // identity passes any rank through
    const std::uint64_t out =
        static_cast<std::uint64_t>(base_) +
        static_cast<std::uint64_t>(levels_ - 1) * stride_;
    return out > kMaxRank ? kMaxRank : static_cast<Rank>(out);
  }

  sched::RankBounds input_bounds() const { return in_; }
  std::uint32_t levels() const { return levels_; }
  Rank base() const { return base_; }
  std::uint32_t stride() const { return stride_; }

  std::string to_string() const;

  friend bool operator==(const RankTransform& a, const RankTransform& b) {
    return a.in_.min == b.in_.min && a.in_.max == b.in_.max &&
           a.levels_ == b.levels_ && a.base_ == b.base_ &&
           a.stride_ == b.stride_;
  }

 private:
  sched::RankBounds in_{0, kMaxRank};
  std::uint32_t levels_ = 0;  ///< 0 = identity
  Rank base_ = 0;
  std::uint32_t stride_ = 1;
  /// Derived from in_/levels_ by the constructor (not part of identity).
  std::uint64_t width_ = 1;   ///< in_.max - in_.min + 1
  std::uint64_t recip_ = 0;   ///< ceil(2^64 / width_); 0 = divide instead
};

/// Distribution-aware (quantile) normalization: L-1 sorted thresholds
/// splitting the input rank axis into L equal-probability levels of the
/// tenant's EMPIRICAL rank distribution (paper §5: transformation
/// functions computed from "the distribution of the latest packets").
/// Monotone by construction; realizable as a range/TCAM table.
class BreakpointTransform {
 public:
  BreakpointTransform() = default;

  /// Explicit steps: `thresholds[i]` is the smallest input rank mapped
  /// to level i+1 (level 0 below thresholds[0]); must be sorted
  /// strictly ascending. Output = base + level.
  BreakpointTransform(std::vector<Rank> thresholds, Rank base);

  /// Build from empirical samples (need not be sorted; non-empty):
  /// each distinct observed rank maps to the level of its MIDPOINT CDF
  /// position, floor(cdf_mid * levels). Uniformly-used ranges spread
  /// evenly across the band; a point mass lands mid-band — fair in
  /// expectation against any peer distribution.
  static BreakpointTransform from_samples(std::vector<Rank> samples,
                                          std::uint32_t levels, Rank base);

  Rank apply(Rank r) const;

  Rank out_min() const;
  Rank out_max() const;
  /// Nominal level count of the band this transform targets.
  std::uint32_t levels() const { return levels_; }
  std::size_t steps() const { return from_.size(); }

 private:
  // Parallel arrays: ranks >= from_[i] (and < from_[i+1]) map to
  // level_[i]; ranks below from_[0] map to level_[0].
  std::vector<Rank> from_;
  std::vector<Rank> level_;
  Rank base_ = 0;
  std::uint32_t levels_ = 1;
};

/// A match-action-table realization of a RankTransform: the form a
/// programmable data plane would actually install (one exact-match entry
/// per input rank). Only materializable for bounded input ranges.
class TableTransform {
 public:
  /// Build from a closed-form transform; input width must be <=
  /// `max_entries` (hardware table size).
  static TableTransform compile(const RankTransform& t,
                                std::size_t max_entries = 1 << 20);

  Rank apply(Rank r) const;
  std::size_t entries() const { return table_.size(); }
  Rank in_min() const { return in_min_; }

 private:
  Rank in_min_ = 0;
  std::vector<Rank> table_;  ///< table_[r - in_min_] = output rank
};

}  // namespace qv::qvisor
