// Hierarchical policy expressions (paper §5, "Increasing specification
// expressivity": PIFO trees and richer operator specifications).
//
// The flat §3.1 language is extended with parentheses and optional
// weights, giving a full expression tree:
//
//   expr  := pref  (">>" pref)*          lowest precedence, isolation
//   pref  := share (">"  share)*         best-effort preference
//   share := term  ("+"  term)*          (weighted) fair sharing
//   term  := atom ["*" weight]
//   atom  := tenant | "(" expr ")"
//
// "(T1 >> T2) + T3 * 2" — the pair {T1 strictly above T2} shares the
// link with T3, with T3 entitled to 2x the pair's bandwidth.
//
// A flat expression round-trips with the §3.1 OperatorPolicy; a nested
// one can be deployed EXACTLY on a PIFO-tree backend (hierarchy.hpp) or
// APPROXIMATELY flattened onto a single rank space, with the
// approximations reported.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qvisor/policy.hpp"

namespace qv::qvisor {

struct PolicyExpr {
  enum class Kind {
    kTenant,   ///< leaf
    kShare,    ///< '+' over children (weights apply)
    kPrefer,   ///< '>' over children (first = preferred)
    kIsolate,  ///< '>>' over children (first = strictly higher)
  };

  Kind kind = Kind::kTenant;
  std::string tenant;                ///< kTenant only
  std::vector<PolicyExpr> children;  ///< inner nodes
  double weight = 1.0;               ///< share entitlement of this term

  static PolicyExpr leaf(std::string name, double weight = 1.0);
  static PolicyExpr make(Kind kind, std::vector<PolicyExpr> children);

  bool is_leaf() const { return kind == Kind::kTenant; }

  /// All tenant names, left to right. Duplicates impossible post-parse.
  std::vector<std::string> tenant_names() const;

  /// Depth of the tree: a leaf is 1. Flat §3.1 policies have depth <= 4
  /// with strictly descending operator precedence on every path.
  std::size_t depth() const;

  /// Canonical text (fully parenthesized for nested sub-expressions,
  /// minimal otherwise). Parsing it yields an equal expression.
  std::string to_string() const;

  friend bool operator==(const PolicyExpr& a, const PolicyExpr& b);

 private:
  std::string to_string_prec(int parent_prec) const;
};

struct ExprParseResult {
  std::optional<PolicyExpr> expr;
  std::string error;
  std::size_t error_pos = 0;

  bool ok() const { return expr.has_value(); }
};

/// Parse the extended grammar. Tenant names as in parse_policy();
/// weights are positive decimals. Duplicate tenants are rejected.
ExprParseResult parse_policy_expr(const std::string& text);

/// Convert to the flat §3.1 OperatorPolicy when the expression respects
/// the natural precedence nesting (no parenthesized sub-structure that
/// the flat language cannot express, and no non-default weights).
/// Returns nullopt for truly hierarchical expressions.
std::optional<OperatorPolicy> to_flat_policy(const PolicyExpr& expr);

/// Lift a flat policy into the expression form (always succeeds).
PolicyExpr from_flat_policy(const OperatorPolicy& policy);

}  // namespace qv::qvisor
