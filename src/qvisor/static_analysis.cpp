#include "qvisor/static_analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace qv::qvisor {

bool AnalysisReport::has_violations() const {
  return std::any_of(findings.begin(), findings.end(), [](const auto& f) {
    return f.severity == CheckSeverity::kViolation;
  });
}

bool AnalysisReport::has_warnings() const {
  return std::any_of(findings.begin(), findings.end(), [](const auto& f) {
    return f.severity == CheckSeverity::kWarning;
  });
}

std::string AnalysisReport::to_string() const {
  std::ostringstream out;
  for (const auto& f : findings) {
    const char* sev = f.severity == CheckSeverity::kOk ? "OK"
                      : f.severity == CheckSeverity::kWarning ? "WARN"
                                                              : "FAIL";
    out << "[" << sev << "] " << f.check << ": " << f.message << "\n";
  }
  return out.str();
}

namespace {

void add(AnalysisReport& report, CheckSeverity sev, std::string check,
         std::string message) {
  report.findings.push_back(
      AnalysisFinding{sev, std::move(check), std::move(message)});
}

/// Iterate representative input ranks: exhaustive when the declared
/// range is small, edge-plus-samples otherwise.
std::vector<Rank> probe_points(const sched::RankBounds& b) {
  std::vector<Rank> points;
  const std::uint64_t width =
      static_cast<std::uint64_t>(b.max) - b.min + 1;
  if (width <= 4096) {
    points.reserve(width);
    for (std::uint64_t i = 0; i < width; ++i) {
      points.push_back(b.min + static_cast<Rank>(i));
    }
    return points;
  }
  constexpr std::uint64_t kSamples = 4096;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    points.push_back(b.min + static_cast<Rank>(i * (width - 1) /
                                               (kSamples - 1)));
  }
  return points;
}

}  // namespace

AnalysisReport StaticAnalyzer::analyze(
    const SynthesisPlan& plan,
    const std::vector<TenantSpec>& tenants) const {
  AnalysisReport report;
  std::map<TenantId, const TenantSpec*> by_id;
  for (const auto& spec : tenants) by_id[spec.id] = &spec;

  // --- tier-isolation ------------------------------------------------
  // Worst-case max output rank per tier vs min of the next tier.
  std::map<std::size_t, Rank> tier_max;
  std::map<std::size_t, Rank> tier_min;
  for (const auto& tp : plan.tenants) {
    const Rank lo = tp.transform.out_min();
    const Rank hi = tp.transform.out_max();
    auto [it_min, inserted_min] = tier_min.emplace(tp.tier, lo);
    if (!inserted_min) it_min->second = std::min(it_min->second, lo);
    auto [it_max, inserted_max] = tier_max.emplace(tp.tier, hi);
    if (!inserted_max) it_max->second = std::max(it_max->second, hi);
  }
  bool isolation_ok = true;
  for (const auto& [tier, hi] : tier_max) {
    const auto next = tier_min.find(tier + 1);
    if (next == tier_min.end()) continue;
    if (hi >= next->second) {
      isolation_ok = false;
      std::ostringstream msg;
      msg << "tier " << tier << " worst-case rank " << hi
          << " >= tier " << tier + 1 << " best-case rank "
          << next->second;
      add(report, CheckSeverity::kViolation, "tier-isolation", msg.str());
    }
  }
  if (isolation_ok && tier_max.size() > 1) {
    add(report, CheckSeverity::kOk, "tier-isolation",
        "all '>>' tiers occupy disjoint, ordered bands");
  }

  // --- range ----------------------------------------------------------
  bool range_ok = true;
  for (const auto& tp : plan.tenants) {
    if (tp.transform.out_max() >= plan.rank_space) {
      range_ok = false;
      std::ostringstream msg;
      msg << "tenant " << tp.name << " worst-case rank "
          << tp.transform.out_max() << " exceeds rank space "
          << plan.rank_space;
      add(report, CheckSeverity::kViolation, "range", msg.str());
    }
  }
  if (range_ok) {
    add(report, CheckSeverity::kOk, "range",
        "all transforms stay within the backend rank space");
  }

  // --- monotonicity ---------------------------------------------------
  bool mono_ok = true;
  for (const auto& tp : plan.tenants) {
    const auto spec_it = by_id.find(tp.tenant);
    const sched::RankBounds bounds = spec_it != by_id.end()
                                         ? spec_it->second->declared_bounds
                                         : tp.transform.input_bounds();
    const auto points = probe_points(bounds);
    Rank prev_out = 0;
    bool first = true;
    for (const Rank r : points) {
      const Rank out = tp.transform.apply(r);
      if (!first && out < prev_out) {
        mono_ok = false;
        std::ostringstream msg;
        msg << "tenant " << tp.name << ": transform not monotone at input "
            << r;
        add(report, CheckSeverity::kViolation, "monotonicity", msg.str());
        break;
      }
      prev_out = out;
      first = false;
    }
  }
  if (mono_ok) {
    add(report, CheckSeverity::kOk, "monotonicity",
        "every transform preserves intra-tenant scheduling order");
  }

  // --- preference (within-tier '>' ordering) --------------------------
  // Compare group band bases and report overlap.
  std::map<std::pair<std::size_t, std::size_t>, std::pair<Rank, Rank>>
      group_band;  // (tier, group) -> (min base, max out)
  for (const auto& tp : plan.tenants) {
    auto key = std::make_pair(tp.tier, tp.group);
    auto it = group_band.find(key);
    if (it == group_band.end()) {
      group_band.emplace(key, std::make_pair(tp.transform.out_min(),
                                             tp.transform.out_max()));
    } else {
      it->second.first = std::min(it->second.first, tp.transform.out_min());
      it->second.second = std::max(it->second.second, tp.transform.out_max());
    }
  }
  for (const auto& [key, band] : group_band) {
    const auto next = group_band.find({key.first, key.second + 1});
    if (next == group_band.end()) continue;
    if (band.first >= next->second.first) {
      std::ostringstream msg;
      msg << "tier " << key.first << ": group " << key.second
          << " base " << band.first << " not below group "
          << key.second + 1 << " base " << next->second.first;
      add(report, CheckSeverity::kViolation, "preference", msg.str());
    } else if (band.second >= next->second.first) {
      // Overlap is expected for '>' — report its size as information.
      std::ostringstream msg;
      msg << "tier " << key.first << ": groups " << key.second << " and "
          << key.second + 1 << " overlap by "
          << band.second - next->second.first + 1
          << " levels (best-effort preference, by design)";
      add(report, CheckSeverity::kWarning, "preference", msg.str());
    }
  }

  // --- sharing-alignment ----------------------------------------------
  std::map<std::pair<std::size_t, std::size_t>, std::vector<Rank>>
      group_widths;
  for (const auto& tp : plan.tenants) {
    group_widths[{tp.tier, tp.group}].push_back(
        tp.transform.out_max() - tp.transform.out_min());
  }
  bool share_ok = true;
  for (const auto& [key, widths] : group_widths) {
    if (widths.size() < 2) continue;
    const Rank first = widths.front();
    for (const Rank w : widths) {
      if (w != first) {
        share_ok = false;
        std::ostringstream msg;
        msg << "tier " << key.first << " group " << key.second
            << ": sharing tenants cover bands of different widths";
        add(report, CheckSeverity::kViolation, "sharing-alignment",
            msg.str());
        break;
      }
    }
  }
  if (share_ok) {
    add(report, CheckSeverity::kOk, "sharing-alignment",
        "all '+' groups normalize onto equal-width bands");
  }

  return report;
}

std::int64_t StaticAnalyzer::worst_case_overtake(
    const SynthesisPlan& plan, const std::string& upper_name,
    const std::string& lower_name) {
  const TenantPlan* upper = plan.find(upper_name);
  const TenantPlan* lower = plan.find(lower_name);
  if (upper == nullptr || lower == nullptr) return 0;
  // The lower tenant overtakes when its best (smallest) output rank
  // beats the upper tenant's worst (largest) output rank.
  const std::int64_t gap =
      static_cast<std::int64_t>(upper->transform.out_max()) -
      static_cast<std::int64_t>(lower->transform.out_min());
  return std::max<std::int64_t>(gap, 0);
}

}  // namespace qv::qvisor
