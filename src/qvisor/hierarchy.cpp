#include "qvisor/hierarchy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_map>

namespace qv::qvisor {

// --- tree compilation -----------------------------------------------------

TreeCompiler::TreeCompiler(double prefer_weight_ratio)
    : prefer_ratio_(prefer_weight_ratio) {
  assert(prefer_weight_ratio > 1.0);
}

namespace {

/// Recursively lower a PolicyExpr into a PifoTreeSpec node, assigning
/// leaf indices left to right.
sched::PifoTreeSpec::Node lower(const PolicyExpr& expr,
                                double prefer_ratio,
                                std::map<std::string, std::size_t>& leaf_of,
                                std::size_t& next_leaf,
                                std::vector<std::string>& notes) {
  sched::PifoTreeSpec::Node node;
  node.weight = expr.weight;
  switch (expr.kind) {
    case PolicyExpr::Kind::kTenant:
      node.policy = sched::PifoTreeSpec::NodePolicy::kLeaf;
      node.label = expr.tenant;
      leaf_of[expr.tenant] = next_leaf++;
      return node;
    case PolicyExpr::Kind::kIsolate:
      node.policy = sched::PifoTreeSpec::NodePolicy::kStrict;
      node.label = "isolate";
      break;
    case PolicyExpr::Kind::kShare:
      node.policy = sched::PifoTreeSpec::NodePolicy::kWfq;
      node.label = "share";
      break;
    case PolicyExpr::Kind::kPrefer: {
      node.policy = sched::PifoTreeSpec::NodePolicy::kWfq;
      node.label = "prefer";
      std::ostringstream note;
      note << "'>' realized as weighted sharing with ratio "
           << prefer_ratio << " per step (best-effort preference)";
      notes.push_back(note.str());
      break;
    }
  }
  for (const auto& child : expr.children) {
    node.children.push_back(
        lower(child, prefer_ratio, leaf_of, next_leaf, notes));
  }
  if (expr.kind == PolicyExpr::Kind::kPrefer) {
    // Geometric weights: earlier children preferred.
    const std::size_t n = node.children.size();
    for (std::size_t i = 0; i < n; ++i) {
      node.children[i].weight *=
          std::pow(prefer_ratio, static_cast<double>(n - 1 - i));
    }
  }
  return node;
}

}  // namespace

TreeCompileResult TreeCompiler::compile(
    const PolicyExpr& expr, const std::vector<TenantSpec>& tenants) const {
  TreeCompileResult result;

  const auto names = expr.tenant_names();
  std::set<std::string> in_expr(names.begin(), names.end());
  std::set<std::string> in_specs;
  for (const auto& spec : tenants) in_specs.insert(spec.name);
  for (const auto& name : names) {
    if (!in_specs.count(name)) {
      result.error = "policy mentions unknown tenant: " + name;
      return result;
    }
  }
  for (const auto& spec : tenants) {
    if (!in_expr.count(spec.name)) {
      result.error = "tenant not mentioned in policy: " + spec.name;
      return result;
    }
  }

  sched::PifoTreeSpec spec;
  std::size_t next_leaf = 0;
  spec.root =
      lower(expr, prefer_ratio_, result.leaf_of, next_leaf, result.notes);
  result.notes.push_back("hierarchy deployed exactly on a PIFO tree with " +
                         std::to_string(next_leaf) + " leaves");
  result.spec = std::move(spec);
  return result;
}

std::unique_ptr<sched::Scheduler> make_tree_scheduler(
    const TreeCompileResult& compiled,
    const std::vector<TenantSpec>& tenants, std::int64_t buffer_bytes) {
  assert(compiled.ok());
  // Dense tenant-id -> leaf map for the per-packet classifier.
  std::unordered_map<TenantId, std::size_t> leaf_by_id;
  for (const auto& spec : tenants) {
    const auto it = compiled.leaf_of.find(spec.name);
    if (it != compiled.leaf_of.end()) leaf_by_id[spec.id] = it->second;
  }
  const std::size_t fallback = compiled.spec->leaf_count() - 1;
  auto classify = [leaf_by_id, fallback](const Packet& p) -> std::size_t {
    const auto it = leaf_by_id.find(p.tenant);
    return it == leaf_by_id.end() ? fallback : it->second;
  };
  return std::make_unique<sched::PifoTreeQueue>(*compiled.spec,
                                                std::move(classify),
                                                buffer_bytes);
}

// --- flattening -------------------------------------------------------------

namespace {

struct FlattenContext {
  const std::unordered_map<std::string, const TenantSpec*>& specs;
  std::uint32_t levels;
  std::uint32_t bias;
  std::vector<TenantPlan>& out;
  std::vector<std::string>& approximations;
};

/// Allocate `expr` into the band starting at `base`; returns the band
/// width consumed. `depth_tier` tracks the top-level isolate child the
/// subtree belongs to (for TenantPlan::tier / tier_bands).
Rank allocate(const PolicyExpr& expr, Rank base, std::size_t tier,
              FlattenContext& ctx) {
  switch (expr.kind) {
    case PolicyExpr::Kind::kTenant: {
      const TenantSpec& spec = *ctx.specs.at(expr.tenant);
      TenantPlan plan;
      plan.tenant = spec.id;
      plan.name = spec.name;
      plan.tier = tier;
      plan.transform =
          RankTransform(spec.declared_bounds, ctx.levels, base);
      ctx.out.push_back(std::move(plan));
      if (expr.weight != 1.0) {
        ctx.approximations.push_back(
            "weight of tenant '" + expr.tenant +
            "' ignored by flattening (single PIFO cannot weight shares; "
            "deploy on a PIFO tree to honour it)");
      }
      return ctx.levels;
    }
    case PolicyExpr::Kind::kIsolate: {
      Rank offset = 0;
      for (const auto& child : expr.children) {
        offset += allocate(child, base + offset, tier, ctx);
      }
      return offset;
    }
    case PolicyExpr::Kind::kPrefer: {
      Rank width = 0;
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        const Rank child_base =
            base + ctx.bias * static_cast<Rank>(i);
        const Rank child_width =
            allocate(expr.children[i], child_base, tier, ctx);
        width = std::max(width,
                         ctx.bias * static_cast<Rank>(i) + child_width);
      }
      return width;
    }
    case PolicyExpr::Kind::kShare: {
      Rank width = 0;
      bool nested = false;
      for (const auto& child : expr.children) {
        width = std::max(width, allocate(child, base, tier, ctx));
        if (!child.is_leaf()) nested = true;
      }
      if (nested) {
        ctx.approximations.push_back(
            "nested structure inside a '+' group flattened onto one "
            "shared band: its internal ordering now competes with the "
            "other sharers' ranks instead of being served as a unit");
      }
      return width;
    }
  }
  return 0;
}

/// Width the allocation would take, without emitting plans.
Rank dry_run_width(const PolicyExpr& expr, std::uint32_t levels,
                   std::uint32_t bias,
                   const std::unordered_map<std::string, const TenantSpec*>&
                       specs) {
  std::vector<TenantPlan> scratch;
  std::vector<std::string> notes;
  FlattenContext ctx{specs, levels, bias, scratch, notes};
  return allocate(expr, 0, 0, ctx);
}

}  // namespace

FlattenResult flatten_to_plan(const PolicyExpr& expr,
                              const std::vector<TenantSpec>& tenants,
                              const SynthesizerConfig& config) {
  FlattenResult result;

  std::unordered_map<std::string, const TenantSpec*> specs;
  for (const auto& spec : tenants) specs[spec.name] = &spec;
  for (const auto& name : expr.tenant_names()) {
    if (!specs.count(name)) {
      result.error = "policy mentions unknown tenant: " + name;
      return result;
    }
  }

  std::uint32_t levels = std::max<std::uint32_t>(config.levels_per_group, 1);
  const auto bias_for = [&](std::uint32_t lv) {
    return config.pref_bias != 0 ? config.pref_bias
                                 : std::max<std::uint32_t>(lv / 4, 1);
  };
  // Shrink quantization until the layout fits the rank space.
  while (levels > 1 &&
         dry_run_width(expr, levels, bias_for(levels), specs) >
             config.rank_space) {
    levels /= 2;
  }
  if (dry_run_width(expr, levels, bias_for(levels), specs) >
      config.rank_space) {
    result.error = "hierarchical policy does not fit the rank space";
    return result;
  }
  if (levels != std::max<std::uint32_t>(config.levels_per_group, 1)) {
    result.approximations.push_back(
        "quantization degraded to " + std::to_string(levels) +
        " levels per band to fit the rank space");
  }

  SynthesisPlan plan;
  plan.rank_space = config.rank_space;

  // Top-level isolate children become the plan's tiers (used by the
  // strict-priority backend's dedicated-queue split).
  std::vector<const PolicyExpr*> tiers;
  if (expr.kind == PolicyExpr::Kind::kIsolate) {
    for (const auto& child : expr.children) tiers.push_back(&child);
  } else {
    tiers.push_back(&expr);
  }
  Rank base = 0;
  FlattenContext ctx{specs, levels, bias_for(levels), plan.tenants,
                     result.approximations};
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const Rank width = allocate(*tiers[t], base, t, ctx);
    plan.tier_bands.push_back(TierBand{base, base + width - 1});
    base += width;
  }
  plan.degraded = !result.approximations.empty();
  plan.notes = result.approximations;
  result.plan = std::move(plan);
  return result;
}

}  // namespace qv::qvisor
