#include "qvisor/transform.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace qv::qvisor {

RankTransform::RankTransform(sched::RankBounds in, std::uint32_t levels,
                             Rank base, std::uint32_t stride)
    : in_(in), levels_(levels), base_(base), stride_(stride) {
  assert(in.min <= in.max);
  assert(levels >= 1);
  assert(stride >= 1);
  width_ = static_cast<std::uint64_t>(in_.max) - in_.min + 1;
#if defined(__SIZEOF_INT128__)
  // Fold the per-packet division into a multiply-high by the round-up
  // reciprocal (Granlund–Montgomery): with recip = ceil(2^64 / width),
  // (n * recip) >> 64 == floor(n / width) for every n < width * levels
  // as long as width^2 * levels <= 2^64 (the approximation error
  // n * (recip*width - 2^64) stays below 2^64). Wider configurations
  // keep the exact divide.
  const unsigned __int128 two64 = static_cast<unsigned __int128>(1) << 64;
  if (width_ > 1 &&
      static_cast<unsigned __int128>(width_) * width_ * levels_ <= two64) {
    recip_ = static_cast<std::uint64_t>((two64 + width_ - 1) / width_);
  }
#endif
}

std::string RankTransform::to_string() const {
  if (levels_ == 0) return "identity";
  std::ostringstream out;
  out << "[" << in_.min << "," << in_.max << "] -> " << levels_
      << " levels @ base " << base_;
  if (stride_ != 1) out << " stride " << stride_;
  return out.str();
}

BreakpointTransform::BreakpointTransform(std::vector<Rank> thresholds,
                                         Rank base)
    : base_(base) {
  assert(std::is_sorted(thresholds.begin(), thresholds.end()));
  from_.reserve(thresholds.size() + 1);
  level_.reserve(thresholds.size() + 1);
  from_.push_back(0);
  level_.push_back(0);
  Rank level = 1;
  for (const Rank t : thresholds) {
    assert(t >= from_.back());
    from_.push_back(t);
    level_.push_back(level++);
  }
  levels_ = static_cast<std::uint32_t>(thresholds.size()) + 1;
}

BreakpointTransform BreakpointTransform::from_samples(
    std::vector<Rank> samples, std::uint32_t levels, Rank base) {
  assert(!samples.empty());
  assert(levels >= 1);
  std::sort(samples.begin(), samples.end());
  BreakpointTransform out;
  out.base_ = base;
  out.levels_ = levels;
  const std::size_t n = samples.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && samples[j + 1] == samples[i]) ++j;
    // Midpoint CDF position of this distinct value.
    const double mid =
        (static_cast<double>(i) + static_cast<double>(j) + 1.0) / 2.0;
    const auto level = static_cast<Rank>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(mid / static_cast<double>(n) *
                                   static_cast<double>(levels)),
        levels - 1));
    if (out.level_.empty() || level != out.level_.back()) {
      out.from_.push_back(samples[i]);
      out.level_.push_back(level);
    }
    i = j + 1;
  }
  return out;
}

namespace {

// Saturating band offset: like RankTransform::apply, a base near the
// numeric edge must clamp to kMaxRank, never wrap into high priority.
Rank saturating_add(Rank base, Rank level) {
  const std::uint64_t out =
      static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(level);
  return out > kMaxRank ? kMaxRank : static_cast<Rank>(out);
}

}  // namespace

Rank BreakpointTransform::apply(Rank r) const {
  if (from_.empty()) return base_;
  // Last step with from_ <= r; ranks below the first step share its
  // level (unseen small ranks are at least as urgent as the smallest
  // observed one).
  const auto it = std::upper_bound(from_.begin(), from_.end(), r);
  const auto idx = it == from_.begin()
                       ? std::size_t{0}
                       : static_cast<std::size_t>(
                             std::distance(from_.begin(), it) - 1);
  return saturating_add(base_, level_[idx]);
}

Rank BreakpointTransform::out_min() const {
  return saturating_add(base_, level_.empty() ? 0 : level_.front());
}

Rank BreakpointTransform::out_max() const {
  return saturating_add(base_, level_.empty() ? 0 : level_.back());
}

TableTransform TableTransform::compile(const RankTransform& t,
                                       std::size_t max_entries) {
  const auto bounds = t.input_bounds();
  const std::uint64_t width =
      static_cast<std::uint64_t>(bounds.max) - bounds.min + 1;
  if (width > max_entries) {
    throw std::invalid_argument(
        "TableTransform: input range (" + std::to_string(width) +
        ") exceeds table capacity (" + std::to_string(max_entries) + ")");
  }
  TableTransform out;
  out.in_min_ = bounds.min;
  out.table_.resize(width);
  for (std::uint64_t i = 0; i < width; ++i) {
    out.table_[i] = t.apply(bounds.min + static_cast<Rank>(i));
  }
  return out;
}

Rank TableTransform::apply(Rank r) const {
  // Out-of-range inputs clamp to the edge entries, mirroring the
  // closed-form transform's clamp.
  if (r < in_min_) return table_.front();
  const std::uint64_t idx = static_cast<std::uint64_t>(r) - in_min_;
  if (idx >= table_.size()) return table_.back();
  return table_[idx];
}

}  // namespace qv::qvisor
