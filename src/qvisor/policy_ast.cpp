#include "qvisor/policy_ast.hpp"

#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

namespace qv::qvisor {

PolicyExpr PolicyExpr::leaf(std::string name, double weight) {
  PolicyExpr e;
  e.kind = Kind::kTenant;
  e.tenant = std::move(name);
  e.weight = weight;
  return e;
}

PolicyExpr PolicyExpr::make(Kind kind, std::vector<PolicyExpr> children) {
  PolicyExpr e;
  e.kind = kind;
  e.children = std::move(children);
  return e;
}

std::vector<std::string> PolicyExpr::tenant_names() const {
  std::vector<std::string> out;
  if (is_leaf()) {
    out.push_back(tenant);
    return out;
  }
  for (const auto& child : children) {
    for (auto& name : child.tenant_names()) out.push_back(std::move(name));
  }
  return out;
}

std::size_t PolicyExpr::depth() const {
  if (is_leaf()) return 1;
  std::size_t deepest = 0;
  for (const auto& child : children) {
    deepest = std::max(deepest, child.depth());
  }
  return deepest + 1;
}

namespace {

int precedence(PolicyExpr::Kind kind) {
  switch (kind) {
    case PolicyExpr::Kind::kIsolate:
      return 0;
    case PolicyExpr::Kind::kPrefer:
      return 1;
    case PolicyExpr::Kind::kShare:
      return 2;
    case PolicyExpr::Kind::kTenant:
      return 3;
  }
  return 3;
}

const char* op_text(PolicyExpr::Kind kind) {
  switch (kind) {
    case PolicyExpr::Kind::kIsolate:
      return " >> ";
    case PolicyExpr::Kind::kPrefer:
      return " > ";
    case PolicyExpr::Kind::kShare:
      return " + ";
    case PolicyExpr::Kind::kTenant:
      return "";
  }
  return "";
}

std::string weight_suffix(double weight) {
  if (weight == 1.0) return "";
  std::ostringstream out;
  out << " * " << weight;
  return out.str();
}

}  // namespace

std::string PolicyExpr::to_string_prec(int parent_prec) const {
  if (is_leaf()) return tenant + weight_suffix(weight);
  std::string body;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i > 0) body += op_text(kind);
    body += children[i].to_string_prec(precedence(kind));
  }
  // `<=`, not `<`: a same-kind nested child ("(A + B) + C") is a
  // distinct policy from the flat n-ary form ("A + B + C" splits the
  // link three ways; the nested form gives the pair one joint share),
  // so it must keep its parentheses to reparse to the same tree.
  const bool needs_parens =
      precedence(kind) <= parent_prec || weight != 1.0;
  if (needs_parens) return "(" + body + ")" + weight_suffix(weight);
  return body;
}

std::string PolicyExpr::to_string() const { return to_string_prec(-1); }

bool operator==(const PolicyExpr& a, const PolicyExpr& b) {
  return a.kind == b.kind && a.tenant == b.tenant &&
         a.weight == b.weight && a.children == b.children;
}

// --- parser -----------------------------------------------------------

namespace {

struct ExprLexer {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  char peek_char() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  /// Returns ">>", ">", "+", "*", "(", ")", an identifier, a number, or
  /// "" on error.
  std::string next() {
    skip_ws();
    if (pos >= text.size()) return "";
    const char c = text[pos];
    if (c == '>') {
      if (pos + 1 < text.size() && text[pos + 1] == '>') {
        pos += 2;
        return ">>";
      }
      ++pos;
      return ">";
    }
    if (c == '+' || c == '*' || c == '(' || c == ')') {
      ++pos;
      return std::string(1, c);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      const std::size_t start = pos;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '.')) {
        ++pos;
      }
      return text.substr(start, pos - start);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos;
      while (pos < text.size()) {
        const char d = text[pos];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '-') {
          ++pos;
        } else {
          break;
        }
      }
      return text.substr(start, pos - start);
    }
    return "";
  }

  std::string peek() {
    const std::size_t saved = pos;
    std::string tok = next();
    pos = saved;
    return tok;
  }
};

class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : lex_{text} {}

  ExprParseResult parse() {
    if (lex_.eof()) return fail("empty policy expression");
    auto expr = parse_isolate();
    if (!expr) return result_;
    if (!lex_.eof()) return fail("unexpected trailing input");
    ExprParseResult r;
    r.expr = std::move(expr);
    return r;
  }

 private:
  ExprParseResult fail(std::string message) {
    result_.expr.reset();
    result_.error = std::move(message);
    result_.error_pos = lex_.pos;
    failed_ = true;
    return result_;
  }

  /// Collapse single-child inner nodes.
  static PolicyExpr collapse(PolicyExpr::Kind kind,
                             std::vector<PolicyExpr> children) {
    if (children.size() == 1) return std::move(children[0]);
    return PolicyExpr::make(kind, std::move(children));
  }

  std::optional<PolicyExpr> parse_isolate() {
    std::vector<PolicyExpr> children;
    auto first = parse_prefer();
    if (!first) return std::nullopt;
    children.push_back(std::move(*first));
    while (lex_.peek() == ">>") {
      lex_.next();
      auto next = parse_prefer();
      if (!next) return std::nullopt;
      children.push_back(std::move(*next));
    }
    return collapse(PolicyExpr::Kind::kIsolate, std::move(children));
  }

  std::optional<PolicyExpr> parse_prefer() {
    std::vector<PolicyExpr> children;
    auto first = parse_share();
    if (!first) return std::nullopt;
    children.push_back(std::move(*first));
    while (lex_.peek() == ">") {
      lex_.next();
      auto next = parse_share();
      if (!next) return std::nullopt;
      children.push_back(std::move(*next));
    }
    return collapse(PolicyExpr::Kind::kPrefer, std::move(children));
  }

  std::optional<PolicyExpr> parse_share() {
    std::vector<PolicyExpr> children;
    auto first = parse_term();
    if (!first) return std::nullopt;
    children.push_back(std::move(*first));
    while (lex_.peek() == "+") {
      lex_.next();
      auto next = parse_term();
      if (!next) return std::nullopt;
      children.push_back(std::move(*next));
    }
    return collapse(PolicyExpr::Kind::kShare, std::move(children));
  }

  std::optional<PolicyExpr> parse_term() {
    auto atom = parse_atom();
    if (!atom) return std::nullopt;
    if (lex_.peek() == "*") {
      lex_.next();
      const std::size_t num_pos = lex_.pos;
      const std::string num = lex_.next();
      char* end = nullptr;
      const double w = std::strtod(num.c_str(), &end);
      if (num.empty() || end != num.c_str() + num.size() || w <= 0 ||
          !std::isfinite(w)) {
        fail("expected positive weight after '*'");
        result_.error_pos = num_pos;
        return std::nullopt;
      }
      atom->weight = w;
    }
    return atom;
  }

  std::optional<PolicyExpr> parse_atom() {
    const std::size_t tok_pos = lex_.pos;
    const std::string tok = lex_.next();
    if (tok == "(") {
      auto inner = parse_isolate();
      if (!inner) return std::nullopt;
      if (lex_.next() != ")") {
        fail("expected ')'");
        return std::nullopt;
      }
      return inner;
    }
    if (tok.empty() || tok == ">" || tok == ">>" || tok == "+" ||
        tok == "*" || tok == ")" ||
        std::isdigit(static_cast<unsigned char>(tok[0]))) {
      fail("expected tenant name or '('");
      result_.error_pos = tok_pos;
      return std::nullopt;
    }
    if (!seen_.insert(tok).second) {
      fail("tenant '" + tok + "' appears more than once");
      result_.error_pos = tok_pos;
      return std::nullopt;
    }
    return PolicyExpr::leaf(tok);
  }

  ExprLexer lex_;
  ExprParseResult result_;
  std::set<std::string> seen_;
  bool failed_ = false;
};

}  // namespace

ExprParseResult parse_policy_expr(const std::string& text) {
  return ExprParser(text).parse();
}

// --- flat conversions ----------------------------------------------------

namespace {

bool default_weights(const PolicyExpr& e) {
  if (e.weight != 1.0) return false;
  for (const auto& child : e.children) {
    if (!default_weights(child)) return false;
  }
  return true;
}

}  // namespace

std::optional<OperatorPolicy> to_flat_policy(const PolicyExpr& expr) {
  if (!default_weights(expr)) return std::nullopt;

  // Normalize the expression into the three fixed strata of the flat
  // grammar: isolate over prefer over share over tenants.
  const auto as_group =
      [](const PolicyExpr& e) -> std::optional<SharingGroup> {
    SharingGroup group;
    if (e.is_leaf()) {
      group.tenants.push_back(e.tenant);
      return group;
    }
    if (e.kind != PolicyExpr::Kind::kShare) return std::nullopt;
    for (const auto& child : e.children) {
      if (!child.is_leaf()) return std::nullopt;
      group.tenants.push_back(child.tenant);
    }
    return group;
  };
  const auto as_tier =
      [&](const PolicyExpr& e) -> std::optional<PriorityTier> {
    PriorityTier tier;
    if (auto group = as_group(e)) {
      tier.groups.push_back(std::move(*group));
      return tier;
    }
    if (e.kind != PolicyExpr::Kind::kPrefer) return std::nullopt;
    for (const auto& child : e.children) {
      auto group = as_group(child);
      if (!group) return std::nullopt;
      tier.groups.push_back(std::move(*group));
    }
    return tier;
  };

  std::vector<PriorityTier> tiers;
  if (auto tier = as_tier(expr)) {
    tiers.push_back(std::move(*tier));
    return OperatorPolicy(std::move(tiers));
  }
  if (expr.kind != PolicyExpr::Kind::kIsolate) return std::nullopt;
  for (const auto& child : expr.children) {
    auto tier = as_tier(child);
    if (!tier) return std::nullopt;
    tiers.push_back(std::move(*tier));
  }
  return OperatorPolicy(std::move(tiers));
}

PolicyExpr from_flat_policy(const OperatorPolicy& policy) {
  std::vector<PolicyExpr> tiers;
  for (const auto& tier : policy.tiers()) {
    std::vector<PolicyExpr> groups;
    for (const auto& group : tier.groups) {
      std::vector<PolicyExpr> tenants;
      for (const auto& name : group.tenants) {
        tenants.push_back(PolicyExpr::leaf(name));
      }
      groups.push_back(tenants.size() == 1
                           ? std::move(tenants[0])
                           : PolicyExpr::make(PolicyExpr::Kind::kShare,
                                              std::move(tenants)));
    }
    tiers.push_back(groups.size() == 1
                        ? std::move(groups[0])
                        : PolicyExpr::make(PolicyExpr::Kind::kPrefer,
                                           std::move(groups)));
  }
  return tiers.size() == 1 ? std::move(tiers[0])
                           : PolicyExpr::make(PolicyExpr::Kind::kIsolate,
                                              std::move(tiers));
}

}  // namespace qv::qvisor
