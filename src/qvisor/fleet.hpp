// Network-wide scheduling virtualization (paper §5, "Cross-device
// virtualization": "mechanisms to orchestrate the scheduling
// virtualization from a network-wide perspective").
//
// A Fleet owns one Hypervisor per switch and keeps them configured
// identically: tenants and the operator policy are fleet-level state;
// compile() is all-or-nothing (a plan that fails static analysis on
// the common configuration deploys nowhere); per-tenant observations
// aggregate across every switch so the fleet-level runtime controller
// reacts to a tenant that is active ANYWHERE in the network.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qvisor/qvisor.hpp"
#include "qvisor/runtime.hpp"

namespace qv::qvisor {

class Fleet {
 public:
  /// All switches share the tenant set, policy, backend and config.
  Fleet(std::vector<TenantSpec> tenants, OperatorPolicy policy,
        BackendPtr backend, SynthesizerConfig config = {});

  /// Register a switch; returns its index. Must be called before
  /// compile() deploys anything to it.
  std::size_t add_switch(const std::string& name);

  std::size_t switch_count() const { return switches_.size(); }
  Hypervisor& hypervisor(std::size_t switch_index);
  const std::string& switch_name(std::size_t switch_index) const;

  /// Compile the shared configuration and deploy to EVERY switch.
  /// All-or-nothing: on any failure no switch's plan changes.
  Hypervisor::CompileResult compile();

  /// Compile for a subset of tenants on every switch (runtime path).
  Hypervisor::CompileResult compile_for(
      const std::vector<std::string>& active_names);

  /// Make a port scheduler on a given switch.
  std::unique_ptr<sched::Scheduler> make_port_scheduler(
      std::size_t switch_index);

  /// Fleet-wide per-tenant packet counts.
  std::unordered_map<TenantId, std::uint64_t> per_tenant_packets() const;

  /// Most recent observation time of `tenant` on ANY switch; nullopt if
  /// never seen.
  std::optional<TimeNs> last_seen(TenantId tenant) const;

  /// Tenants judged adversarial on at least one switch.
  std::vector<TenantId> adversarial() const;

  /// Update the shared policy / tenant set (applies on next compile).
  void set_policy(OperatorPolicy policy);
  void upsert_tenant(TenantSpec spec);

  const std::vector<TenantSpec>& tenants() const { return tenants_; }
  const OperatorPolicy& policy() const { return policy_; }

  /// Fleet-level aggregation: per-switch hypervisor metrics under
  /// "<prefix>.<switch-name>", plus fleet-wide per-tenant packet
  /// gauges under "<prefix>.fleet.tenant.<name>".
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  struct Member {
    std::string name;
    std::unique_ptr<Hypervisor> hv;
  };

  std::vector<TenantSpec> tenants_;
  OperatorPolicy policy_;
  BackendPtr backend_;
  SynthesizerConfig config_;
  std::vector<Member> switches_;
};

/// Fleet-level runtime controller: like RuntimeController, but the
/// active set is "seen recently on ANY switch" and re-synthesis
/// deploys fleet-wide.
class FleetController {
 public:
  FleetController(Fleet& fleet, RuntimeConfig config = {});

  bool tick(TimeNs now);

  const std::vector<std::string>& active_tenants() const { return active_; }
  std::uint64_t adaptations() const { return adaptations_; }

 private:
  std::vector<std::string> compute_active(TimeNs now) const;

  Fleet& fleet_;
  RuntimeConfig config_;
  std::vector<std::string> active_;
  TimeNs last_reconfig_ = -1;
  std::uint64_t adaptations_ = 0;
};

}  // namespace qv::qvisor
