// Network-wide scheduling virtualization (paper §5, "Cross-device
// virtualization": "mechanisms to orchestrate the scheduling
// virtualization from a network-wide perspective").
//
// A Fleet owns one Hypervisor per switch and keeps them configured
// identically: tenants and the operator policy are fleet-level state;
// compile() is all-or-nothing (a plan that fails static analysis on
// the common configuration deploys nowhere); per-tenant observations
// aggregate across every switch so the fleet-level runtime controller
// reacts to a tenant that is active ANYWHERE in the network.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qvisor/qvisor.hpp"
#include "qvisor/runtime.hpp"

namespace qv::qvisor {

class Fleet {
 public:
  /// Injectable per-switch install failure: (switch index, epoch) ->
  /// reject?  Consulted for forward installs AND rollback pushes, so an
  /// unreachable switch stays dirty until reconcile() heals it.
  using InstallFault =
      std::function<bool(std::size_t switch_index, std::uint64_t epoch)>;

  /// All switches share the tenant set, policy, backend and config.
  Fleet(std::vector<TenantSpec> tenants, OperatorPolicy policy,
        BackendPtr backend, SynthesizerConfig config = {});

  /// Register a switch; returns its index. Must be called before
  /// compile() deploys anything to it.
  std::size_t add_switch(const std::string& name);

  std::size_t switch_count() const { return switches_.size(); }
  Hypervisor& hypervisor(std::size_t switch_index);
  const std::string& switch_name(std::size_t switch_index) const;

  /// Compile the shared configuration and deploy to EVERY switch.
  /// All-or-nothing by mechanism: the deploy runs as a two-phase
  /// commit at one fleet epoch, and a partial failure rolls every
  /// already-committed switch back to its last-known-good plan.
  Hypervisor::CompileResult compile();

  /// Compile for a subset of tenants on every switch (runtime path).
  /// `now` is only used to timestamp runtime trace spans; pass the
  /// simulated time when a tracer is attached.
  Hypervisor::CompileResult compile_for(
      const std::vector<std::string>& active_names, TimeNs now = -1);

  /// Deploy a group-compiled plan fleet-wide at one epoch (million-
  /// tenant control plane). Same two-phase mechanism as compile_for:
  /// a switch rejecting its install rolls every already-committed
  /// switch back, and the fleet never runs mixed epochs. When `delta`
  /// is given, compatible switches patch only the changed groups (the
  /// incremental re-synthesis path); incompatible ones full-install.
  /// Replaces any per-tenant committed configuration as the fleet's
  /// reconcile target. Returns false and fills `error` on failure.
  bool commit_group_plan(
      std::shared_ptr<const control::CompiledGroupPlan> plan,
      const control::GroupPlanDelta* delta = nullptr, TimeNs now = -1,
      std::string* error = nullptr);

  /// The group plan the fleet currently converges on (reconcile
  /// target); nullptr in per-tenant mode.
  const control::CompiledGroupPlan* committed_group_plan() const {
    return committed_group_.get();
  }

  // --- staged canary/wave commits (management-plane rollouts) -----------
  //
  // A staged rollout reserves ONE fleet epoch and installs it cohort by
  // cohort: stage_group_plan() -> commit_staged_to(canary) ->
  // commit_staged_to(wave) ... -> finalize_staged(). Until finalize,
  // committed_group_/committed_epoch_ still hold the last-known-good
  // plan — so abort_staged() needs no new state: switches that took a
  // wave are rolled back immediately where reachable, and reconcile()
  // (anti-entropy against LKG) is the backstop for the rest.

  /// Reserve a fleet epoch for `plan`. Fails if a rollout is already
  /// staged. When `delta` is given, wave installs use the incremental
  /// patch path on compatible switches.
  bool stage_group_plan(std::shared_ptr<const control::CompiledGroupPlan> plan,
                        const control::GroupPlanDelta* delta = nullptr,
                        std::string* error = nullptr);

  /// Two-phase install of the staged plan on `cohort` (switch indices).
  /// Switches already at the staged epoch are skipped, so retrying a
  /// failed wave is idempotent. On a rejected install, THIS wave's
  /// fresh commits are rolled back (earlier waves keep the staged
  /// epoch) and false is returned.
  bool commit_staged_to(const std::vector<std::size_t>& cohort,
                        TimeNs now = -1, std::string* error = nullptr);

  /// Promote the staged plan to the committed reconcile target. Fails
  /// unless EVERY switch runs the staged epoch (no mixed-version fleet
  /// can ever be finalized).
  bool finalize_staged(std::string* error = nullptr);

  /// Drop the staged rollout: roll reachable staged switches back to
  /// last-known-good now; unreachable ones stay dirty for reconcile().
  void abort_staged(TimeNs now = -1);

  bool has_staged() const { return staged_group_ != nullptr; }
  std::uint64_t staged_epoch() const { return staged_epoch_; }
  /// Switches currently running the staged epoch.
  std::size_t staged_switches() const;

  /// Anti-entropy: re-push the committed configuration to any switch
  /// whose epoch disagrees (failed rollback, agent reboot). Returns the
  /// number of switches healed; switches that still reject the install
  /// stay dirty for the next pass.
  std::size_t reconcile(TimeNs now = -1);

  /// True when every switch runs the committed epoch (vacuously true
  /// before the first successful deploy).
  bool epochs_consistent() const;

  void set_install_fault(InstallFault fault);

  /// Attach a tracer (not owned): install failures, rollbacks and
  /// reconciles become `runtime`-category events; also forwarded to
  /// every switch hypervisor's monitor.
  void set_tracer(obs::Tracer* tracer);

  std::uint64_t committed_epoch() const { return committed_epoch_; }
  std::uint64_t rollbacks() const { return rollbacks_; }
  std::uint64_t reconciles() const { return reconciles_; }
  std::uint64_t failed_installs() const { return failed_installs_; }

  /// Make a port scheduler on a given switch.
  std::unique_ptr<sched::Scheduler> make_port_scheduler(
      std::size_t switch_index);

  /// Fleet-wide per-tenant packet counts.
  std::unordered_map<TenantId, std::uint64_t> per_tenant_packets() const;

  /// Most recent observation time of `tenant` on ANY switch; nullopt if
  /// never seen.
  std::optional<TimeNs> last_seen(TenantId tenant) const;

  /// Tenants judged adversarial on at least one switch.
  std::vector<TenantId> adversarial() const;

  /// Degraded pass-through mode on EVERY switch (see
  /// Hypervisor::set_degraded); the fleet controller flips this when
  /// its retry budget runs out.
  void set_degraded(bool degraded);
  bool degraded() const { return degraded_; }

  /// Most recent bounds/rate violation of `tenant` on ANY switch, or
  /// -1 if it never violated anywhere (quarantine hysteresis input).
  TimeNs last_violation_at(TenantId tenant) const;

  /// Reset the tenant's monitor state on every switch (forgiveness).
  void reset_monitor(TenantId tenant);

  /// Update the shared policy / tenant set (applies on next compile).
  void set_policy(OperatorPolicy policy);
  void upsert_tenant(TenantSpec spec);

  /// Register a tenant contract (rate/burst/bounds) on EVERY switch —
  /// fleet-level state, replayed onto switches added later.
  void set_contract(const TenantContract& contract);

  /// Enable/disable the per-port admission guard on EVERY switch (see
  /// Hypervisor::set_admission); replayed onto switches added later.
  void set_admission(const AdmissionSettings& settings);
  const AdmissionSettings& admission_settings() const { return admission_; }

  const std::vector<TenantSpec>& tenants() const { return tenants_; }
  const OperatorPolicy& policy() const { return policy_; }

  /// Fleet-level aggregation: per-switch hypervisor metrics under
  /// "<prefix>.<switch-name>", plus fleet-wide per-tenant packet
  /// gauges under "<prefix>.fleet.tenant.<name>".
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  struct Member {
    std::string name;
    std::unique_ptr<Hypervisor> hv;
  };

  obs::Tracer* runtime_tracer() const {
    return tracer_ != nullptr &&
                   tracer_->enabled(obs::TraceCategory::kRuntime)
               ? tracer_
               : nullptr;
  }
  /// Re-wire member hv install-fault hooks from the fleet-level hook.
  void wire_install_fault(std::size_t switch_index);

  std::vector<TenantSpec> tenants_;
  OperatorPolicy policy_;
  BackendPtr backend_;
  SynthesizerConfig config_;
  std::vector<Member> switches_;

  InstallFault install_fault_;
  std::vector<TenantContract> contracts_;  ///< replayed onto new switches
  AdmissionSettings admission_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t epoch_counter_ = 0;   ///< epochs handed out (even failed)
  std::uint64_t committed_epoch_ = 0; ///< last fleet-wide success
  std::vector<std::string> committed_active_;
  /// Group-mode reconcile target; exclusive with committed_active_
  /// (per-tenant mode). One shared compiled plan serves every switch.
  std::shared_ptr<const control::CompiledGroupPlan> committed_group_;
  /// In-flight staged rollout (nullptr = none). Never the reconcile
  /// target: only finalize_staged() moves it into committed_group_.
  std::shared_ptr<const control::CompiledGroupPlan> staged_group_;
  std::optional<control::GroupPlanDelta> staged_delta_;
  std::uint64_t staged_epoch_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t reconciles_ = 0;
  std::uint64_t failed_installs_ = 0;
  bool degraded_ = false;
};

/// Fleet-level runtime controller: like RuntimeController, but the
/// active set is "seen recently on ANY switch", quarantine verdicts
/// aggregate across switches, and re-synthesis deploys fleet-wide
/// (two-phase, with the Fleet's rollback + reconcile machinery). The
/// self-healing behaviour mirrors RuntimeController: failed deploys
/// retry with capped exponential backoff, an exhausted retry budget
/// degrades every switch to pass-through ranks, and quarantined
/// tenants are forgiven after a clean window.
class FleetController {
 public:
  FleetController(Fleet& fleet, RuntimeConfig config = {});

  /// Anti-entropy first (heal switches that missed the committed
  /// epoch), then activity/quarantine evaluation and — if the tenant
  /// set changed or a retry is due — a fleet-wide redeploy. Returns
  /// true when a new plan was committed fleet-wide.
  bool tick(TimeNs now);

  const std::vector<std::string>& active_tenants() const { return active_; }
  std::uint64_t adaptations() const { return adaptations_; }
  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t degraded_entries() const { return degraded_entries_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t unquarantines() const { return unquarantines_; }
  bool degraded() const { return degraded_; }
  const RuntimeConfig& config() const { return config_; }

  /// Attach a tracer (not owned): forwarded to the fleet, plus
  /// controller-level retry/degraded/quarantine instants.
  void set_tracer(obs::Tracer* tracer);

  /// Publish adaptation counters as live registry views.
  void export_metrics(obs::Registry& reg, const std::string& prefix) const {
    reg.counter_view(prefix + ".adaptations", &adaptations_);
    reg.counter_view(prefix + ".quarantines", &quarantines_);
    reg.counter_view(prefix + ".retries", &retries_);
    reg.counter_view(prefix + ".degraded_entries", &degraded_entries_);
    reg.counter_view(prefix + ".recoveries", &recoveries_);
    reg.counter_view(prefix + ".unquarantines", &unquarantines_);
    reg.gauge(prefix + ".degraded",
              [this]() { return degraded_ ? 1.0 : 0.0; });
  }

 private:
  std::vector<std::string> compute_active(TimeNs now) const;
  void apply_hysteresis(TimeNs now);
  obs::Tracer* runtime_tracer() const {
    return tracer_ != nullptr &&
                   tracer_->enabled(obs::TraceCategory::kRuntime)
               ? tracer_
               : nullptr;
  }

  Fleet& fleet_;
  RuntimeConfig config_;
  std::vector<std::string> active_;
  std::vector<std::string> quarantined_;
  TimeNs last_reconfig_ = -1;
  std::uint64_t adaptations_ = 0;
  std::uint64_t quarantines_ = 0;
  obs::Tracer* tracer_ = nullptr;

  // Self-healing state (mirrors RuntimeController).
  int consecutive_failures_ = 0;
  TimeNs next_retry_at_ = -1;
  bool degraded_ = false;
  std::uint64_t retries_ = 0;
  std::uint64_t degraded_entries_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t unquarantines_ = 0;
};

}  // namespace qv::qvisor
