// Runtime adaptation (paper §2, Idea 2): "an event-driven controller
// could synthesize a new scheduling policy after the first packets of a
// new workload arrived, and deploy it into the data plane".
//
// The RuntimeController polls the hypervisor's per-tenant observations
// (driven by a simulator timer in experiments), derives the set of
// ACTIVE tenants, and re-compiles whenever that set changes — so when
// T1/T2 go quiet at the paper's t1 and T3 lights up (Fig. 2), T3's band
// expands to the full rank space automatically. Tenants the monitor
// judges adversarial are quarantined: demoted to a strictly-lowest
// tier before synthesis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "qvisor/qvisor.hpp"
#include "util/time.hpp"

namespace qv::qvisor {

struct RuntimeConfig {
  /// A tenant is active if it sent a packet within this window.
  TimeNs activity_window = milliseconds(10);

  /// Do not re-compile more often than this (data-plane churn guard).
  TimeNs min_reconfig_interval = milliseconds(1);

  /// Demote tenants the monitor flags as adversarial to a bottom tier.
  bool quarantine_adversarial = true;

  /// Replace declared rank bounds with observed ones when enough
  /// samples exist (paper §5 "optimizing configurations at runtime").
  bool tighten_bounds = false;
  std::size_t tighten_min_samples = 256;

  /// After each re-synthesis, replace range normalization with
  /// quantile normalization from live rank distributions (§5: compute
  /// transforms from "the distribution of the latest packets").
  bool quantile_normalization = false;
  std::size_t quantile_min_samples = 128;

  /// Self-healing: consecutive recompile failures tolerated before the
  /// controller gives up and degrades the data plane. Failed attempts
  /// are retried with exponential backoff (doubling from
  /// `retry_backoff`, capped at `retry_backoff_cap`) instead of the
  /// regular reconfig cadence.
  int retry_budget = 3;
  TimeNs retry_backoff = milliseconds(1);
  TimeNs retry_backoff_cap = milliseconds(64);

  /// Quarantine hysteresis: a quarantined tenant whose last violation
  /// is at least this long ago is forgiven (its monitor state resets,
  /// so the next tick lifts the jail tier). 0 = never release (legacy
  /// behaviour).
  TimeNs quarantine_clean_window = 0;
};

class RuntimeController {
 public:
  RuntimeController(Hypervisor& hv, RuntimeConfig config = {});

  /// Evaluate activity and (if needed) re-synthesize + install.
  /// Returns true when a new plan was deployed.
  bool tick(TimeNs now);

  const std::vector<std::string>& active_tenants() const { return active_; }
  std::uint64_t adaptations() const { return adaptations_; }
  std::uint64_t quarantines() const { return quarantines_; }
  /// Quantile-refinement installs (including refresh-only ticks).
  std::uint64_t refinements() const { return refinements_; }
  /// Recompile attempts re-issued after a failure (self-healing).
  std::uint64_t retries() const { return retries_; }
  /// Times the retry budget ran out and the data plane degraded.
  std::uint64_t degraded_entries() const { return degraded_entries_; }
  /// Times a later recompile succeeded and lifted degraded mode.
  std::uint64_t recoveries() const { return recoveries_; }
  /// Tenants forgiven after a clean window (quarantine hysteresis).
  std::uint64_t unquarantines() const { return unquarantines_; }
  /// True while the data plane runs degraded pass-through ranks.
  bool degraded() const { return degraded_; }
  const RuntimeConfig& config() const { return config_; }

  /// Attach a tracer (not owned): re-synthesis becomes a
  /// `runtime`-category span whose duration is the wall-clock cost of
  /// the recompile, and quarantine decisions become instants.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Publish adaptation counters as live registry views.
  void export_metrics(obs::Registry& reg, const std::string& prefix) const {
    reg.counter_view(prefix + ".adaptations", &adaptations_);
    reg.counter_view(prefix + ".quarantines", &quarantines_);
    reg.counter_view(prefix + ".refinements", &refinements_);
    reg.counter_view(prefix + ".retries", &retries_);
    reg.counter_view(prefix + ".degraded_entries", &degraded_entries_);
    reg.counter_view(prefix + ".recoveries", &recoveries_);
    reg.counter_view(prefix + ".unquarantines", &unquarantines_);
    reg.gauge(prefix + ".degraded",
              [this]() { return degraded_ ? 1.0 : 0.0; });
  }

 private:
  /// Active = observed within the window. Before any traffic at all,
  /// every tenant counts as active (the initial full plan).
  std::vector<std::string> compute_active(TimeNs now) const;

  /// Apply quantile refinement to the currently installed plan.
  /// Returns true if any tenant's normalization changed.
  bool refine_quantiles();

  /// Release quarantined tenants whose clean window elapsed (resets
  /// their monitor state so the verdict recomputes from scratch).
  void apply_hysteresis(TimeNs now);

  Hypervisor& hv_;
  RuntimeConfig config_;
  std::vector<std::string> active_;
  std::vector<std::string> quarantined_;
  TimeNs last_reconfig_ = -1;
  std::uint64_t adaptations_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t refinements_ = 0;
  obs::Tracer* tracer_ = nullptr;

  // Self-healing state: failure streak, next allowed retry time, and
  // whether the data plane is currently degraded.
  int consecutive_failures_ = 0;
  TimeNs next_retry_at_ = -1;
  bool degraded_ = false;
  std::uint64_t retries_ = 0;
  std::uint64_t degraded_entries_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t unquarantines_ = 0;
};

}  // namespace qv::qvisor
