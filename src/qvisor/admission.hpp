// Per-tenant admission guard (data-plane overload protection): the
// stage between the pre-processor's rank rewrite and the hardware
// scheduler that keeps a hostile tenant from starving everyone else.
//
// Three independent mechanisms, cheapest first:
//
//  * rate policing — an allocation-free token bucket per tenant
//    (bytes/s + burst, configured from the tenant contract). A flooder
//    is shaved back to its contracted rate at the first QVISOR hop.
//  * occupancy share cap — a hard per-tenant cap on the bytes a tenant
//    may hold in the port queue (a weighted share of the port buffer).
//    Backpressure lands on the tenant that overfills, never on its
//    neighbours.
//  * AIFO-style quantile admission on the TRANSFORMED rank (Yu et al.,
//    SIGCOMM'21, the paper's [41]): as a tenant approaches its share
//    cap, only the lowest-quantile (most urgent) fraction of its own
//    rank distribution is admitted. A tenant that games its rank
//    function sheds its own load first — the quantile is computed
//    against the tenant's OWN sliding window, so a constant-rank gamer
//    gains nothing over its honest self.
//
// Tenants without a config entry are aggregated under one optional
// "unknown" bucket, so a tenant-id churner cannot dodge policing by
// never reusing an id. All per-tenant state is allocated at configure
// time; the per-packet path allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/rank_digest.hpp"
#include "netsim/packet.hpp"
#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace qv::qvisor {

enum class AdmitResult : std::uint8_t {
  kAdmit = 0,
  kRateDrop = 1,      ///< token bucket empty
  kShareDrop = 2,     ///< occupancy share cap reached
  kQuantileDrop = 3,  ///< quantile admission rejected the rank
};

const char* admit_result_name(AdmitResult r);

struct AdmissionTenantConfig {
  TenantId tenant = kInvalidTenant;
  double rate_bytes_per_sec = 0.0;  ///< 0 = no rate policing
  double burst_bytes = 150'000.0;   ///< token-bucket depth
  std::int64_t share_cap_bytes = 0; ///< 0 = no occupancy cap

  bool policed() const {
    return rate_bytes_per_sec > 0.0 || share_cap_bytes > 0;
  }
};

struct AdmissionConfig {
  std::vector<AdmissionTenantConfig> tenants;

  /// Aggregate bucket for tenants with no entry of their own (id
  /// churners). `unknown.tenant` is ignored; leave it unpoliced to
  /// admit unknown tenants freely (the pre-existing behaviour).
  AdmissionTenantConfig unknown;

  /// Sliding window of recent transformed ranks per tenant (quantile
  /// estimate). 0 disables quantile admission entirely.
  std::uint32_t rank_window = 64;

  /// AIFO burst-tolerance knob (0 <= k < 1; larger admits more
  /// aggressively near the share cap).
  double k = 0.1;

  /// Replace each tenant's exact rank window with a fixed-byte
  /// mergeable RankDigest (million-tenant control plane). Quantile
  /// admission then reads the digest's CDF estimate instead of scanning
  /// the window; decisions agree with the exact window within the
  /// sketch's error bound (tests/control/admission_digest_test.cpp
  /// holds the two against each other). `rank_window > 0` still gates
  /// whether quantile admission runs at all. Off by default — the
  /// default path is bit-identical to the pre-sketch guard.
  bool sketch = false;
  control::RankDigestConfig sketch_config{};
  /// Observations between decay() calls on each tenant's digest — the
  /// sketch analogue of the window's "last N packets" horizon. 0 keeps
  /// all history.
  std::uint32_t sketch_decay_every = 4096;
};

struct AdmissionTenantCounters {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rate_dropped = 0;
  std::uint64_t share_dropped = 0;
  std::uint64_t quantile_dropped = 0;
  std::uint64_t admitted_bytes = 0;
  std::uint64_t dropped_bytes = 0;

  std::uint64_t dropped() const {
    return rate_dropped + share_dropped + quantile_dropped;
  }
};

class AdmissionGuard {
 public:
  /// Invoked on every drop (tenant, wire bytes, reason, arrival time).
  /// Feeds the Monitor so persistent policing violations escalate to a
  /// quarantine verdict through the normal hysteresis path.
  using DropHook =
      std::function<void(TenantId, std::int32_t, AdmitResult, TimeNs)>;

  explicit AdmissionGuard(AdmissionConfig config);

  /// Hot path: account the packet against its tenant's bucket / share /
  /// rank window and decide. State is updated (tokens spent, occupancy
  /// charged) only when the verdict is kAdmit. Defined inline below so
  /// the whole per-packet path folds into the pre-processor's loop.
  AdmitResult decide(TenantId tenant, Rank transformed_rank,
                     std::int32_t bytes, TimeNs now);

  /// Dense-slot ceiling for configured tenant ids (mirrors the
  /// pre-processor's dense-table limit).
  static constexpr TenantId kSlotLimit = 1u << 16;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// decide() + drop-hook dispatch; true = admit.
  bool admit(const Packet& p, TimeNs now) {
    const AdmitResult r = decide(p.tenant, p.rank, p.size_bytes, now);
    if (r == AdmitResult::kAdmit) [[likely]] return true;
    if (drop_hook_) drop_hook_(p.tenant, p.size_bytes, r, now);
    return false;
  }

  /// Release occupancy charged at admit time: called when the packet
  /// leaves the queue (dequeue) or when the hardware scheduler rejected
  /// it after admission. Clamps at zero, so packets admitted before the
  /// guard was (re)configured cannot underflow the account.
  void release(TenantId tenant, std::int32_t bytes);

  /// Bytes currently charged to the tenant (its own bucket, or the
  /// unknown aggregate's if it has no entry).
  std::int64_t occupancy_bytes(TenantId tenant) const;

  /// Per-tenant counters; tenants sharing the unknown aggregate report
  /// its counters. All-zero for ids the guard never saw.
  const AdmissionTenantCounters& tenant_counters(TenantId tenant) const;

  /// Guard-wide tallies: totals().offered == admitted + dropped() holds
  /// at every instant (packet conservation across the guard). Summed
  /// over the per-tenant counters on read — a control-plane walk over a
  /// control-plane-sized table, keeping the per-packet path to one
  /// counter set.
  AdmissionTenantCounters totals() const;

  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }
  const AdmissionConfig& config() const { return config_; }

  /// Per-tenant admission counters as live registry views (configured
  /// tenants plus the unknown aggregate under ".unknown"), plus the
  /// sketch-memory gauge in sketch mode.
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Bytes held by the per-tenant quantile structures (digests in
  /// sketch mode, exact windows otherwise). A constant of the config —
  /// no stream can grow it — which is exactly what the sketch-memory
  /// gauge asserts.
  std::size_t sketch_bytes() const;

 private:
  struct TenantState {
    AdmissionTenantConfig cfg;
    double tokens = 0.0;
    TimeNs last_refill = 0;
    std::int64_t occupancy = 0;
    std::uint32_t win_pos = 0;
    std::uint32_t win_len = 0;
    std::vector<Rank> window;  ///< ring of recent transformed ranks
    /// Sketch mode: fixed-byte digest instead of the exact window
    /// (config_.sketch); exactly one of window/digest is populated.
    std::optional<control::RankDigest> digest;
    std::uint32_t since_decay = 0;
    AdmissionTenantCounters ctr;
  };

  TenantState* find(TenantId tenant) {
    if (tenant < slot_.size()) {
      const std::uint32_t idx = slot_[tenant];
      if (idx != kNoSlot) [[likely]] return &states_[idx];
    } else if (tenant >= kSlotLimit && !spill_slots_.empty()) {
      const auto it = spill_slots_.find(tenant);
      if (it != spill_slots_.end()) return &states_[it->second];
    }
    return nullptr;
  }
  const TenantState* find(TenantId tenant) const {
    return const_cast<AdmissionGuard*>(this)->find(tenant);
  }
  AdmitResult decide_policed(TenantState& s, Rank rank, std::int32_t bytes,
                             TimeNs now);
  /// Fraction of the tenant's window strictly below `rank`.
  static double quantile_of(const TenantState& s, Rank rank);

  AdmissionConfig config_;
  /// slot_[id] -> index into states_ for small ids; larger configured
  /// ids go through spill_slots_ (control-plane sized, never grown by
  /// the data path).
  std::vector<std::uint32_t> slot_;
  std::unordered_map<TenantId, std::uint32_t> spill_slots_;
  std::vector<TenantState> states_;
  TenantState unknown_;
  bool police_unknown_ = false;
  AdmissionTenantCounters none_;  ///< returned for never-seen tenants
  DropHook drop_hook_;
};

// --- inline hot path -------------------------------------------------------
// Everything a policed packet touches is defined here so the compiler
// can fold the guard into the pre-processor's per-packet loop; only the
// quantile window scan (engaged past half the share cap) stays out of
// line.

inline AdmitResult AdmissionGuard::decide_policed(TenantState& s, Rank rank,
                                                  std::int32_t bytes,
                                                  TimeNs now) {
  // The rank window / digest advances on every offered packet — dropped
  // ones included — so the quantile reflects what the tenant is asking
  // for, not what it has already been granted.
  if (s.digest) {
    s.digest->observe(rank);
    if (config_.sketch_decay_every != 0 &&
        ++s.since_decay >= config_.sketch_decay_every) [[unlikely]] {
      s.digest->decay();
      s.since_decay = 0;
    }
  } else if (!s.window.empty()) {
    s.window[s.win_pos] = rank;
    s.win_pos = (s.win_pos + 1 == s.window.size()) ? 0 : s.win_pos + 1;
    if (s.win_len < s.window.size()) ++s.win_len;
  }

  if (s.cfg.rate_bytes_per_sec > 0.0) {
    if (now > s.last_refill) {
      s.tokens += to_seconds(now - s.last_refill) * s.cfg.rate_bytes_per_sec;
      if (s.tokens > s.cfg.burst_bytes) s.tokens = s.cfg.burst_bytes;
      s.last_refill = now;
    }
    if (s.tokens < static_cast<double>(bytes)) return AdmitResult::kRateDrop;
  }

  if (s.cfg.share_cap_bytes > 0) {
    const std::int64_t cap = s.cfg.share_cap_bytes;
    if (s.occupancy + bytes > cap) return AdmitResult::kShareDrop;
    // AIFO-style quantile admission, engaged only once the tenant has
    // filled half its share: admit iff quantile * (1 - k) <= headroom
    // fraction. At low occupancy every rank passes (headroom ~ 1); as
    // the queue share fills, only the tenant's own lowest-ranked
    // traffic gets through.
    if (2 * s.occupancy > cap &&
        (s.digest ? !s.digest->empty() : !s.window.empty())) [[unlikely]] {
      const double headroom =
          static_cast<double>(cap - s.occupancy) / static_cast<double>(cap);
      const double q = s.digest ? s.digest->fraction_below(rank)
                                : quantile_of(s, rank);
      if (q * (1.0 - config_.k) > headroom) {
        return AdmitResult::kQuantileDrop;
      }
    }
    s.occupancy += bytes;
  }

  if (s.cfg.rate_bytes_per_sec > 0.0) {
    s.tokens -= static_cast<double>(bytes);
  }
  return AdmitResult::kAdmit;
}

inline AdmitResult AdmissionGuard::decide(TenantId tenant, Rank rank,
                                          std::int32_t bytes, TimeNs now) {
  TenantState* s = find(tenant);
  if (s == nullptr) {
    if (!police_unknown_) return AdmitResult::kAdmit;
    s = &unknown_;
  }
  ++s->ctr.offered;
  const AdmitResult r = s->cfg.policed()
                            ? decide_policed(*s, rank, bytes, now)
                            : AdmitResult::kAdmit;
  if (r == AdmitResult::kAdmit) [[likely]] {
    ++s->ctr.admitted;
    s->ctr.admitted_bytes += static_cast<std::uint64_t>(bytes);
  } else {
    s->ctr.dropped_bytes += static_cast<std::uint64_t>(bytes);
    switch (r) {
      case AdmitResult::kRateDrop: ++s->ctr.rate_dropped; break;
      case AdmitResult::kShareDrop: ++s->ctr.share_dropped; break;
      default: ++s->ctr.quantile_dropped; break;
    }
  }
  return r;
}

inline void AdmissionGuard::release(TenantId tenant, std::int32_t bytes) {
  TenantState* s = find(tenant);
  if (s == nullptr) {
    if (!police_unknown_) return;
    s = &unknown_;
  }
  if (s->cfg.share_cap_bytes <= 0) return;
  s->occupancy -= bytes;
  if (s->occupancy < 0) [[unlikely]] s->occupancy = 0;
}

}  // namespace qv::qvisor
