// The QVISOR facade: the control-plane Hypervisor object plus the
// per-port data-plane scheduler it hands out.
//
// A Hypervisor holds the tenant specs, the operator policy, the
// synthesizer, the static analyzer and the chosen backend. compile()
// produces and verifies the joint scheduling plan; make_port_scheduler()
// returns a sched::Scheduler (pre-processor + hardware scheduler) that
// drops into any switch port of the simulator — or, conceptually, any
// real pipeline. Installing a new plan atomically re-programs every
// attached port, which is what the runtime controller uses to adapt.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "qvisor/backend.hpp"
#include "qvisor/monitor.hpp"
#include "qvisor/preprocessor.hpp"
#include "qvisor/rank_distribution.hpp"
#include "qvisor/static_analysis.hpp"
#include "qvisor/synthesizer.hpp"
#include "qvisor/tenant.hpp"

namespace qv::qvisor {

class Hypervisor;

/// Data-plane port scheduler: pre-processor in front of the backend's
/// hardware scheduler. Created by Hypervisor::make_port_scheduler().
class QvisorPort final : public sched::Scheduler {
 public:
  QvisorPort(Hypervisor& hv, std::unique_ptr<sched::Scheduler> inner);
  ~QvisorPort() override;
  QvisorPort(const QvisorPort&) = delete;
  QvisorPort& operator=(const QvisorPort&) = delete;

  bool enqueue(const Packet& p, TimeNs now) override;
  /// Burst arrival: one batch pre-processing pass over the span, then
  /// the survivors go to the hardware scheduler. Packets are rewritten
  /// in place and reordered (survivors first).
  std::size_t enqueue_batch(std::span<Packet> batch, TimeNs now) override;
  std::optional<Packet> dequeue(TimeNs now) override;
  std::size_t size() const override { return inner_->size(); }
  std::int64_t buffered_bytes() const override {
    return inner_->buffered_bytes();
  }
  std::string name() const override;

  const Preprocessor& preprocessor() const { return pre_; }
  const sched::Scheduler& inner() const { return *inner_; }

  /// Facade counters, the pre-processor's counters, and the hardware
  /// scheduler's own metrics, all under one port prefix. Export AFTER
  /// the run: a runtime re-deploy replaces the inner scheduler, which
  /// would orphan views registered against the old instance.
  void export_metrics(obs::Registry& reg,
                      const std::string& prefix) const override {
    Scheduler::export_metrics(reg, prefix);
    pre_.export_metrics(reg, prefix + ".pre");
    inner_->export_metrics(reg, prefix + ".hw");
  }

  /// Re-program this port with a new plan (called by the Hypervisor).
  void install(const SynthesisPlan& plan);

  /// Swap the hardware scheduler (runtime backend change). Only legal
  /// while empty.
  void replace_inner(std::unique_ptr<sched::Scheduler> inner);

 private:
  Hypervisor& hv_;
  Preprocessor pre_;
  std::unique_ptr<sched::Scheduler> inner_;
};

class Hypervisor {
 public:
  struct CompileResult {
    bool ok = false;
    std::string error;
    AnalysisReport report;
    std::vector<std::string> guarantees;
  };

  Hypervisor(std::vector<TenantSpec> tenants, OperatorPolicy policy,
             BackendPtr backend, SynthesizerConfig config = {});
  ~Hypervisor();
  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Synthesize the joint plan, statically verify it, and push it to
  /// every attached port. Fails (without touching the installed plan)
  /// if synthesis errors or the analyzer finds a violation.
  CompileResult compile();

  /// Compile against a subset of tenants (runtime adaptation path): the
  /// policy is restricted to the named tenants first.
  CompileResult compile_for(const std::vector<std::string>& active_names);

  /// Create a port scheduler wired to this hypervisor. The Hypervisor
  /// must outlive the port.
  std::unique_ptr<sched::Scheduler> make_port_scheduler();

  bool has_plan() const { return plan_.has_value(); }
  const SynthesisPlan& plan() const { return *plan_; }
  const std::vector<TenantSpec>& tenants() const { return tenants_; }
  const OperatorPolicy& policy() const { return policy_; }
  const Backend& backend() const { return *backend_; }
  Monitor& monitor() { return monitor_; }

  /// Update/replace the operator policy (takes effect on next compile).
  void set_policy(OperatorPolicy policy) { policy_ = std::move(policy); }

  /// Add or replace a tenant spec (takes effect on next compile).
  void upsert_tenant(TenantSpec spec);
  void remove_tenant(const std::string& name);

  /// Aggregate per-tenant packet counts across every attached port
  /// (runtime controller input).
  std::unordered_map<TenantId, std::uint64_t> per_tenant_packets() const;

  /// Per-tenant online rank estimators, fed by every attached port.
  RankDistEstimator& estimator(TenantId tenant);

  /// Read-only lookup; nullptr when the tenant was never observed.
  const RankDistEstimator* find_estimator(TenantId tenant) const;

  /// All live estimators (tenant id -> estimator).
  const std::unordered_map<TenantId, RankDistEstimator>& estimators()
      const {
    return estimators_;
  }

  /// Replace the installed plan with a refined variant of the current
  /// one (e.g. quantile refinement, quantile_transform.hpp). Rejects
  /// plans whose bands leave the backend rank space; otherwise pushes
  /// to every attached port. Does NOT count as a compile.
  bool install_refined(SynthesisPlan plan);

  std::uint64_t compile_count() const { return compile_count_; }

  /// Control-plane metrics: compile count, the monitor's per-tenant
  /// observations, and per-tenant traffic/rank-distribution gauges
  /// (sampled from the live estimators at snapshot time).
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Attach a tracer to the monitoring path (verdict-change instants).
  void set_tracer(obs::Tracer* tracer) { monitor_.set_tracer(tracer); }

 private:
  friend class QvisorPort;
  CompileResult compile_impl(const std::vector<TenantSpec>& specs,
                             const OperatorPolicy& policy);
  /// Push the installed plan to every attached port. Ports with empty
  /// buffers also get a freshly instantiated hardware scheduler, so
  /// backends can re-size exact structures (the bucketed PIFO) when
  /// the plan's rank usage changes between compiles.
  void push_plan();
  void attach(QvisorPort* port);
  void detach(QvisorPort* port);
  void observe(const Packet& pre_transform, TimeNs now);

  std::vector<TenantSpec> tenants_;
  OperatorPolicy policy_;
  BackendPtr backend_;
  Synthesizer synthesizer_;
  StaticAnalyzer analyzer_;
  Monitor monitor_;
  std::optional<SynthesisPlan> plan_;
  std::vector<QvisorPort*> ports_;
  std::unordered_map<TenantId, RankDistEstimator> estimators_;
  std::uint64_t compile_count_ = 0;
};

}  // namespace qv::qvisor
