// The QVISOR facade: the control-plane Hypervisor object plus the
// per-port data-plane scheduler it hands out.
//
// A Hypervisor holds the tenant specs, the operator policy, the
// synthesizer, the static analyzer and the chosen backend. compile()
// produces and verifies the joint scheduling plan; make_port_scheduler()
// returns a sched::Scheduler (pre-processor + hardware scheduler) that
// drops into any switch port of the simulator — or, conceptually, any
// real pipeline. Installing a new plan atomically re-programs every
// attached port, which is what the runtime controller uses to adapt.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/group_plan.hpp"
#include "control/rank_digest.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/monitor.hpp"
#include "qvisor/preprocessor.hpp"
#include "qvisor/rank_distribution.hpp"
#include "qvisor/static_analysis.hpp"
#include "qvisor/synthesizer.hpp"
#include "qvisor/tenant.hpp"

namespace qv::qvisor {

class Hypervisor;

/// Overload-protection settings the Hypervisor turns into a concrete
/// per-port AdmissionConfig: rates come from the registered tenant
/// contracts; per-tenant queue share caps are carved from the port
/// buffer in proportion to tenant weights.
struct AdmissionSettings {
  bool enabled = false;
  /// Notional per-port buffer (bytes) the share caps are carved from;
  /// 0 = no occupancy caps (rate policing only).
  std::int64_t port_buffer_bytes = 0;
  /// Multiplier over the tenant's proportional buffer share (> 1
  /// allows statistical multiplexing; 1.0 = hard partition).
  double share_headroom = 2.0;
  /// Floor on any carved share cap, so a tiny weight still fits a
  /// couple of MTUs.
  std::int64_t share_cap_floor_bytes = 3000;
  std::uint32_t rank_window = 64;  ///< AIFO window (0 = no quantile check)
  double k = 0.1;                  ///< AIFO burst tolerance
  /// Aggregate policing for tenants with no contract of their own (an
  /// id churner lands here). Zero rate + zero cap = admit freely.
  double unknown_rate_bytes_per_sec = 0.0;
  double unknown_burst_bytes = 150'000.0;
  std::int64_t unknown_share_cap_bytes = 0;
};

/// Data-plane port scheduler: pre-processor in front of the backend's
/// hardware scheduler. Created by Hypervisor::make_port_scheduler().
class QvisorPort final : public sched::Scheduler {
 public:
  QvisorPort(Hypervisor& hv, std::unique_ptr<sched::Scheduler> inner);
  ~QvisorPort() override;
  QvisorPort(const QvisorPort&) = delete;
  QvisorPort& operator=(const QvisorPort&) = delete;

  bool enqueue(const Packet& p, TimeNs now) override;
  /// Burst arrival: one batch pre-processing pass over the span, then
  /// the survivors go to the hardware scheduler. Packets are rewritten
  /// in place and reordered (survivors first).
  std::size_t enqueue_batch(std::span<Packet> batch, TimeNs now) override;
  std::optional<Packet> dequeue(TimeNs now) override;
  std::size_t size() const override { return inner_->size(); }
  std::int64_t buffered_bytes() const override {
    return inner_->buffered_bytes();
  }
  std::string name() const override;

  const Preprocessor& preprocessor() const { return pre_; }
  const sched::Scheduler& inner() const { return *inner_; }

  /// Facade counters, the pre-processor's counters, and the hardware
  /// scheduler's own metrics, all under one port prefix. Export AFTER
  /// the run: a runtime re-deploy replaces the inner scheduler, which
  /// would orphan views registered against the old instance.
  void export_metrics(obs::Registry& reg,
                      const std::string& prefix) const override {
    Scheduler::export_metrics(reg, prefix);
    reg.counter_view(prefix + ".epoch_mismatches", &epoch_mismatches_);
    pre_.export_metrics(reg, prefix + ".pre");
    inner_->export_metrics(reg, prefix + ".hw");
  }

  /// Re-program this port with a new plan at the given epoch (called by
  /// the Hypervisor during commit).
  void install(const SynthesisPlan& plan, std::uint64_t epoch);

  /// Group-compiled variants: full install, and the incremental path
  /// that patches only the delta's changed groups (falls back to a full
  /// install when the port's state is structurally incompatible).
  void install_groups(const control::CompiledGroupPlan& plan,
                      std::uint64_t epoch);
  void apply_group_delta(const control::CompiledGroupPlan& plan,
                         const control::GroupPlanDelta& delta,
                         std::uint64_t epoch);

  /// Epoch of the plan this port is currently running.
  std::uint64_t installed_epoch() const { return installed_epoch_; }

  /// Packets that arrived while this port's installed epoch disagreed
  /// with the hypervisor's committed epoch. The two-phase install
  /// mechanism keeps pushes atomic within one event-loop step, so a
  /// nonzero value means a packet WAS scheduled under a half-installed
  /// plan — the chaos harness asserts this stays zero.
  std::uint64_t epoch_mismatches() const { return epoch_mismatches_; }

  /// Swap the hardware scheduler (runtime backend change). Only legal
  /// while empty.
  void replace_inner(std::unique_ptr<sched::Scheduler> inner);

  /// Flip the pre-processor's degraded pass-through mode (called by the
  /// Hypervisor; see Preprocessor::set_degraded).
  void set_degraded(bool degraded) { pre_.set_degraded(degraded); }

  /// Install the per-tenant admission guard on this port's
  /// pre-processor, wiring drops back into the hypervisor's monitor
  /// (called by Hypervisor::set_admission; see AdmissionSettings).
  void configure_admission(AdmissionConfig config);
  void disable_admission() { pre_.disable_admission(); }

 private:
  Hypervisor& hv_;
  Preprocessor pre_;
  std::unique_ptr<sched::Scheduler> inner_;
  std::uint64_t installed_epoch_ = 0;
  std::uint64_t epoch_mismatches_ = 0;
};

class Hypervisor {
 public:
  struct CompileResult {
    bool ok = false;
    std::string error;
    AnalysisReport report;
    std::vector<std::string> guarantees;
  };

  /// Injectable install failure: called with the epoch about to be
  /// committed; returning true makes the switch agent reject the
  /// install (validation has already passed). Models an unreachable or
  /// misbehaving switch for chaos tests — the plan is left untouched.
  using InstallFault = std::function<bool(std::uint64_t epoch)>;

  Hypervisor(std::vector<TenantSpec> tenants, OperatorPolicy policy,
             BackendPtr backend, SynthesizerConfig config = {});
  ~Hypervisor();
  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Synthesize the joint plan, statically verify it, and push it to
  /// every attached port. Fails (without touching the installed plan)
  /// if synthesis errors or the analyzer finds a violation.
  CompileResult compile();

  /// Compile against a subset of tenants (runtime adaptation path): the
  /// policy is restricted to the named tenants first.
  CompileResult compile_for(const std::vector<std::string>& active_names);

  /// Two-phase install at a caller-chosen epoch (the Fleet drives every
  /// switch to the same epoch). Validation happens first; the plan and
  /// epoch only change if the switch agent accepts the commit.
  CompileResult commit_for(const std::vector<std::string>& active_names,
                           std::uint64_t epoch);

  /// Two-phase install of a group-compiled plan (million-tenant path).
  /// Validation (band layout) happened in the group compiler; the
  /// switch agent may still reject the commit via the install-fault
  /// hook, leaving the running plan untouched. When `delta` is given
  /// and structurally compatible, only the changed groups are patched
  /// on each attached port — the O(changed) incremental install the
  /// re-synthesis latency benchmark measures. Shares the epoch/undo
  /// machinery with per-tenant commits: rollback() restores whichever
  /// kind ran before.
  bool commit_group_plan(std::shared_ptr<const control::CompiledGroupPlan> plan,
                         std::uint64_t epoch,
                         const control::GroupPlanDelta* delta = nullptr);

  bool has_group_plan() const { return group_plan_ != nullptr; }
  const control::CompiledGroupPlan* group_plan() const {
    return group_plan_.get();
  }

  /// Undo the last successful commit: reinstall the previous plan at
  /// its previous epoch (single-level, consumed on use). The rollback
  /// push itself goes through the install-fault hook — an unreachable
  /// switch can fail its rollback and stay dirty until reconcile().
  /// Returns false when there is nothing to roll back to or the push
  /// was rejected.
  bool rollback();

  /// Simulate a switch agent reboot: the running plan and epoch are
  /// lost and every port falls back to the safe empty-plan path
  /// (best-effort ranks) until the next commit or Fleet::reconcile().
  void clear_plan();

  void set_install_fault(InstallFault fault) {
    install_fault_ = std::move(fault);
  }

  /// Degraded pass-through mode for every attached port (and ports
  /// attached later): the runtime controller flips this when its retry
  /// budget is exhausted, so stale transforms cannot keep scheduling.
  void set_degraded(bool degraded);
  bool degraded() const { return degraded_; }

  /// Epoch of the installed plan (0 = none). Fresh commits always use
  /// an epoch above every previously attempted one; a rollback restores
  /// the previous (lower) epoch.
  std::uint64_t plan_epoch() const { return plan_epoch_; }
  std::uint64_t failed_installs() const { return failed_installs_; }
  std::uint64_t rollbacks() const { return rollbacks_; }

  /// Create a port scheduler wired to this hypervisor. The Hypervisor
  /// must outlive the port.
  std::unique_ptr<sched::Scheduler> make_port_scheduler();

  bool has_plan() const { return plan_.has_value(); }
  const SynthesisPlan& plan() const { return *plan_; }
  const std::vector<TenantSpec>& tenants() const { return tenants_; }
  const OperatorPolicy& policy() const { return policy_; }
  const Backend& backend() const { return *backend_; }
  Monitor& monitor() { return monitor_; }

  /// Enable/disable the per-port admission guard. Rates and bursts come
  /// from the monitor's registered contracts; share caps are carved
  /// from `settings.port_buffer_bytes` by tenant weight. Applies to all
  /// attached ports and to ports attached later.
  void set_admission(const AdmissionSettings& settings);
  const AdmissionSettings& admission_settings() const { return admission_; }

  /// Register/replace a tenant contract; when the admission guard is
  /// enabled the guard configs are rebuilt so the new terms take effect
  /// immediately.
  void set_contract(const TenantContract& contract);

  /// Update/replace the operator policy (takes effect on next compile).
  void set_policy(OperatorPolicy policy) { policy_ = std::move(policy); }

  /// Add or replace a tenant spec (takes effect on next compile).
  void upsert_tenant(TenantSpec spec);
  void remove_tenant(const std::string& name);

  /// Aggregate per-tenant packet counts across every attached port
  /// (runtime controller input).
  std::unordered_map<TenantId, std::uint64_t> per_tenant_packets() const;

  /// Per-tenant online rank estimators, fed by every attached port.
  RankDistEstimator& estimator(TenantId tenant);

  /// Back NEW estimators with fixed-byte RankDigests instead of exact
  /// 1024-entry rings (million-tenant memory budget; ~12 KB -> the
  /// digest's byte budget per tenant). Existing estimators keep their
  /// representation; nullopt restores exact rings for new ones.
  void set_estimator_sketch(std::optional<control::RankDigestConfig> config) {
    estimator_sketch_ = config;
  }
  /// Bytes held by all live estimators (sketch-memory gauge input).
  std::size_t estimator_bytes() const {
    std::size_t total = 0;
    for (const auto& [id, est] : estimators_) total += est.byte_size();
    return total;
  }

  /// Read-only lookup; nullptr when the tenant was never observed.
  const RankDistEstimator* find_estimator(TenantId tenant) const;

  /// All live estimators (tenant id -> estimator).
  const std::unordered_map<TenantId, RankDistEstimator>& estimators()
      const {
    return estimators_;
  }

  /// Replace the installed plan with a refined variant of the current
  /// one (e.g. quantile refinement, quantile_transform.hpp). Rejects
  /// plans whose bands leave the backend rank space; otherwise pushes
  /// to every attached port. Does NOT count as a compile.
  bool install_refined(SynthesisPlan plan);

  std::uint64_t compile_count() const { return compile_count_; }

  /// Control-plane metrics: compile count, the monitor's per-tenant
  /// observations, and per-tenant traffic/rank-distribution gauges
  /// (sampled from the live estimators at snapshot time).
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Attach a tracer to the monitoring path (verdict-change instants).
  void set_tracer(obs::Tracer* tracer) { monitor_.set_tracer(tracer); }

 private:
  friend class QvisorPort;
  /// Cap on per-tenant rank estimators (hostile-growth bound; see
  /// observe()).
  static constexpr std::size_t kMaxEstimators = 1024;

  AdmissionConfig build_admission_config() const;
  /// Admission-guard drop hook target (every port routes here).
  void on_admission_drop(TenantId tenant, std::int32_t bytes, AdmitResult r,
                         TimeNs now);
  CompileResult compile_impl(const std::vector<TenantSpec>& specs,
                             const OperatorPolicy& policy,
                             std::uint64_t epoch);
  /// Push the installed plan (or the safe empty plan when none) to
  /// every attached port, stamped with the current epoch. Ports with
  /// empty buffers also get a freshly instantiated hardware scheduler,
  /// so backends can re-size exact structures (the bucketed PIFO) when
  /// the plan's rank usage changes between compiles.
  void push_plan();
  void attach(QvisorPort* port);
  void detach(QvisorPort* port);
  void observe(const Packet& pre_transform, TimeNs now);

  std::vector<TenantSpec> tenants_;
  OperatorPolicy policy_;
  BackendPtr backend_;
  Synthesizer synthesizer_;
  StaticAnalyzer analyzer_;
  Monitor monitor_;
  std::optional<SynthesisPlan> plan_;
  /// Group-compiled mode: at most one of plan_ / group_plan_ is set.
  /// shared_ptr because the Fleet hands ONE compiled plan to every
  /// switch (the index alone is O(tenants) bytes — sharing it is the
  /// point).
  std::shared_ptr<const control::CompiledGroupPlan> group_plan_;
  std::vector<QvisorPort*> ports_;
  std::optional<control::RankDigestConfig> estimator_sketch_;
  std::unordered_map<TenantId, RankDistEstimator> estimators_;
  /// One-entry MRU cache over estimators_ (pointer-stable nodes, never
  /// erased): observe() runs per packet per hop and the tenant id
  /// almost always repeats.
  TenantId last_obs_tenant_ = kInvalidTenant;
  RankDistEstimator* last_obs_est_ = nullptr;
  std::uint64_t estimator_overflow_ = 0;  ///< observations past the cap
  AdmissionSettings admission_;
  std::uint64_t compile_count_ = 0;

  // Two-phase install state. prev_* is the one-deep undo log a partial
  // fleet deploy rolls back to; install_fault_ injects per-commit
  // switch-agent rejections.
  std::uint64_t plan_epoch_ = 0;
  std::uint64_t epoch_hwm_ = 0;  ///< highest epoch ever attempted
  std::optional<SynthesisPlan> prev_plan_;
  std::shared_ptr<const control::CompiledGroupPlan> prev_group_plan_;
  std::uint64_t prev_epoch_ = 0;
  bool prev_valid_ = false;
  InstallFault install_fault_;
  std::uint64_t failed_installs_ = 0;
  std::uint64_t rollbacks_ = 0;
  bool degraded_ = false;
};

}  // namespace qv::qvisor
