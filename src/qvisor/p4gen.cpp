#include "qvisor/p4gen.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace qv::qvisor {

namespace {

/// Entries for a range-quantized transform: level l covers input
/// offsets [ceil(l*W/L), ceil((l+1)*W/L) - 1] (the exact preimage of
/// the closed-form map), merged `group` levels at a time when the
/// budget requires coarsening.
void range_transform_entries(const TenantPlan& plan, std::size_t group,
                             std::vector<RangeEntry>& out) {
  const RankTransform& t = plan.transform;
  const auto bounds = t.input_bounds();
  const std::uint64_t width =
      static_cast<std::uint64_t>(bounds.max) - bounds.min + 1;
  const std::uint64_t levels = t.levels() == 0 ? 1 : t.levels();

  // Clamp region below the declared range.
  if (bounds.min > 0) {
    out.push_back(RangeEntry{plan.tenant, 0, bounds.min - 1,
                             t.apply(bounds.min)});
  }
  for (std::uint64_t l = 0; l < levels; l += group) {
    const std::uint64_t lo_off = (l * width + levels - 1) / levels;
    const std::uint64_t next = std::min<std::uint64_t>(l + group, levels);
    const std::uint64_t hi_off =
        (next * width + levels - 1) / levels;  // exclusive
    if (lo_off >= width || hi_off <= lo_off) continue;  // empty preimage
    const Rank lo = bounds.min + static_cast<Rank>(lo_off);
    const Rank hi = bounds.min +
                    static_cast<Rank>(std::min<std::uint64_t>(hi_off, width) -
                                      1);
    // Coarsened groups all emit the group's FIRST level output.
    out.push_back(RangeEntry{plan.tenant, lo, hi, t.apply(lo)});
  }
  // Clamp region above the declared range.
  if (bounds.max < kMaxRank) {
    out.push_back(RangeEntry{plan.tenant, bounds.max + 1, kMaxRank,
                             t.apply(bounds.max)});
  }
}

/// Entries for a quantile transform: one entry per breakpoint step.
void quantile_transform_entries(const TenantPlan& plan,
                                std::vector<RangeEntry>& out) {
  const BreakpointTransform& q = *plan.quantile;
  // Probe the step boundaries through apply(): steps() gives the count;
  // boundaries are recovered by scanning apply() changes... the
  // transform exposes exactly what we need via apply on the interval
  // edges, so reconstruct entries from the public interface.
  //
  // Simpler and exact: walk the input space at step boundaries. The
  // class stores (from, level) pairs; re-derive them by binary probing
  // is wasteful — instead extend the interface minimally: we use
  // steps() plus apply() over the plan's declared input bounds at
  // every boundary via the transform's own resolution. Since the
  // number of steps is small (<= levels), probing is cheap.
  const auto bounds = plan.transform.input_bounds();
  Rank cursor = 0;
  Rank current = q.apply(cursor);
  Rank start = cursor;
  // Scan candidate boundaries: the declared bounds plus the full range
  // in coarse strides refined by binary search for each step edge.
  while (true) {
    // Find the first rank > cursor where apply() changes, by galloping
    // + binary search within [cursor, kMaxRank].
    Rank lo = cursor;
    Rank hi = kMaxRank;
    if (q.apply(hi) == current) {
      out.push_back(RangeEntry{plan.tenant, start, kMaxRank, current});
      break;
    }
    // Binary search the boundary: smallest r with apply(r) != current.
    while (lo < hi) {
      const Rank mid = lo + (hi - lo) / 2;
      if (q.apply(mid) == current) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out.push_back(RangeEntry{plan.tenant, start, lo - 1, current});
    start = lo;
    cursor = lo;
    current = q.apply(lo);
  }
  (void)bounds;
}

}  // namespace

std::vector<RangeEntry> compile_entries(const TenantPlan& plan,
                                        std::size_t max_entries) {
  assert(max_entries >= 4);
  std::vector<RangeEntry> out;
  if (plan.quantile.has_value()) {
    quantile_transform_entries(plan, out);
    return out;
  }
  // +2 for the two clamp entries.
  std::size_t group = 1;
  const std::size_t levels = plan.transform.levels() == 0
                                 ? 1
                                 : plan.transform.levels();
  while (levels / group + 2 > max_entries) group *= 2;
  range_transform_entries(plan, group, out);
  return out;
}

Rank apply_entries(const std::vector<RangeEntry>& entries, TenantId tenant,
                   Rank label, Rank fallback) {
  for (const auto& e : entries) {
    if (e.tenant == tenant && label >= e.lo && label <= e.hi) return e.out;
  }
  return fallback;
}

P4GenResult generate_p4(const SynthesisPlan& plan,
                        const P4GenOptions& options) {
  P4GenResult result;
  for (const auto& tp : plan.tenants) {
    const auto before = result.entries.size();
    auto entries = compile_entries(tp, options.max_entries_per_tenant);
    result.entries.insert(result.entries.end(), entries.begin(),
                          entries.end());
    const std::size_t count = result.entries.size() - before;
    const std::size_t levels =
        tp.quantile ? tp.quantile->levels() : tp.transform.levels();
    if (!tp.quantile && levels + 2 > options.max_entries_per_tenant) {
      result.notes.push_back(
          "tenant '" + tp.name + "': " + std::to_string(levels) +
          " levels coarsened into " + std::to_string(count) +
          " table entries to fit the hardware budget");
    }
  }

  std::ostringstream p4;
  p4 << "// Auto-generated by QVISOR's synthesizer — do not edit.\n"
     << "// Joint scheduling policy: " << plan.policy.to_string() << "\n";
  for (const auto& note : plan.notes) p4 << "// note: " << note << "\n";
  for (const auto& note : result.notes) p4 << "// note: " << note << "\n";
  p4 << "#include <core.p4>\n#include <v1model.p4>\n\n"
     << "header qvisor_t {\n"
     << "    bit<32> tenant_id;\n"
     << "    bit<32> rank;\n"
     << "}\n\n"
     << "struct headers_t { qvisor_t qvisor; }\n"
     << "struct metadata_t {}\n\n"
     << "parser QvisorParser(packet_in pkt, out headers_t hdr,\n"
     << "                    inout metadata_t meta,\n"
     << "                    inout standard_metadata_t std) {\n"
     << "    state start { pkt.extract(hdr.qvisor); transition accept; }\n"
     << "}\n\n"
     << "control " << options.program_name << "(inout headers_t hdr,\n"
     << "        inout metadata_t meta, inout standard_metadata_t std) {\n"
     << "    action set_rank(bit<32> r) { hdr.qvisor.rank = r; }\n"
     << "    action best_effort() { hdr.qvisor.rank = 32w"
     << (plan.rank_space == 0 ? kMaxRank : plan.rank_space - 1) << "; }\n"
     << "    table rank_transform {\n"
     << "        key = {\n"
     << "            hdr.qvisor.tenant_id : exact;\n"
     << "            hdr.qvisor.rank      : range;\n"
     << "        }\n"
     << "        actions = { set_rank; best_effort; }\n"
     << "        default_action = best_effort();\n"
     << "        const entries = {\n";
  for (const auto& e : result.entries) {
    p4 << "            (32w" << e.tenant << ", 32w" << e.lo << " .. 32w"
       << e.hi << ") : set_rank(32w" << e.out << ");\n";
  }
  p4 << "        }\n"
     << "    }\n"
     << "    apply { rank_transform.apply(); }\n"
     << "}\n\n"
     << "// Checksum/deparser boilerplate elided: the pre-processor is\n"
     << "// meant to be spliced into the target's existing pipeline.\n";
  result.program = p4.str();
  return result;
}

}  // namespace qv::qvisor
