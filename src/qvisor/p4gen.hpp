// Compiling the joint scheduling policy into a hardware DSL (paper
// §3.4 / §5 "Compiling scheduling policies into hardware"): emit a
// P4_16 program whose match-action tables implement the pre-processor.
//
// Rank transformations become RANGE-match entries — programmable
// ASICs have no divider, so the affine-quantized map is materialized
// as one (tenant, rank-range) -> set_rank(constant) entry per output
// level, exactly how SP-PIFO-era prototypes program Tofino. Quantile
// transforms map 1:1 onto their breakpoint steps.
//
// When a transform needs more entries than the table budget, adjacent
// levels are merged (granularity coarsens) and the degradation is
// recorded — the §5 "partial specification" behaviour, at the hardware
// boundary.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qvisor/synthesizer.hpp"

namespace qv::qvisor {

/// One range-match table entry: packets of `tenant` whose rank label is
/// in [lo, hi] get scheduling rank `out`.
struct RangeEntry {
  TenantId tenant = kInvalidTenant;
  Rank lo = 0;
  Rank hi = 0;
  Rank out = 0;
};

struct P4GenOptions {
  std::string program_name = "qvisor_preprocessor";
  /// Hardware table budget per tenant; transforms with more output
  /// levels are coarsened to fit.
  std::size_t max_entries_per_tenant = 1024;
};

struct P4GenResult {
  std::string program;              ///< complete P4_16 source
  std::vector<RangeEntry> entries;  ///< all table entries, tenant-major
  std::vector<std::string> notes;   ///< degradations (coarsening, ...)
};

/// Compile one tenant's transform into range entries. Exposed for
/// testing: applying the entries must agree with the plan's transform
/// on every input.
std::vector<RangeEntry> compile_entries(const TenantPlan& plan,
                                        std::size_t max_entries);

/// Emit the full program for a plan.
P4GenResult generate_p4(const SynthesisPlan& plan,
                        const P4GenOptions& options = {});

/// Evaluate a set of entries the way the hardware would (first match in
/// tenant-filtered order). Returns `fallback` when nothing matches.
Rank apply_entries(const std::vector<RangeEntry>& entries, TenantId tenant,
                   Rank label, Rank fallback);

}  // namespace qv::qvisor
