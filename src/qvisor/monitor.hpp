// Adversarial-workload monitoring (paper §2, Idea 2: "develop
// monitoring techniques to identify such adversarial workloads in the
// network and automatically stop them").
//
// Two independent detectors per tenant:
//  * bounds violations — ranks outside the declared bounds. The
//    transform clamps them (so scheduling stays safe), but a tenant
//    that persistently lies about its rank distribution is flagged.
//  * rate policing — a token bucket per tenant; sustained transmission
//    above the contracted rate is flagged.
//
// Verdicts are advisory: the runtime controller decides whether to
// quarantine (demote the tenant to the bottom tier and re-synthesize).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/group_plan.hpp"
#include "netsim/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qv::qvisor {

struct TenantContract {
  TenantId tenant = kInvalidTenant;
  Rank rank_min = 0;
  Rank rank_max = kMaxRank;
  BitsPerSec max_rate = 0;       ///< 0 = unpoliced
  std::int64_t burst_bytes = 150'000;  ///< token-bucket depth
};

enum class Verdict { kClean, kSuspect, kAdversarial };

struct TenantObservation {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t bounds_violations = 0;
  std::uint64_t rate_violations = 0;
  std::uint64_t admission_drops = 0;  ///< shed by the admission guard
  Verdict verdict = Verdict::kClean;
};

class Monitor {
 public:
  /// Violation fractions above `suspect_threshold` mark a tenant
  /// suspect; above `adversarial_threshold`, adversarial. Both over a
  /// minimum sample count so one early packet cannot condemn a tenant.
  Monitor(double suspect_threshold = 0.01,
          double adversarial_threshold = 0.05,
          std::uint64_t min_packets = 100);

  void set_contract(const TenantContract& contract);

  /// Feed one packet (pre-transform rank) at time `now`. A tenant with
  /// no registered contract gets an EXPLICIT implicit one on first
  /// sight — its own id, unbounded ranks, unpoliced rate — rather than
  /// a default-constructed state stamped `kInvalidTenant`.
  void observe(TenantId tenant, Rank original_rank, std::int32_t bytes,
               TimeNs now);

  /// Feed one admission-guard drop. The packet itself was already
  /// observe()d (ports observe before the pre-processor decides), so
  /// this only tallies the violation, advances `last_violation_at`, and
  /// re-evaluates the verdict — policing drops escalate to quarantine
  /// through the same hysteresis path as bounds/rate violations.
  void record_admission_drop(TenantId tenant, std::int32_t bytes, TimeNs now);

  Verdict verdict(TenantId tenant) const;
  const TenantObservation& observation(TenantId tenant) const;

  /// True iff set_contract() registered terms for this tenant (an
  /// implicit contract stamped by observe() does not count).
  bool has_contract(TenantId tenant) const;

  /// The effective contract (registered or implicit); nullptr when the
  /// tenant was never contracted nor observed.
  const TenantContract* contract(TenantId tenant) const;

  /// Time of the tenant's most recent bounds/rate violation, or -1 if
  /// it never violated (or was never observed). Drives quarantine
  /// hysteresis: controllers release after a configurable clean window.
  TimeNs last_violation_at(TenantId tenant) const;

  /// Tenants currently judged adversarial.
  std::vector<TenantId> adversarial() const;

  void reset(TenantId tenant);

  /// Attach a tracer (not owned): every verdict escalation becomes a
  /// `runtime`-category instant event at the observation time.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Publish per-tenant observation counters as live registry views.
  void export_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Bound on tracked tenant states (a tenant-id churner must not grow
  /// the monitor without limit). Registered contracts always track;
  /// once the cap is hit, packets from NEW unknown tenants are tallied
  /// in `untracked_observations()` instead of gaining a state.
  void set_max_tracked(std::size_t cap) { max_tracked_ = cap; }
  std::size_t tracked_tenants() const { return tenants_.size(); }
  /// Cap-hit observations that could not be attributed to a GROUP
  /// either (no group index installed, or the id resolves to no group).
  std::uint64_t untracked_observations() const { return untracked_; }

  /// Group-compiled mode: attribute cap-hit observations to the
  /// tenant's group instead of the aggregate unknown bucket, so the
  /// operator still sees WHICH slice of the policy the untracked
  /// traffic belongs to. Pass nullptr to leave group mode.
  void set_group_index(std::shared_ptr<const control::GroupIndex> index) {
    group_index_ = std::move(index);
    group_untracked_.assign(
        group_index_ ? group_index_->group_count() : 0, 0);
  }
  /// Cap-hit observations attributed to group `g` (0 when out of range).
  std::uint64_t untracked_in_group(control::GroupId g) const {
    return g < group_untracked_.size() ? group_untracked_[g] : 0;
  }
  /// Sum over all groups (the group-attributed complement of
  /// untracked_observations()).
  std::uint64_t untracked_grouped() const {
    std::uint64_t total = 0;
    for (const std::uint64_t c : group_untracked_) total += c;
    return total;
  }

 private:
  struct State {
    TenantContract contract;
    bool registered = false;  ///< set_contract() vs implicit stamping
    TenantObservation obs;
    double tokens = 0;  ///< token bucket, bytes
    TimeNs last_refill = 0;
    TimeNs last_violation = -1;
  };

  void refresh_verdict(State& s) const;
  /// Existing state, or a fresh one while under the tracked-tenant cap;
  /// nullptr when the cap is hit and the tenant is unknown.
  State* track(TenantId tenant);
  /// Tally one cap-hit observation: to the tenant's group when a group
  /// index is installed and covers the id, else to the aggregate bucket.
  void count_untracked(TenantId tenant) {
    if (group_index_ != nullptr) {
      const control::GroupId g = group_index_->lookup(tenant);
      if (g < group_untracked_.size()) {
        ++group_untracked_[g];
        return;
      }
    }
    ++untracked_;
  }
  void trace_verdict_change(TenantId tenant, const State& s, Verdict before,
                            TimeNs now) const;

  double suspect_threshold_;
  double adversarial_threshold_;
  std::uint64_t min_packets_;
  std::size_t max_tracked_ = 4096;
  std::uint64_t untracked_ = 0;
  /// Group-attributed cap-hit tallies, ordinal-indexed; sized by
  /// set_group_index(). O(groups) — the bound does not depend on how
  /// many ids an id-churner fabricates.
  std::vector<std::uint64_t> group_untracked_;
  std::shared_ptr<const control::GroupIndex> group_index_;
  std::unordered_map<TenantId, State> tenants_;
  /// One-entry MRU cache over tenants_: consecutive packets on a port
  /// overwhelmingly share a tenant, and map nodes are pointer-stable
  /// (states are never erased), so the common observe() skips the hash
  /// probe entirely.
  TenantId last_tenant_ = kInvalidTenant;
  State* last_state_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace qv::qvisor
