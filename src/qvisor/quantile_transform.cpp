#include "qvisor/quantile_transform.hpp"

#include <vector>

namespace qv::qvisor {

BreakpointTransform quantile_transform_from_estimator(
    const RankDistEstimator& estimator, std::uint32_t levels, Rank base) {
  std::vector<Rank> samples;
  samples.reserve(estimator.samples());
  // Pull the window through the quantile accessor at fine granularity:
  // the estimator exposes order statistics, which is all we need.
  const std::size_t n = estimator.samples();
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(estimator.quantile(
        n == 1 ? 0.0
               : static_cast<double>(i) / static_cast<double>(n - 1)));
  }
  return BreakpointTransform::from_samples(std::move(samples), levels,
                                           base);
}

SynthesisPlan refine_with_quantiles(
    const SynthesisPlan& plan,
    const std::unordered_map<TenantId, const RankDistEstimator*>& estimators,
    std::size_t min_samples, std::size_t* refined_count) {
  SynthesisPlan refined = plan;
  std::size_t count = 0;
  for (auto& tp : refined.tenants) {
    const auto it = estimators.find(tp.tenant);
    if (it == estimators.end() || it->second == nullptr) continue;
    const RankDistEstimator& est = *it->second;
    if (est.samples() < min_samples) continue;
    tp.quantile = quantile_transform_from_estimator(
        est, tp.transform.levels(), tp.transform.base());
    ++count;
  }
  if (refined_count != nullptr) *refined_count = count;
  if (count > 0) {
    refined.notes.push_back(
        "quantile refinement applied to " + std::to_string(count) +
        " tenant(s) from live rank distributions");
  }
  return refined;
}

}  // namespace qv::qvisor
