// Static worst-case analysis of a synthesis plan (paper §2, Idea 2:
// "develop static analysis techniques to reason about the worst-case
// scenario for the combined workloads").
//
// Every check reasons only over declared rank bounds and the plan's
// transforms — no traffic is needed — and therefore holds for ANY
// workload the tenants can legally emit.
#pragma once

#include <string>
#include <vector>

#include "qvisor/synthesizer.hpp"

namespace qv::qvisor {

enum class CheckSeverity { kOk, kWarning, kViolation };

struct AnalysisFinding {
  CheckSeverity severity = CheckSeverity::kOk;
  std::string check;    ///< short id, e.g. "tier-isolation"
  std::string message;  ///< human-readable detail
};

struct AnalysisReport {
  std::vector<AnalysisFinding> findings;

  bool has_violations() const;
  bool has_warnings() const;
  std::string to_string() const;
};

class StaticAnalyzer {
 public:
  /// Run all checks:
  ///  * tier-isolation: worst-case max rank of tier i < min of tier i+1
  ///    (the ">>" guarantee);
  ///  * monotonicity: each transform preserves intra-tenant rank order
  ///    over its declared input bounds (spot-checked exhaustively for
  ///    small ranges, at sampled points for large ones);
  ///  * range: every transform's output fits in the plan's rank space;
  ///  * preference: inside a tier, group g's band base is strictly
  ///    below group g+1's (the ">" ordering), with a warning describing
  ///    the overlap fraction (best-effort semantics);
  ///  * sharing-alignment: tenants of one "+" group cover bands of
  ///    equal width (fair comparability after normalization).
  AnalysisReport analyze(const SynthesisPlan& plan,
                         const std::vector<TenantSpec>& tenants) const;

  /// Worst-case number of rank levels by which a packet of `lower_name`
  /// can overtake a packet of `upper_name` (0 if it never can). A
  /// measure of how "best-effort" the '>' operator is between them.
  static std::int64_t worst_case_overtake(const SynthesisPlan& plan,
                                          const std::string& upper_name,
                                          const std::string& lower_name);
};

}  // namespace qv::qvisor
