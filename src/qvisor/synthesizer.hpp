// The QVISOR synthesizer (paper §3.2): given the tenants' scheduling
// policies and the operator's inter-tenant policy, generate the joint
// scheduling function as a set of per-tenant rank transformations.
//
// Band-allocation semantics (documented in DESIGN.md §4):
//
//   * `>>` (isolation tiers): tiers receive disjoint, ordered bands of
//     the output rank space. By construction the worst-case maximum
//     transformed rank of tier i is strictly below the minimum of tier
//     i+1 — strict priority holds for ANY input ranks within declared
//     bounds (paper §2: "we can shift all the priorities from T3's
//     scheduling policy such that, even in the worst case, it does not
//     impact the performance of the other tenants").
//
//   * `>` (preference): groups inside a tier get bands offset by
//     `pref_bias` levels but overlapping; the preferred group wins most
//     head-to-head comparisons, yet urgent packets of the next group
//     can still overtake lazy packets of the preferred one — priority
//     "applied in a best-effort manner" (§3.1).
//
//   * `+` (sharing): tenants are normalized and quantized onto the SAME
//     band, so their quantized levels compare fairly and FIFO
//     tie-breaking interleaves them (§3.2 rank-normalization). An
//     optional per-tenant stagger reproduces the exact interleave of
//     the paper's Fig. 3.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qvisor/policy.hpp"
#include "qvisor/tenant.hpp"
#include "qvisor/transform.hpp"

namespace qv::qvisor {

struct SynthesizerConfig {
  /// Output rank space [0, rank_space) offered by the backend.
  Rank rank_space = 1u << 20;

  /// Desired quantization levels per sharing band. More levels keep
  /// more of each tenant's intra-tenant order (see the quantization
  /// ablation bench); fewer levels fit more tiers into small rank
  /// spaces.
  std::uint32_t levels_per_group = 256;

  /// Offset (in levels) between '>' groups inside a tier. 0 = auto
  /// (one quarter of the band).
  std::uint32_t pref_bias = 0;

  /// Per-tenant base offset inside a '+' sharing band. 0 keeps all
  /// sharing tenants on identical levels (FIFO tie-break interleaves);
  /// 1 reproduces the staggered interleave of the paper's Fig. 3.
  std::uint32_t share_stagger = 0;

  /// When the requested layout does not fit `rank_space`, shrink the
  /// quantization instead of failing (the paper's §5 "synthesis
  /// approach": propose a partial specification rather than fail).
  bool allow_degraded = true;
};

/// Where one tenant's transformed ranks land.
struct TenantPlan {
  TenantId tenant = kInvalidTenant;
  std::string name;
  std::size_t tier = 0;
  std::size_t group = 0;
  std::size_t index_in_group = 0;
  RankTransform transform;

  /// Distribution-aware override of `transform`'s quantization over the
  /// same band (quantile_transform.hpp). When set, the pre-processor
  /// applies it instead of `transform`.
  std::optional<BreakpointTransform> quantile;
};

struct TierBand {
  Rank lo = 0;
  Rank hi = 0;  ///< inclusive
};

/// The joint scheduling function, ready for the pre-processor.
struct SynthesisPlan {
  std::vector<TenantPlan> tenants;  ///< in policy order
  std::vector<TierBand> tier_bands;
  Rank rank_space = 0;
  OperatorPolicy policy;

  /// Guarantees and degradations, human-readable (paper §5: "QVISOR
  /// would output the proposed configuration, together with the
  /// supported specifications and the offered guarantees").
  std::vector<std::string> notes;
  bool degraded = false;

  const TenantPlan* find(TenantId id) const;
  const TenantPlan* find(const std::string& name) const;

  /// Ranks the plan can actually emit: one past the highest band (the
  /// used prefix of `rank_space`). Backends size exact-PIFO structures
  /// from this — post-synthesis it is small even when the hardware
  /// rank space is huge. 0 when the plan is empty.
  Rank used_rank_space() const;
};

class Synthesizer {
 public:
  struct Result {
    std::optional<SynthesisPlan> plan;
    std::string error;

    bool ok() const { return plan.has_value(); }
  };

  explicit Synthesizer(SynthesizerConfig config = {});

  /// Generate the joint scheduling function. Every tenant named in the
  /// policy must appear in `tenants`; tenants absent from the policy
  /// are an error (restrict the policy first, or mention them).
  Result synthesize(const std::vector<TenantSpec>& tenants,
                    const OperatorPolicy& policy) const;

  const SynthesizerConfig& config() const { return config_; }

 private:
  SynthesizerConfig config_;
};

}  // namespace qv::qvisor
