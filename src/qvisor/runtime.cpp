#include "qvisor/runtime.hpp"

#include <algorithm>
#include <chrono>

#include "qvisor/quantile_transform.hpp"
#include "util/logging.hpp"

namespace qv::qvisor {

bool RuntimeController::refine_quantiles() {
  std::unordered_map<TenantId, const RankDistEstimator*> estimators;
  for (const auto& [id, est] : hv_.estimators()) {
    estimators.emplace(id, &est);
  }
  std::size_t refined = 0;
  SynthesisPlan plan = refine_with_quantiles(
      hv_.plan(), estimators, config_.quantile_min_samples, &refined);
  if (refined == 0) return false;
  if (!hv_.install_refined(std::move(plan))) return false;
  ++refinements_;
  return true;
}

RuntimeController::RuntimeController(Hypervisor& hv, RuntimeConfig config)
    : hv_(hv), config_(config) {
  for (const auto& spec : hv_.tenants()) active_.push_back(spec.name);
}

std::vector<std::string> RuntimeController::compute_active(
    TimeNs now) const {
  std::vector<std::string> active;
  bool any_seen = false;
  for (const auto& spec : hv_.tenants()) {
    const RankDistEstimator* est = hv_.find_estimator(spec.id);
    if (est == nullptr || est->empty()) continue;
    any_seen = true;
    if (now - est->last_observation() <= config_.activity_window) {
      active.push_back(spec.name);
    }
  }
  if (!any_seen || active.empty()) {
    // Nothing observed yet (startup) or a global lull: keep every
    // tenant provisioned rather than tearing the plan down.
    active.clear();
    for (const auto& spec : hv_.tenants()) active.push_back(spec.name);
  }
  return active;
}

void RuntimeController::apply_hysteresis(TimeNs now) {
  if (config_.quarantine_clean_window <= 0 || quarantined_.empty()) return;
  for (const auto& name : quarantined_) {
    for (const auto& spec : hv_.tenants()) {
      if (spec.name != name) continue;
      const TimeNs last = hv_.monitor().last_violation_at(spec.id);
      if (last >= 0 && now - last >= config_.quarantine_clean_window) {
        // Forgiven: wipe the monitor state so the adversarial verdict
        // recomputes from post-release behaviour only. The jail tier
        // lifts on this very tick, since the tenant no longer appears
        // in monitor().adversarial().
        hv_.monitor().reset(spec.id);
        ++unquarantines_;
        if (tracer_ != nullptr &&
            tracer_->enabled(obs::TraceCategory::kRuntime)) {
          tracer_->instant(obs::TraceCategory::kRuntime, "unquarantine",
                           now, /*tid=*/0, "tenant", spec.id);
        }
      }
    }
  }
}

bool RuntimeController::tick(TimeNs now) {
  if (consecutive_failures_ > 0) {
    // Failure streak: the backoff schedule overrides the regular
    // cadence — retry exactly when the backoff expires.
    if (now < next_retry_at_) return false;
  } else if (last_reconfig_ >= 0 &&
             now - last_reconfig_ < config_.min_reconfig_interval) {
    return false;
  }
  const bool is_retry = consecutive_failures_ > 0;

  apply_hysteresis(now);

  std::vector<std::string> active = compute_active(now);
  std::sort(active.begin(), active.end());

  std::vector<std::string> quarantined;
  if (config_.quarantine_adversarial) {
    for (const TenantId id : hv_.monitor().adversarial()) {
      for (const auto& spec : hv_.tenants()) {
        if (spec.id == id &&
            std::find(active.begin(), active.end(), spec.name) !=
                active.end()) {
          quarantined.push_back(spec.name);
        }
      }
    }
    std::sort(quarantined.begin(), quarantined.end());
  }

  // A pending retry always attempts the recompile, even if nothing
  // else changed — the whole point is to heal the failed install.
  const bool changed = active != active_ || quarantined != quarantined_ ||
                       !hv_.has_plan() || is_retry;
  if (!changed) {
    // Even with a stable tenant set, live distributions drift: refresh
    // the quantile normalization if it is enabled.
    if (config_.quantile_normalization && hv_.has_plan() &&
        refine_quantiles()) {
      if (tracer_ != nullptr &&
          tracer_->enabled(obs::TraceCategory::kRuntime)) {
        tracer_->instant(obs::TraceCategory::kRuntime, "refine", now);
      }
      last_reconfig_ = now;
      return true;
    }
    return false;
  }

  // Build the effective policy: the operator policy restricted to the
  // clean active tenants, with quarantined tenants appended as one
  // strictly-lowest tier.
  std::vector<std::string> clean;
  for (const auto& name : active) {
    if (std::find(quarantined.begin(), quarantined.end(), name) ==
        quarantined.end()) {
      clean.push_back(name);
    }
  }
  OperatorPolicy base = hv_.policy();
  OperatorPolicy effective = base.restricted_to(clean);
  if (!quarantined.empty()) {
    auto tiers = effective.tiers();
    PriorityTier jail;
    SharingGroup cell;
    cell.tenants = quarantined;
    jail.groups.push_back(std::move(cell));
    tiers.push_back(std::move(jail));
    effective = OperatorPolicy(std::move(tiers));
  }

  // Optionally tighten declared bounds from live observations before
  // synthesizing.
  if (config_.tighten_bounds) {
    for (const auto& spec : hv_.tenants()) {
      auto& est = hv_.estimator(spec.id);
      if (est.samples() >= config_.tighten_min_samples) {
        TenantSpec tightened = spec;
        tightened.declared_bounds = est.bounds();
        hv_.upsert_tenant(std::move(tightened));
      }
    }
  }

  obs::Tracer* tr =
      tracer_ != nullptr && tracer_->enabled(obs::TraceCategory::kRuntime)
          ? tracer_
          : nullptr;

  const OperatorPolicy saved = hv_.policy();
  hv_.set_policy(effective);
  const auto wall0 = std::chrono::steady_clock::now();
  if (is_retry) {
    ++retries_;
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::kRuntime, "recompile:retry", now,
                  /*tid=*/0, "attempt",
                  static_cast<std::uint64_t>(consecutive_failures_));
    }
  }
  auto result = hv_.compile_for(effective.tenant_names());
  const auto recompile_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0)
          .count();
  hv_.set_policy(saved);  // the operator's intent is permanent
  if (!result.ok) {
    ++consecutive_failures_;
    const int shift = std::min(consecutive_failures_ - 1, 30);
    const TimeNs backoff = std::min(
        config_.retry_backoff_cap,
        static_cast<TimeNs>(config_.retry_backoff) << shift);
    next_retry_at_ = now + backoff;
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::kRuntime, "recompile:failed", now,
                  /*tid=*/0, "failures",
                  static_cast<std::uint64_t>(consecutive_failures_));
    }
    if (consecutive_failures_ > config_.retry_budget && !degraded_) {
      // Budget exhausted: the control plane cannot land a plan, so
      // stop trusting possibly-stale transforms — every port falls
      // back to scheduling by the tenant-assigned label.
      degraded_ = true;
      ++degraded_entries_;
      hv_.set_degraded(true);
      if (tr != nullptr) {
        tr->instant(obs::TraceCategory::kRuntime, "degraded:enter", now,
                    /*tid=*/0, "failures",
                    static_cast<std::uint64_t>(consecutive_failures_));
      }
      QV_WARN << "runtime controller degraded after "
              << consecutive_failures_ << " consecutive failures";
    }
    QV_WARN << "runtime adaptation failed: " << result.error;
    return false;
  }
  consecutive_failures_ = 0;
  next_retry_at_ = -1;
  if (degraded_) {
    degraded_ = false;
    ++recoveries_;
    hv_.set_degraded(false);
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::kRuntime, "degraded:exit", now);
    }
  }
  if (tr != nullptr) {
    // Span at the decision's simulated time; duration = wall-clock
    // synthesis + verification cost (what a reconfig costs to compute).
    tr->complete(obs::TraceCategory::kRuntime, "recompile", now,
                 static_cast<TimeNs>(recompile_ns), /*tid=*/0,
                 "active_tenants", active.size());
    if (quarantined != quarantined_) {
      tr->instant(obs::TraceCategory::kRuntime, "quarantine", now, /*tid=*/0,
                  "tenants", quarantined.size());
    }
  }
  if (config_.quantile_normalization) refine_quantiles();
  active_ = std::move(active);
  if (quarantined != quarantined_) {
    quarantines_ += quarantined.size() > quarantined_.size()
                        ? quarantined.size() - quarantined_.size()
                        : 0;
    quarantined_ = std::move(quarantined);
  }
  ++adaptations_;
  last_reconfig_ = now;
  return true;
}

}  // namespace qv::qvisor
