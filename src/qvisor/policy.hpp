// The operator's inter-tenant policy language (paper §3.1):
//
//   policy := tier (">>" tier)*          -- strict priority, isolation
//   tier   := group (">" group)*         -- best-effort preference
//   group  := tenant ("+" tenant)*       -- fair sharing
//
// Example from the paper: "T1 >> T2 > T3 + T4 >> T5" — T1 strictly above
// everything; then T2 preferred over the sharing pair {T3, T4}; then T5
// strictly below.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace qv::qvisor {

struct SharingGroup {
  std::vector<std::string> tenants;  ///< joined by '+'
};

struct PriorityTier {
  std::vector<SharingGroup> groups;  ///< ordered by '>' (first = preferred)
};

class OperatorPolicy {
 public:
  OperatorPolicy() = default;
  explicit OperatorPolicy(std::vector<PriorityTier> tiers)
      : tiers_(std::move(tiers)) {}

  const std::vector<PriorityTier>& tiers() const { return tiers_; }
  bool empty() const { return tiers_.empty(); }

  /// All tenant names, in policy order (tier-major, group-minor).
  std::vector<std::string> tenant_names() const;

  /// True if `name` appears anywhere in the policy.
  bool mentions(const std::string& name) const;

  /// Zero-based tier index of `name`; nullopt if absent.
  std::optional<std::size_t> tier_of(const std::string& name) const;

  /// Canonical text form ("T1 >> T2 > T3 + T4"). Parsing the result
  /// yields an equal policy (round-trip property).
  std::string to_string() const;

  /// The policy induced on a subset of tenants: absent tenants are
  /// removed; groups and tiers that become empty disappear. Used by the
  /// runtime controller when tenants leave the network (paper §2,
  /// Idea 2 — adapting the scheduling policy at runtime).
  OperatorPolicy restricted_to(const std::vector<std::string>& names) const;

  friend bool operator==(const OperatorPolicy& a, const OperatorPolicy& b);

 private:
  std::vector<PriorityTier> tiers_;
};

/// Outcome of parsing an operator policy string.
struct PolicyParseResult {
  std::optional<OperatorPolicy> policy;  ///< set on success
  std::string error;                     ///< human-readable, on failure
  std::size_t error_pos = 0;             ///< offset into the input

  bool ok() const { return policy.has_value(); }
};

/// Parse the `>>` / `>` / `+` language. Tenant names are
/// [A-Za-z_][A-Za-z0-9_-]*; whitespace is free. Duplicate tenant names
/// are rejected (a tenant cannot appear in two places).
PolicyParseResult parse_policy(const std::string& text);

}  // namespace qv::qvisor
