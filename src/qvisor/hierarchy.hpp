// Deploying hierarchical policies (paper §5 "Increasing specification
// expressivity"). A PolicyExpr can be realized two ways:
//
//  * EXACTLY, on a PIFO-tree scheduler: '>>' becomes a strict node,
//    '+' a weighted-fair node (weights honoured), '>' a weighted-fair
//    node with a geometric weight bias (best-effort preference), and
//    each tenant a rank-ordered leaf. No rank transformation needed —
//    the tree itself virtualizes the scheduler.
//
//  * APPROXIMATELY, flattened onto a single rank space for commodity
//    PIFO/SP-PIFO hardware: nested structure is projected onto band
//    allocation, and everything the projection loses is reported in
//    `approximations` — the paper's §5 vision of a synthesizer that
//    "would not just fail ... but propose partial specifications
//    implementable on the available resources".
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qvisor/policy_ast.hpp"
#include "qvisor/synthesizer.hpp"
#include "sched/pifo_tree.hpp"

namespace qv::qvisor {

struct TreeCompileResult {
  std::optional<sched::PifoTreeSpec> spec;
  std::map<std::string, std::size_t> leaf_of;  ///< tenant -> leaf index
  std::vector<std::string> notes;
  std::string error;

  bool ok() const { return spec.has_value(); }
};

class TreeCompiler {
 public:
  /// `prefer_weight_ratio` R realizes '>' as WFQ with geometric weights
  /// (R^k for the k-th-from-last group): preferred groups get most of
  /// the bandwidth but cannot starve the others — best-effort priority.
  explicit TreeCompiler(double prefer_weight_ratio = 4.0);

  /// Every tenant in `expr` must appear in `tenants` and vice versa.
  TreeCompileResult compile(const PolicyExpr& expr,
                            const std::vector<TenantSpec>& tenants) const;

 private:
  double prefer_ratio_;
};

/// Instantiate a scheduler from a compile result: packets are
/// classified to leaves by tenant id. Unknown tenants go to the last
/// leaf (best effort).
std::unique_ptr<sched::Scheduler> make_tree_scheduler(
    const TreeCompileResult& compiled,
    const std::vector<TenantSpec>& tenants,
    std::int64_t buffer_bytes = 0);

struct FlattenResult {
  std::optional<SynthesisPlan> plan;
  /// Semantics the flattening could not preserve (weights, nested
  /// ordering across sharing boundaries, ...).
  std::vector<std::string> approximations;
  std::string error;

  bool ok() const { return plan.has_value(); }
};

/// Project a hierarchical expression onto a single-PIFO synthesis plan.
FlattenResult flatten_to_plan(const PolicyExpr& expr,
                              const std::vector<TenantSpec>& tenants,
                              const SynthesizerConfig& config = {});

}  // namespace qv::qvisor
