#include "qvisor/fleet.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace qv::qvisor {

Fleet::Fleet(std::vector<TenantSpec> tenants, OperatorPolicy policy,
             BackendPtr backend, SynthesizerConfig config)
    : tenants_(std::move(tenants)), policy_(std::move(policy)),
      backend_(std::move(backend)), config_(config) {
  assert(backend_ != nullptr);
}

std::size_t Fleet::add_switch(const std::string& name) {
  Member member;
  member.name = name;
  member.hv = std::make_unique<Hypervisor>(tenants_, policy_, backend_,
                                           config_);
  if (tracer_ != nullptr) member.hv->set_tracer(tracer_);
  // Replay fleet-level contracts before enabling admission, so the new
  // switch carves the same guard config as its peers.
  for (const auto& contract : contracts_) member.hv->set_contract(contract);
  if (admission_.enabled) member.hv->set_admission(admission_);
  switches_.push_back(std::move(member));
  const std::size_t index = switches_.size() - 1;
  wire_install_fault(index);
  return index;
}

void Fleet::wire_install_fault(std::size_t switch_index) {
  Hypervisor& hv = *switches_[switch_index].hv;
  if (!install_fault_) {
    hv.set_install_fault({});
    return;
  }
  hv.set_install_fault([this, switch_index](std::uint64_t epoch) {
    return install_fault_(switch_index, epoch);
  });
}

void Fleet::set_install_fault(InstallFault fault) {
  install_fault_ = std::move(fault);
  for (std::size_t i = 0; i < switches_.size(); ++i) wire_install_fault(i);
}

void Fleet::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& member : switches_) member.hv->set_tracer(tracer);
}

Hypervisor& Fleet::hypervisor(std::size_t switch_index) {
  return *switches_.at(switch_index).hv;
}

const std::string& Fleet::switch_name(std::size_t switch_index) const {
  return switches_.at(switch_index).name;
}

Hypervisor::CompileResult Fleet::compile() {
  std::vector<std::string> names;
  for (const auto& t : tenants_) names.push_back(t.name);
  return compile_for(names);
}

Hypervisor::CompileResult Fleet::compile_for(
    const std::vector<std::string>& active_names, TimeNs now) {
  assert(!switches_.empty());
  const TimeNs ts = now < 0 ? 0 : now;
  if (staged_group_ != nullptr) {
    Hypervisor::CompileResult result;
    result.error = "staged rollout in progress (epoch " +
                   std::to_string(staged_epoch_) +
                   "); finalize or abort it first";
    return result;
  }
  // Fleet-level validation: the shared policy must only name registered
  // tenants. (Hypervisor::compile_for restricts silently — correct for
  // the runtime path, but a misconfigured fleet policy must not deploy.)
  for (const auto& name : policy_.tenant_names()) {
    const bool known =
        std::any_of(tenants_.begin(), tenants_.end(),
                    [&](const TenantSpec& t) { return t.name == name; });
    if (!known) {
      Hypervisor::CompileResult result;
      result.error = "fleet policy mentions unknown tenant: " + name;
      return result;
    }
  }
  // Phase 1 — validate once for the whole fleet: all switches share one
  // configuration, so a dry run on a scratch hypervisor decides whether
  // the plan is deployable anywhere.
  Hypervisor scratch(tenants_, policy_, backend_, config_);
  auto result = scratch.compile_for(active_names);
  if (!result.ok) return result;

  // Phase 2 — commit everywhere at one fleet epoch. A switch agent may
  // still reject its install (injected fault / unreachable switch);
  // partial failure rolls every already-committed switch back to its
  // last-known-good plan, so the fleet never runs mixed epochs.
  const std::uint64_t epoch = ++epoch_counter_;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    Member& member = switches_[i];
    member.hv->set_policy(policy_);
    for (const auto& spec : tenants_) member.hv->upsert_tenant(spec);
    const auto deployed = member.hv->commit_for(active_names, epoch);
    if (deployed.ok) continue;

    ++failed_installs_;
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "install:failed", ts,
                  /*tid=*/0, "switch", i);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (switches_[j].hv->rollback()) {
        ++rollbacks_;
        if (obs::Tracer* tr = runtime_tracer()) {
          tr->instant(obs::TraceCategory::kRuntime, "rollback", ts,
                      /*tid=*/0, "switch", j);
        }
      }
      // A switch whose rollback push is ALSO rejected stays dirty at
      // the aborted epoch; reconcile() heals it when it recovers.
    }
    Hypervisor::CompileResult failed;
    failed.error = "install failed on switch '" + member.name +
                   "' at epoch " + std::to_string(epoch) + ": " +
                   deployed.error + " (fleet rolled back to epoch " +
                   std::to_string(committed_epoch_) + ")";
    return failed;
  }
  committed_epoch_ = epoch;
  committed_active_ = active_names;
  committed_group_.reset();  // per-tenant mode is the reconcile target
  return result;
}

bool Fleet::commit_group_plan(
    std::shared_ptr<const control::CompiledGroupPlan> plan,
    const control::GroupPlanDelta* delta, TimeNs now, std::string* error) {
  assert(!switches_.empty());
  const TimeNs ts = now < 0 ? 0 : now;
  if (plan == nullptr || plan->empty()) {
    if (error != nullptr) *error = "empty group plan";
    return false;
  }
  if (staged_group_ != nullptr) {
    if (error != nullptr) {
      *error = "staged rollout in progress (epoch " +
               std::to_string(staged_epoch_) +
               "); finalize or abort it first";
    }
    return false;
  }
  // The group compiler already validated the band layout (phase 1);
  // this is the fleet-wide phase-2 commit at one epoch.
  const std::uint64_t epoch = ++epoch_counter_;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    Member& member = switches_[i];
    if (member.hv->commit_group_plan(plan, epoch, delta)) continue;

    ++failed_installs_;
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "install:failed", ts,
                  /*tid=*/0, "switch", i);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (switches_[j].hv->rollback()) {
        ++rollbacks_;
        if (obs::Tracer* tr = runtime_tracer()) {
          tr->instant(obs::TraceCategory::kRuntime, "rollback", ts,
                      /*tid=*/0, "switch", j);
        }
      }
      // A switch whose rollback push is ALSO rejected stays dirty at
      // the aborted epoch; reconcile() heals it when it recovers.
    }
    if (error != nullptr) {
      *error = "group install failed on switch '" + member.name +
               "' at epoch " + std::to_string(epoch) +
               " (fleet rolled back to epoch " +
               std::to_string(committed_epoch_) + ")";
    }
    return false;
  }
  committed_epoch_ = epoch;
  committed_group_ = std::move(plan);
  committed_active_.clear();
  return true;
}

bool Fleet::stage_group_plan(
    std::shared_ptr<const control::CompiledGroupPlan> plan,
    const control::GroupPlanDelta* delta, std::string* error) {
  if (plan == nullptr || plan->empty()) {
    if (error != nullptr) *error = "empty group plan";
    return false;
  }
  if (staged_group_ != nullptr) {
    if (error != nullptr) {
      *error = "a rollout is already staged at epoch " +
               std::to_string(staged_epoch_);
    }
    return false;
  }
  staged_group_ = std::move(plan);
  staged_delta_.reset();
  if (delta != nullptr) staged_delta_ = *delta;
  staged_epoch_ = ++epoch_counter_;
  return true;
}

bool Fleet::commit_staged_to(const std::vector<std::size_t>& cohort,
                             TimeNs now, std::string* error) {
  const TimeNs ts = now < 0 ? 0 : now;
  if (staged_group_ == nullptr) {
    if (error != nullptr) *error = "no staged rollout";
    return false;
  }
  for (std::size_t idx : cohort) {
    if (idx >= switches_.size()) {
      if (error != nullptr) {
        *error = "cohort names unknown switch index " + std::to_string(idx);
      }
      return false;
    }
  }
  const control::GroupPlanDelta* delta =
      staged_delta_.has_value() ? &*staged_delta_ : nullptr;
  std::vector<std::size_t> fresh;  // committed by THIS call
  for (std::size_t idx : cohort) {
    Member& member = switches_[idx];
    // Already at the staged epoch (earlier wave, or the part of a
    // failed wave a retry re-covers): skip, so retries are idempotent.
    if (member.hv->plan_epoch() == staged_epoch_) continue;
    if (member.hv->commit_group_plan(staged_group_, staged_epoch_, delta)) {
      fresh.push_back(idx);
      continue;
    }
    ++failed_installs_;
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "wave:install_failed", ts,
                  /*tid=*/0, "switch", idx);
    }
    // Per-wave two-phase: undo this wave's fresh commits; switches from
    // earlier waves keep the staged epoch (the rollout engine decides
    // whether to retry the wave or abort the whole rollout).
    for (std::size_t j : fresh) {
      if (switches_[j].hv->rollback()) {
        ++rollbacks_;
        if (obs::Tracer* tr = runtime_tracer()) {
          tr->instant(obs::TraceCategory::kRuntime, "rollback", ts,
                      /*tid=*/0, "switch", j);
        }
      }
      // A rejected rollback push leaves the switch dirty at the staged
      // epoch; abort_staged()/reconcile() heal it later.
    }
    if (error != nullptr) {
      *error = "staged install failed on switch '" + member.name +
               "' at epoch " + std::to_string(staged_epoch_) +
               " (wave rolled back)";
    }
    return false;
  }
  return true;
}

bool Fleet::finalize_staged(std::string* error) {
  if (staged_group_ == nullptr) {
    if (error != nullptr) *error = "no staged rollout";
    return false;
  }
  for (const auto& member : switches_) {
    if (!member.hv->has_group_plan() ||
        member.hv->plan_epoch() != staged_epoch_) {
      if (error != nullptr) {
        *error = "switch '" + member.name + "' is not at staged epoch " +
                 std::to_string(staged_epoch_) + "; cannot finalize";
      }
      return false;
    }
  }
  committed_epoch_ = staged_epoch_;
  committed_group_ = std::move(staged_group_);
  committed_active_.clear();
  staged_group_.reset();
  staged_delta_.reset();
  staged_epoch_ = 0;
  return true;
}

void Fleet::abort_staged(TimeNs now) {
  if (staged_group_ == nullptr) return;
  const TimeNs ts = now < 0 ? 0 : now;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    Member& member = switches_[i];
    if (member.hv->plan_epoch() != staged_epoch_) continue;
    // Each staged switch committed exactly once at the staged epoch, so
    // its single-level undo slot holds last-known-good.
    if (member.hv->rollback()) {
      ++rollbacks_;
      if (obs::Tracer* tr = runtime_tracer()) {
        tr->instant(obs::TraceCategory::kRuntime, "abort:rollback", ts,
                    /*tid=*/0, "switch", i);
      }
    } else if (committed_epoch_ == 0) {
      // Nothing was ever committed fleet-wide: there is no LKG for
      // reconcile() to converge on, so a stuck switch falls back to the
      // safe empty-plan path instead of keeping the aborted plan.
      member.hv->clear_plan();
    }
    // Otherwise the switch stays dirty at the aborted epoch and
    // reconcile() (anti-entropy against LKG) heals it.
  }
  staged_group_.reset();
  staged_delta_.reset();
  staged_epoch_ = 0;
}

std::size_t Fleet::staged_switches() const {
  if (staged_group_ == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& member : switches_) {
    if (member.hv->plan_epoch() == staged_epoch_) ++n;
  }
  return n;
}

std::size_t Fleet::reconcile(TimeNs now) {
  if (committed_epoch_ == 0) return 0;  // nothing ever deployed
  const TimeNs ts = now < 0 ? 0 : now;
  std::size_t healed = 0;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    Member& member = switches_[i];
    const bool consistent =
        (committed_group_ != nullptr ? member.hv->has_group_plan()
                                     : member.hv->has_plan()) &&
        member.hv->plan_epoch() == committed_epoch_;
    if (consistent) continue;
    if (committed_group_ != nullptr) {
      // Group mode: the shared compiled plan IS the configuration —
      // re-push it whole (no delta: the dirty switch's state is stale).
      if (!member.hv->commit_group_plan(committed_group_,
                                        committed_epoch_)) {
        continue;  // still unreachable; try next pass
      }
    } else {
      member.hv->set_policy(policy_);
      for (const auto& spec : tenants_) member.hv->upsert_tenant(spec);
      const auto repushed =
          member.hv->commit_for(committed_active_, committed_epoch_);
      if (!repushed.ok) continue;  // still unreachable; try next pass
    }
    ++reconciles_;
    ++healed;
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "reconcile", ts, /*tid=*/0,
                  "switch", i);
    }
  }
  return healed;
}

bool Fleet::epochs_consistent() const {
  if (committed_epoch_ == 0) return true;
  for (const auto& member : switches_) {
    const bool installed = committed_group_ != nullptr
                               ? member.hv->has_group_plan()
                               : member.hv->has_plan();
    if (!installed || member.hv->plan_epoch() != committed_epoch_) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<sched::Scheduler> Fleet::make_port_scheduler(
    std::size_t switch_index) {
  return switches_.at(switch_index).hv->make_port_scheduler();
}

std::unordered_map<TenantId, std::uint64_t> Fleet::per_tenant_packets()
    const {
  std::unordered_map<TenantId, std::uint64_t> out;
  for (const auto& member : switches_) {
    for (const auto& [tenant, count] : member.hv->per_tenant_packets()) {
      out[tenant] += count;
    }
  }
  return out;
}

void Fleet::export_metrics(obs::Registry& reg,
                           const std::string& prefix) const {
  reg.counter_view(prefix + ".rollbacks", &rollbacks_);
  reg.counter_view(prefix + ".reconciles", &reconciles_);
  reg.counter_view(prefix + ".failed_installs", &failed_installs_);
  reg.gauge(prefix + ".committed_epoch",
            [this] { return static_cast<double>(committed_epoch_); });
  reg.gauge(prefix + ".degraded",
            [this] { return degraded_ ? 1.0 : 0.0; });
  for (const auto& member : switches_) {
    member.hv->export_metrics(reg, prefix + "." + member.name);
  }
  for (const auto& spec : tenants_) {
    const TenantId id = spec.id;
    reg.gauge(prefix + ".fleet.tenant." + spec.name + ".packets",
              [this, id] {
                const auto counts = per_tenant_packets();
                const auto it = counts.find(id);
                return it == counts.end() ? 0.0
                                          : static_cast<double>(it->second);
              });
  }
}

std::optional<TimeNs> Fleet::last_seen(TenantId tenant) const {
  std::optional<TimeNs> latest;
  for (const auto& member : switches_) {
    const RankDistEstimator* est = member.hv->find_estimator(tenant);
    if (est == nullptr || est->empty()) continue;
    if (!latest || est->last_observation() > *latest) {
      latest = est->last_observation();
    }
  }
  return latest;
}

std::vector<TenantId> Fleet::adversarial() const {
  std::vector<TenantId> out;
  for (const auto& member : switches_) {
    for (const TenantId id : member.hv->monitor().adversarial()) {
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Fleet::set_degraded(bool degraded) {
  degraded_ = degraded;
  for (auto& member : switches_) member.hv->set_degraded(degraded);
}

TimeNs Fleet::last_violation_at(TenantId tenant) const {
  TimeNs latest = -1;
  for (const auto& member : switches_) {
    latest = std::max(latest,
                      member.hv->monitor().last_violation_at(tenant));
  }
  return latest;
}

void Fleet::reset_monitor(TenantId tenant) {
  for (auto& member : switches_) member.hv->monitor().reset(tenant);
}

void Fleet::set_policy(OperatorPolicy policy) {
  policy_ = std::move(policy);
}

void Fleet::set_contract(const TenantContract& contract) {
  for (auto& existing : contracts_) {
    if (existing.tenant == contract.tenant) {
      existing = contract;
      for (auto& member : switches_) member.hv->set_contract(contract);
      return;
    }
  }
  contracts_.push_back(contract);
  for (auto& member : switches_) member.hv->set_contract(contract);
}

void Fleet::set_admission(const AdmissionSettings& settings) {
  admission_ = settings;
  for (auto& member : switches_) member.hv->set_admission(settings);
}

void Fleet::upsert_tenant(TenantSpec spec) {
  for (auto& existing : tenants_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  tenants_.push_back(std::move(spec));
}

// --- FleetController --------------------------------------------------------

FleetController::FleetController(Fleet& fleet, RuntimeConfig config)
    : fleet_(fleet), config_(config) {
  for (const auto& spec : fleet_.tenants()) active_.push_back(spec.name);
}

std::vector<std::string> FleetController::compute_active(TimeNs now) const {
  std::vector<std::string> active;
  bool any_seen = false;
  for (const auto& spec : fleet_.tenants()) {
    const auto seen = fleet_.last_seen(spec.id);
    if (!seen) continue;
    any_seen = true;
    if (now - *seen <= config_.activity_window) {
      active.push_back(spec.name);
    }
  }
  if (!any_seen || active.empty()) {
    active.clear();
    for (const auto& spec : fleet_.tenants()) active.push_back(spec.name);
  }
  return active;
}

void FleetController::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  fleet_.set_tracer(tracer);
}

void FleetController::apply_hysteresis(TimeNs now) {
  if (config_.quarantine_clean_window <= 0 || quarantined_.empty()) return;
  for (const auto& name : quarantined_) {
    for (const auto& spec : fleet_.tenants()) {
      if (spec.name != name) continue;
      const TimeNs last = fleet_.last_violation_at(spec.id);
      if (last >= 0 && now - last >= config_.quarantine_clean_window) {
        fleet_.reset_monitor(spec.id);
        ++unquarantines_;
        if (obs::Tracer* tr = runtime_tracer()) {
          tr->instant(obs::TraceCategory::kRuntime, "unquarantine", now,
                      /*tid=*/0, "tenant", spec.id);
        }
      }
    }
  }
}

bool FleetController::tick(TimeNs now) {
  // Anti-entropy always runs: switches that missed the committed epoch
  // (failed rollback push, agent reboot) heal on the controller's
  // cadence regardless of backoff or activity state.
  fleet_.reconcile(now);

  if (consecutive_failures_ > 0) {
    if (now < next_retry_at_) return false;
  } else if (last_reconfig_ >= 0 &&
             now - last_reconfig_ < config_.min_reconfig_interval) {
    return false;
  }
  const bool is_retry = consecutive_failures_ > 0;

  apply_hysteresis(now);

  std::vector<std::string> active = compute_active(now);
  std::sort(active.begin(), active.end());

  std::vector<std::string> quarantined;
  if (config_.quarantine_adversarial) {
    for (const TenantId id : fleet_.adversarial()) {
      for (const auto& spec : fleet_.tenants()) {
        if (spec.id == id &&
            std::find(active.begin(), active.end(), spec.name) !=
                active.end()) {
          quarantined.push_back(spec.name);
        }
      }
    }
    std::sort(quarantined.begin(), quarantined.end());
  }

  const bool changed =
      active != active_ || quarantined != quarantined_ || is_retry ||
      fleet_.committed_epoch() == 0;
  if (!changed) return false;

  // Effective policy: operator policy restricted to the clean active
  // tenants, quarantined tenants appended as one strictly-lowest tier
  // (same jail shape as RuntimeController).
  std::vector<std::string> clean;
  for (const auto& name : active) {
    if (std::find(quarantined.begin(), quarantined.end(), name) ==
        quarantined.end()) {
      clean.push_back(name);
    }
  }
  const OperatorPolicy saved = fleet_.policy();
  OperatorPolicy effective = saved.restricted_to(clean);
  if (!quarantined.empty()) {
    auto tiers = effective.tiers();
    PriorityTier jail;
    SharingGroup cell;
    cell.tenants = quarantined;
    jail.groups.push_back(std::move(cell));
    tiers.push_back(std::move(jail));
    effective = OperatorPolicy(std::move(tiers));
  }

  if (is_retry) {
    ++retries_;
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "recompile:retry", now,
                  /*tid=*/0, "attempt",
                  static_cast<std::uint64_t>(consecutive_failures_));
    }
  }
  fleet_.set_policy(effective);
  const auto result = fleet_.compile_for(effective.tenant_names(), now);
  fleet_.set_policy(saved);  // the operator's intent is permanent
  if (!result.ok) {
    ++consecutive_failures_;
    const int shift = std::min(consecutive_failures_ - 1, 30);
    const TimeNs backoff = std::min(
        config_.retry_backoff_cap,
        static_cast<TimeNs>(config_.retry_backoff) << shift);
    next_retry_at_ = now + backoff;
    if (consecutive_failures_ > config_.retry_budget && !degraded_) {
      degraded_ = true;
      ++degraded_entries_;
      fleet_.set_degraded(true);
      if (obs::Tracer* tr = runtime_tracer()) {
        tr->instant(obs::TraceCategory::kRuntime, "degraded:enter", now,
                    /*tid=*/0, "failures",
                    static_cast<std::uint64_t>(consecutive_failures_));
      }
      QV_WARN << "fleet controller degraded after "
              << consecutive_failures_ << " consecutive failures";
    }
    QV_WARN << "fleet adaptation failed: " << result.error;
    return false;
  }
  consecutive_failures_ = 0;
  next_retry_at_ = -1;
  if (degraded_) {
    degraded_ = false;
    ++recoveries_;
    fleet_.set_degraded(false);
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "degraded:exit", now);
    }
  }
  if (quarantined != quarantined_) {
    quarantines_ += quarantined.size() > quarantined_.size()
                        ? quarantined.size() - quarantined_.size()
                        : 0;
    if (obs::Tracer* tr = runtime_tracer()) {
      tr->instant(obs::TraceCategory::kRuntime, "quarantine", now,
                  /*tid=*/0, "tenants", quarantined.size());
    }
    quarantined_ = std::move(quarantined);
  }
  active_ = std::move(active);
  ++adaptations_;
  last_reconfig_ = now;
  return true;
}

}  // namespace qv::qvisor
