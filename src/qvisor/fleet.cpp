#include "qvisor/fleet.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace qv::qvisor {

Fleet::Fleet(std::vector<TenantSpec> tenants, OperatorPolicy policy,
             BackendPtr backend, SynthesizerConfig config)
    : tenants_(std::move(tenants)), policy_(std::move(policy)),
      backend_(std::move(backend)), config_(config) {
  assert(backend_ != nullptr);
}

std::size_t Fleet::add_switch(const std::string& name) {
  Member member;
  member.name = name;
  member.hv = std::make_unique<Hypervisor>(tenants_, policy_, backend_,
                                           config_);
  switches_.push_back(std::move(member));
  return switches_.size() - 1;
}

Hypervisor& Fleet::hypervisor(std::size_t switch_index) {
  return *switches_.at(switch_index).hv;
}

const std::string& Fleet::switch_name(std::size_t switch_index) const {
  return switches_.at(switch_index).name;
}

Hypervisor::CompileResult Fleet::compile() {
  std::vector<std::string> names;
  for (const auto& t : tenants_) names.push_back(t.name);
  return compile_for(names);
}

Hypervisor::CompileResult Fleet::compile_for(
    const std::vector<std::string>& active_names) {
  assert(!switches_.empty());
  // Fleet-level validation: the shared policy must only name registered
  // tenants. (Hypervisor::compile_for restricts silently — correct for
  // the runtime path, but a misconfigured fleet policy must not deploy.)
  for (const auto& name : policy_.tenant_names()) {
    const bool known =
        std::any_of(tenants_.begin(), tenants_.end(),
                    [&](const TenantSpec& t) { return t.name == name; });
    if (!known) {
      Hypervisor::CompileResult result;
      result.error = "fleet policy mentions unknown tenant: " + name;
      return result;
    }
  }
  // All switches share one configuration, so one dry run decides for
  // the whole fleet: validate on the first switch WITHOUT installing,
  // then deploy everywhere only on success.
  // (Hypervisor::compile_for installs on success, so run it on a
  // scratch hypervisor first.)
  Hypervisor scratch(tenants_, policy_, backend_, config_);
  auto result = scratch.compile_for(active_names);
  if (!result.ok) return result;

  for (auto& member : switches_) {
    member.hv->set_policy(policy_);
    for (const auto& spec : tenants_) member.hv->upsert_tenant(spec);
    const auto deployed = member.hv->compile_for(active_names);
    // The configuration is identical, so this cannot fail differently.
    assert(deployed.ok);
    (void)deployed;
  }
  return result;
}

std::unique_ptr<sched::Scheduler> Fleet::make_port_scheduler(
    std::size_t switch_index) {
  return switches_.at(switch_index).hv->make_port_scheduler();
}

std::unordered_map<TenantId, std::uint64_t> Fleet::per_tenant_packets()
    const {
  std::unordered_map<TenantId, std::uint64_t> out;
  for (const auto& member : switches_) {
    for (const auto& [tenant, count] : member.hv->per_tenant_packets()) {
      out[tenant] += count;
    }
  }
  return out;
}

void Fleet::export_metrics(obs::Registry& reg,
                           const std::string& prefix) const {
  for (const auto& member : switches_) {
    member.hv->export_metrics(reg, prefix + "." + member.name);
  }
  for (const auto& spec : tenants_) {
    const TenantId id = spec.id;
    reg.gauge(prefix + ".fleet.tenant." + spec.name + ".packets",
              [this, id] {
                const auto counts = per_tenant_packets();
                const auto it = counts.find(id);
                return it == counts.end() ? 0.0
                                          : static_cast<double>(it->second);
              });
  }
}

std::optional<TimeNs> Fleet::last_seen(TenantId tenant) const {
  std::optional<TimeNs> latest;
  for (const auto& member : switches_) {
    const RankDistEstimator* est = member.hv->find_estimator(tenant);
    if (est == nullptr || est->empty()) continue;
    if (!latest || est->last_observation() > *latest) {
      latest = est->last_observation();
    }
  }
  return latest;
}

std::vector<TenantId> Fleet::adversarial() const {
  std::vector<TenantId> out;
  for (const auto& member : switches_) {
    for (const TenantId id : member.hv->monitor().adversarial()) {
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Fleet::set_policy(OperatorPolicy policy) {
  policy_ = std::move(policy);
}

void Fleet::upsert_tenant(TenantSpec spec) {
  for (auto& existing : tenants_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  tenants_.push_back(std::move(spec));
}

// --- FleetController --------------------------------------------------------

FleetController::FleetController(Fleet& fleet, RuntimeConfig config)
    : fleet_(fleet), config_(config) {
  for (const auto& spec : fleet_.tenants()) active_.push_back(spec.name);
}

std::vector<std::string> FleetController::compute_active(TimeNs now) const {
  std::vector<std::string> active;
  bool any_seen = false;
  for (const auto& spec : fleet_.tenants()) {
    const auto seen = fleet_.last_seen(spec.id);
    if (!seen) continue;
    any_seen = true;
    if (now - *seen <= config_.activity_window) {
      active.push_back(spec.name);
    }
  }
  if (!any_seen || active.empty()) {
    active.clear();
    for (const auto& spec : fleet_.tenants()) active.push_back(spec.name);
  }
  return active;
}

bool FleetController::tick(TimeNs now) {
  if (last_reconfig_ >= 0 &&
      now - last_reconfig_ < config_.min_reconfig_interval) {
    return false;
  }
  std::vector<std::string> active = compute_active(now);
  std::sort(active.begin(), active.end());
  if (active == active_) return false;

  const auto result = fleet_.compile_for(active);
  if (!result.ok) {
    QV_WARN << "fleet adaptation failed: " << result.error;
    return false;
  }
  active_ = std::move(active);
  ++adaptations_;
  last_reconfig_ = now;
  return true;
}

}  // namespace qv::qvisor
