#include "qvisor/qvisor.hpp"

#include <algorithm>
#include <cassert>

namespace qv::qvisor {

// --- QvisorPort ----------------------------------------------------------

QvisorPort::QvisorPort(Hypervisor& hv,
                       std::unique_ptr<sched::Scheduler> inner)
    : hv_(hv), inner_(std::move(inner)) {
  assert(inner_ != nullptr);
  hv_.attach(this);
  if (hv_.has_plan()) {
    pre_.install(hv_.plan());
    installed_epoch_ = hv_.plan_epoch();
  } else if (hv_.has_group_plan()) {
    pre_.install_groups(*hv_.group_plan());
    installed_epoch_ = hv_.plan_epoch();
  }
}

QvisorPort::~QvisorPort() { hv_.detach(this); }

bool QvisorPort::enqueue(const Packet& p, TimeNs now) {
  if (installed_epoch_ != hv_.plan_epoch()) ++epoch_mismatches_;
  Packet q = p;
  hv_.observe(q, now);
  if (!pre_.process(q, now)) {
    ++counters_.dropped;
    counters_.dropped_bytes += static_cast<std::uint64_t>(q.size_bytes);
    return false;
  }
  const bool accepted = inner_->enqueue(q, now);
  if (accepted) {
    ++counters_.enqueued;
  } else {
    // The admission guard charged occupancy at admit time; the
    // hardware scheduler rejecting the packet afterwards must not
    // leak that charge.
    pre_.admission_release(q.tenant, q.size_bytes);
    ++counters_.dropped;
    counters_.dropped_bytes += static_cast<std::uint64_t>(q.size_bytes);
  }
  return accepted;
}

std::size_t QvisorPort::enqueue_batch(std::span<Packet> batch, TimeNs now) {
  if (installed_epoch_ != hv_.plan_epoch()) epoch_mismatches_ += batch.size();
  for (const Packet& p : batch) hv_.observe(p, now);
  const std::size_t kept = pre_.process(batch, now);
  const std::size_t pre_dropped = batch.size() - kept;
  counters_.dropped += pre_dropped;
  for (std::size_t i = kept; i < batch.size(); ++i) {
    counters_.dropped_bytes +=
        static_cast<std::uint64_t>(batch[i].size_bytes);
  }
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kept; ++i) {
    const Packet& q = batch[i];
    if (inner_->enqueue(q, now)) {
      ++counters_.enqueued;
      ++accepted;
    } else {
      pre_.admission_release(q.tenant, q.size_bytes);
      ++counters_.dropped;
      counters_.dropped_bytes += static_cast<std::uint64_t>(q.size_bytes);
    }
  }
  return accepted;
}

std::optional<Packet> QvisorPort::dequeue(TimeNs now) {
  auto p = inner_->dequeue(now);
  if (p) {
    ++counters_.dequeued;
    pre_.admission_release(p->tenant, p->size_bytes);
  }
  return p;
}

std::string QvisorPort::name() const {
  return "qvisor(" + inner_->name() + ")";
}

void QvisorPort::install(const SynthesisPlan& plan, std::uint64_t epoch) {
  pre_.install(plan);
  installed_epoch_ = epoch;
}

void QvisorPort::install_groups(const control::CompiledGroupPlan& plan,
                                std::uint64_t epoch) {
  pre_.install_groups(plan);
  installed_epoch_ = epoch;
}

void QvisorPort::apply_group_delta(const control::CompiledGroupPlan& plan,
                                   const control::GroupPlanDelta& delta,
                                   std::uint64_t epoch) {
  // A port attached after the last full install (or healed from per-
  // tenant mode) has no compatible group table; fall back to a full
  // install so the delta path never leaves a port behind.
  if (!pre_.apply_group_delta(plan, delta)) pre_.install_groups(plan);
  installed_epoch_ = epoch;
}

void QvisorPort::replace_inner(std::unique_ptr<sched::Scheduler> inner) {
  assert(inner_->empty());
  assert(inner != nullptr);
  inner_ = std::move(inner);
}

void QvisorPort::configure_admission(AdmissionConfig config) {
  pre_.configure_admission(std::move(config));
  pre_.admission()->set_drop_hook(
      [this](TenantId tenant, std::int32_t bytes, AdmitResult r, TimeNs now) {
        hv_.on_admission_drop(tenant, bytes, r, now);
      });
}

// --- Hypervisor ------------------------------------------------------------

Hypervisor::Hypervisor(std::vector<TenantSpec> tenants,
                       OperatorPolicy policy, BackendPtr backend,
                       SynthesizerConfig config)
    : tenants_(std::move(tenants)), policy_(std::move(policy)),
      backend_(std::move(backend)), synthesizer_([&] {
        SynthesizerConfig c = config;
        // The backend's rank space is authoritative unless the caller
        // asked for something smaller.
        c.rank_space = std::min(c.rank_space,
                                this->backend_->capabilities().rank_space);
        return c;
      }()) {
  assert(backend_ != nullptr);
  // Default contracts: police declared rank bounds, no rate limit.
  for (const auto& spec : tenants_) {
    TenantContract contract;
    contract.tenant = spec.id;
    contract.rank_min = spec.declared_bounds.min;
    contract.rank_max = spec.declared_bounds.max;
    monitor_.set_contract(contract);
  }
}

Hypervisor::~Hypervisor() {
  // Ports must not outlive the hypervisor; this assert documents it.
  assert(ports_.empty() &&
         "destroy QVISOR ports (the Network) before the Hypervisor");
}

Hypervisor::CompileResult Hypervisor::compile() {
  // Strict full-configuration compile: the policy and the tenant set
  // must match exactly (a misspelled policy name must NOT silently
  // drop a tenant — the synthesizer reports it).
  return compile_impl(tenants_, policy_, epoch_hwm_ + 1);
}

Hypervisor::CompileResult Hypervisor::compile_for(
    const std::vector<std::string>& active_names) {
  return commit_for(active_names, epoch_hwm_ + 1);
}

Hypervisor::CompileResult Hypervisor::commit_for(
    const std::vector<std::string>& active_names, std::uint64_t epoch) {
  CompileResult result;
  const OperatorPolicy restricted = policy_.restricted_to(active_names);
  if (restricted.empty()) {
    result.error = "no active tenant appears in the policy";
    return result;
  }
  std::vector<TenantSpec> active;
  for (const auto& spec : tenants_) {
    if (restricted.mentions(spec.name)) active.push_back(spec);
  }
  return compile_impl(active, restricted, epoch);
}

Hypervisor::CompileResult Hypervisor::compile_impl(
    const std::vector<TenantSpec>& specs, const OperatorPolicy& policy,
    std::uint64_t epoch) {
  // Phase 1 — validate: synthesize and statically verify without
  // touching the installed plan.
  CompileResult result;
  auto synth = synthesizer_.synthesize(specs, policy);
  if (!synth.ok()) {
    result.error = synth.error;
    return result;
  }
  result.report = analyzer_.analyze(*synth.plan, specs);
  if (result.report.has_violations()) {
    result.error = "static analysis rejected the plan:\n" +
                   result.report.to_string();
    return result;
  }
  result.guarantees = backend_->guarantees(*synth.plan);

  // Phase 2 — commit: the switch agent may still reject the install
  // (injected fault / unreachable switch). The validated plan is
  // discarded and the running plan + epoch stay untouched.
  if (install_fault_ && install_fault_(epoch)) {
    ++failed_installs_;
    result.error =
        "switch agent rejected install at epoch " + std::to_string(epoch);
    return result;
  }
  prev_plan_ = std::move(plan_);
  prev_group_plan_ = std::move(group_plan_);
  prev_epoch_ = plan_epoch_;
  prev_valid_ = true;
  plan_ = std::move(*synth.plan);
  group_plan_.reset();
  monitor_.set_group_index(nullptr);
  plan_epoch_ = epoch;
  epoch_hwm_ = std::max(epoch_hwm_, epoch);
  ++compile_count_;
  push_plan();
  result.ok = true;
  return result;
}

bool Hypervisor::commit_group_plan(
    std::shared_ptr<const control::CompiledGroupPlan> plan,
    std::uint64_t epoch, const control::GroupPlanDelta* delta) {
  if (plan == nullptr || plan->empty()) return false;
  // Phase 2 only: the group compiler already validated the band layout.
  // The switch agent may still reject the commit (injected fault /
  // unreachable switch) — the running plan and epoch stay untouched.
  if (install_fault_ && install_fault_(epoch)) {
    ++failed_installs_;
    return false;
  }
  const bool incremental = delta != nullptr && !delta->full &&
                           group_plan_ != nullptr &&
                           group_plan_->group_count() == plan->group_count();
  prev_plan_ = std::move(plan_);
  prev_group_plan_ = std::move(group_plan_);
  prev_epoch_ = plan_epoch_;
  prev_valid_ = true;
  plan_.reset();
  group_plan_ = std::move(plan);
  monitor_.set_group_index(group_plan_->index);
  plan_epoch_ = epoch;
  epoch_hwm_ = std::max(epoch_hwm_, epoch);
  ++compile_count_;
  for (QvisorPort* port : ports_) {
    if (incremental) {
      port->apply_group_delta(*group_plan_, *delta, plan_epoch_);
    } else {
      port->install_groups(*group_plan_, plan_epoch_);
    }
    if (port->inner().empty()) {
      port->replace_inner(backend_->instantiate(group_plan_->table));
    }
  }
  return true;
}

bool Hypervisor::rollback() {
  if (!prev_valid_) return false;
  // A rollback is itself an install: a dead switch fails it too and
  // stays dirty at the aborted epoch until anti-entropy heals it.
  if (install_fault_ && install_fault_(prev_epoch_)) {
    ++failed_installs_;
    return false;
  }
  plan_ = std::move(prev_plan_);
  group_plan_ = std::move(prev_group_plan_);
  monitor_.set_group_index(group_plan_ ? group_plan_->index : nullptr);
  prev_plan_.reset();
  plan_epoch_ = prev_epoch_;
  prev_valid_ = false;  // single-level undo, consumed
  ++rollbacks_;
  push_plan();
  return true;
}

void Hypervisor::clear_plan() {
  plan_.reset();
  group_plan_.reset();
  monitor_.set_group_index(nullptr);
  prev_plan_.reset();
  prev_group_plan_.reset();
  prev_valid_ = false;
  plan_epoch_ = 0;
  push_plan();
}

void Hypervisor::push_plan() {
  // Group-compiled mode: the ports share the compiled plan's index and
  // O(groups) transform table instead of per-tenant entries.
  if (group_plan_ != nullptr) {
    for (QvisorPort* port : ports_) {
      port->install_groups(*group_plan_, plan_epoch_);
      if (port->inner().empty()) {
        port->replace_inner(backend_->instantiate(group_plan_->table));
      }
    }
    return;
  }
  // With no plan (pre-compile, or after clear_plan's simulated agent
  // reboot) ports run the safe empty configuration: every packet takes
  // the preprocessor's best-effort path.
  static const SynthesisPlan kEmptyPlan;
  const SynthesisPlan& plan = plan_ ? *plan_ : kEmptyPlan;
  for (QvisorPort* port : ports_) {
    port->install(plan, plan_epoch_);
    // Re-deploying the hardware scheduler is only legal between bursts
    // (paper §2 Idea 2: buffer-emptying); occupied ports keep their
    // current instance and fall back to its clamping behaviour.
    if (port->inner().empty()) {
      port->replace_inner(backend_->instantiate(plan));
    }
  }
}

std::unique_ptr<sched::Scheduler> Hypervisor::make_port_scheduler() {
  // Instantiate the backend's hardware scheduler for the current plan
  // (or an unconfigured one pre-compile; install() reprograms later).
  static const SynthesisPlan kEmptyPlan;
  const SynthesisPlan& plan = plan_            ? *plan_
                              : group_plan_    ? group_plan_->table
                                               : kEmptyPlan;
  auto inner = backend_->instantiate(plan);
  return std::make_unique<QvisorPort>(*this, std::move(inner));
}

void Hypervisor::upsert_tenant(TenantSpec spec) {
  for (auto& existing : tenants_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  TenantContract contract;
  contract.tenant = spec.id;
  contract.rank_min = spec.declared_bounds.min;
  contract.rank_max = spec.declared_bounds.max;
  monitor_.set_contract(contract);
  tenants_.push_back(std::move(spec));
}

void Hypervisor::remove_tenant(const std::string& name) {
  tenants_.erase(
      std::remove_if(tenants_.begin(), tenants_.end(),
                     [&](const TenantSpec& t) { return t.name == name; }),
      tenants_.end());
}

std::unordered_map<TenantId, std::uint64_t>
Hypervisor::per_tenant_packets() const {
  std::unordered_map<TenantId, std::uint64_t> out;
  for (const QvisorPort* port : ports_) {
    for (const auto& [tenant, count] : port->preprocessor().per_tenant()) {
      out[tenant] += count;
    }
  }
  return out;
}

RankDistEstimator& Hypervisor::estimator(TenantId tenant) {
  auto it = estimators_.find(tenant);
  if (it == estimators_.end()) {
    it = estimators_
             .emplace(tenant, estimator_sketch_
                                  ? RankDistEstimator::sketched(
                                        *estimator_sketch_)
                                  : RankDistEstimator{})
             .first;
  }
  return it->second;
}

AdmissionConfig Hypervisor::build_admission_config() const {
  AdmissionConfig cfg;
  cfg.rank_window = admission_.rank_window;
  cfg.k = admission_.k;
  double total_weight = 0.0;
  for (const auto& spec : tenants_) {
    total_weight += std::max(0.0, spec.weight);
  }
  if (total_weight <= 0.0) total_weight = 1.0;
  for (const auto& spec : tenants_) {
    AdmissionTenantConfig tc;
    tc.tenant = spec.id;
    if (const TenantContract* c = monitor_.contract(spec.id);
        c != nullptr && c->max_rate > 0) {
      tc.rate_bytes_per_sec = static_cast<double>(c->max_rate) / 8.0;
      tc.burst_bytes = static_cast<double>(c->burst_bytes);
    }
    if (admission_.port_buffer_bytes > 0) {
      tc.share_cap_bytes = std::max(
          admission_.share_cap_floor_bytes,
          static_cast<std::int64_t>(
              static_cast<double>(admission_.port_buffer_bytes) *
              admission_.share_headroom * std::max(0.0, spec.weight) /
              total_weight));
    }
    cfg.tenants.push_back(tc);
  }
  cfg.unknown.rate_bytes_per_sec = admission_.unknown_rate_bytes_per_sec;
  cfg.unknown.burst_bytes = admission_.unknown_burst_bytes;
  cfg.unknown.share_cap_bytes = admission_.unknown_share_cap_bytes;
  return cfg;
}

void Hypervisor::set_admission(const AdmissionSettings& settings) {
  admission_ = settings;
  if (!admission_.enabled) {
    for (QvisorPort* port : ports_) port->disable_admission();
    return;
  }
  const AdmissionConfig cfg = build_admission_config();
  for (QvisorPort* port : ports_) port->configure_admission(cfg);
}

void Hypervisor::set_contract(const TenantContract& contract) {
  monitor_.set_contract(contract);
  if (admission_.enabled) set_admission(admission_);
}

void Hypervisor::on_admission_drop(TenantId tenant, std::int32_t bytes,
                                   AdmitResult r, TimeNs now) {
  (void)r;
  monitor_.record_admission_drop(tenant, bytes, now);
}

bool Hypervisor::install_refined(SynthesisPlan plan) {
  for (const auto& tp : plan.tenants) {
    const Rank worst =
        tp.quantile ? tp.quantile->out_max() : tp.transform.out_max();
    if (worst >= plan.rank_space) return false;
  }
  plan_ = std::move(plan);
  push_plan();
  return true;
}

const RankDistEstimator* Hypervisor::find_estimator(
    TenantId tenant) const {
  const auto it = estimators_.find(tenant);
  return it == estimators_.end() ? nullptr : &it->second;
}

void Hypervisor::export_metrics(obs::Registry& reg,
                                const std::string& prefix) const {
  reg.counter_view(prefix + ".compiles", &compile_count_);
  reg.counter_view(prefix + ".failed_installs", &failed_installs_);
  reg.counter_view(prefix + ".rollbacks", &rollbacks_);
  reg.gauge(prefix + ".plan_epoch",
            [this] { return static_cast<double>(plan_epoch_); });
  reg.gauge(prefix + ".degraded",
            [this] { return degraded_ ? 1.0 : 0.0; });
  reg.counter_view(prefix + ".estimator_overflow", &estimator_overflow_);
  reg.gauge(prefix + ".estimator_bytes",
            [this] { return static_cast<double>(estimator_bytes()); });
  monitor_.export_metrics(reg, prefix + ".monitor");
  for (const auto& spec : tenants_) {
    const std::string tp = prefix + ".tenant." + spec.name;
    const TenantId id = spec.id;
    reg.gauge(tp + ".packets", [this, id] {
      const auto counts = per_tenant_packets();
      const auto it = counts.find(id);
      return it == counts.end() ? 0.0 : static_cast<double>(it->second);
    });
    for (const auto& [q, suffix] :
         {std::pair<double, const char*>{0.5, ".rank_p50"},
          std::pair<double, const char*>{0.99, ".rank_p99"}}) {
      reg.gauge(tp + suffix, [this, id, q = q] {
        const RankDistEstimator* est = find_estimator(id);
        return est != nullptr && !est->empty()
                   ? static_cast<double>(est->quantile(q))
                   : 0.0;
      });
    }
  }
}

void Hypervisor::set_degraded(bool degraded) {
  degraded_ = degraded;
  for (QvisorPort* port : ports_) port->set_degraded(degraded);
}

void Hypervisor::attach(QvisorPort* port) {
  ports_.push_back(port);
  if (degraded_) port->set_degraded(true);
  if (admission_.enabled) port->configure_admission(build_admission_config());
}

void Hypervisor::detach(QvisorPort* port) {
  ports_.erase(std::remove(ports_.begin(), ports_.end(), port),
               ports_.end());
}

void Hypervisor::observe(const Packet& p, TimeNs now) {
  // Always observe the tenant's own label, not a possibly-transformed
  // scheduling rank from an upstream QVISOR hop.
  monitor_.observe(p.tenant, p.original_rank, p.size_bytes, now);
  if (last_obs_est_ != nullptr && last_obs_tenant_ == p.tenant) {
    last_obs_est_->observe(p.original_rank, now);
    return;
  }
  // Estimators are bounded like the monitor's tenant states: an
  // id-churner must not allocate one per fabricated id. Existing
  // estimators (including every contracted tenant's, created lazily on
  // first packet, well under the cap) keep updating.
  const auto it = estimators_.find(p.tenant);
  if (it != estimators_.end()) {
    last_obs_tenant_ = p.tenant;
    last_obs_est_ = &it->second;
    it->second.observe(p.original_rank, now);
  } else if (estimators_.size() < kMaxEstimators) {
    RankDistEstimator& est = estimator(p.tenant);
    last_obs_tenant_ = p.tenant;
    last_obs_est_ = &est;
    est.observe(p.original_rank, now);
  } else {
    ++estimator_overflow_;
  }
}

}  // namespace qv::qvisor
