#include "qvisor/policy.hpp"

#include <cctype>
#include <set>
#include <sstream>

namespace qv::qvisor {

std::vector<std::string> OperatorPolicy::tenant_names() const {
  std::vector<std::string> out;
  for (const auto& tier : tiers_) {
    for (const auto& group : tier.groups) {
      for (const auto& t : group.tenants) out.push_back(t);
    }
  }
  return out;
}

bool OperatorPolicy::mentions(const std::string& name) const {
  return tier_of(name).has_value();
}

std::optional<std::size_t> OperatorPolicy::tier_of(
    const std::string& name) const {
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    for (const auto& group : tiers_[i].groups) {
      for (const auto& t : group.tenants) {
        if (t == name) return i;
      }
    }
  }
  return std::nullopt;
}

std::string OperatorPolicy::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i > 0) out << " >> ";
    const auto& tier = tiers_[i];
    for (std::size_t g = 0; g < tier.groups.size(); ++g) {
      if (g > 0) out << " > ";
      const auto& group = tier.groups[g];
      for (std::size_t t = 0; t < group.tenants.size(); ++t) {
        if (t > 0) out << " + ";
        out << group.tenants[t];
      }
    }
  }
  return out.str();
}

OperatorPolicy OperatorPolicy::restricted_to(
    const std::vector<std::string>& names) const {
  const std::set<std::string> keep(names.begin(), names.end());
  std::vector<PriorityTier> tiers;
  for (const auto& tier : tiers_) {
    PriorityTier new_tier;
    for (const auto& group : tier.groups) {
      SharingGroup new_group;
      for (const auto& t : group.tenants) {
        if (keep.count(t)) new_group.tenants.push_back(t);
      }
      if (!new_group.tenants.empty()) {
        new_tier.groups.push_back(std::move(new_group));
      }
    }
    if (!new_tier.groups.empty()) tiers.push_back(std::move(new_tier));
  }
  return OperatorPolicy(std::move(tiers));
}

bool operator==(const OperatorPolicy& a, const OperatorPolicy& b) {
  if (a.tiers_.size() != b.tiers_.size()) return false;
  for (std::size_t i = 0; i < a.tiers_.size(); ++i) {
    const auto& ta = a.tiers_[i];
    const auto& tb = b.tiers_[i];
    if (ta.groups.size() != tb.groups.size()) return false;
    for (std::size_t g = 0; g < ta.groups.size(); ++g) {
      if (ta.groups[g].tenants != tb.groups[g].tenants) return false;
    }
  }
  return true;
}

namespace {

struct Lexer {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  /// Token kinds: ">>", ">", "+", identifier, or error (empty string).
  std::string next() {
    skip_ws();
    if (pos >= text.size()) return "";
    const char c = text[pos];
    if (c == '>') {
      if (pos + 1 < text.size() && text[pos + 1] == '>') {
        pos += 2;
        return ">>";
      }
      ++pos;
      return ">";
    }
    if (c == '+') {
      ++pos;
      return "+";
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos;
      while (pos < text.size()) {
        const char d = text[pos];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '-') {
          ++pos;
        } else {
          break;
        }
      }
      return text.substr(start, pos - start);
    }
    return "";  // unexpected character
  }

  std::string peek() {
    const std::size_t saved = pos;
    std::string tok = next();
    pos = saved;
    return tok;
  }
};

bool is_operator(const std::string& tok) {
  return tok == ">>" || tok == ">" || tok == "+";
}

PolicyParseResult fail(std::string message, std::size_t pos) {
  PolicyParseResult r;
  r.error = std::move(message);
  r.error_pos = pos;
  return r;
}

}  // namespace

PolicyParseResult parse_policy(const std::string& text) {
  Lexer lex{text};
  if (lex.eof()) return fail("empty policy", 0);

  std::vector<PriorityTier> tiers;
  PriorityTier tier;
  SharingGroup group;
  std::set<std::string> seen;

  // The grammar alternates identifier, operator, identifier, ... so we
  // consume an identifier, then decide from the following operator
  // whether to extend the group, start a new group, or start a new tier.
  while (true) {
    const std::size_t id_pos = lex.pos;
    const std::string ident = lex.next();
    if (ident.empty() || is_operator(ident)) {
      return fail("expected tenant name", id_pos);
    }
    if (!seen.insert(ident).second) {
      return fail("tenant '" + ident + "' appears more than once", id_pos);
    }
    group.tenants.push_back(ident);

    if (lex.eof()) break;
    const std::size_t op_pos = lex.pos;
    const std::string op = lex.next();
    if (op == "+") {
      continue;  // same group
    }
    if (op == ">") {
      tier.groups.push_back(std::move(group));
      group = SharingGroup{};
      continue;
    }
    if (op == ">>") {
      tier.groups.push_back(std::move(group));
      tiers.push_back(std::move(tier));
      group = SharingGroup{};
      tier = PriorityTier{};
      continue;
    }
    return fail("expected '>>', '>' or '+' after tenant", op_pos);
  }
  tier.groups.push_back(std::move(group));
  tiers.push_back(std::move(tier));

  PolicyParseResult r;
  r.policy = OperatorPolicy(std::move(tiers));
  return r;
}

}  // namespace qv::qvisor
