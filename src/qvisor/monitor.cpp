#include "qvisor/monitor.hpp"

#include <algorithm>

namespace qv::qvisor {

namespace {
const TenantObservation kEmptyObservation;
}

Monitor::Monitor(double suspect_threshold, double adversarial_threshold,
                 std::uint64_t min_packets)
    : suspect_threshold_(suspect_threshold),
      adversarial_threshold_(adversarial_threshold),
      min_packets_(min_packets) {}

void Monitor::set_contract(const TenantContract& contract) {
  State& s = tenants_[contract.tenant];
  s.contract = contract;
  s.registered = true;
  s.tokens = static_cast<double>(contract.burst_bytes);
}

Monitor::State* Monitor::track(TenantId tenant) {
  if (last_state_ != nullptr && last_tenant_ == tenant) return last_state_;
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    last_tenant_ = tenant;
    last_state_ = &it->second;
    return last_state_;
  }
  if (tenants_.size() >= max_tracked_) return nullptr;
  last_tenant_ = tenant;
  last_state_ = &tenants_[tenant];
  return last_state_;
}

void Monitor::observe(TenantId tenant, Rank original_rank,
                      std::int32_t bytes, TimeNs now) {
  State* sp = track(tenant);
  if (sp == nullptr) {
    // Tracked-tenant cap hit and this id is new: an id-churner is
    // probing for unbounded state. Count the packet against the
    // tenant's GROUP when the group compiler is active (the operator
    // still sees which policy slice the traffic belongs to), else in
    // aggregate; the churner's ids share the admission guard's
    // "unknown" bucket, so forgoing a per-id verdict loses nothing.
    count_untracked(tenant);
    return;
  }
  State& s = *sp;
  if (s.contract.tenant == kInvalidTenant) {
    // First sight of a tenant nobody contracted: make the implicit
    // terms explicit — this tenant, unbounded ranks ([0, kMaxRank] is
    // the TenantContract default), unpoliced rate. Such a tenant can
    // never be judged a violator, by construction rather than by the
    // accident of a default-constructed State.
    s.contract.tenant = tenant;
  }
  ++s.obs.packets;
  s.obs.bytes += static_cast<std::uint64_t>(bytes);

  if (original_rank < s.contract.rank_min ||
      original_rank > s.contract.rank_max) {
    ++s.obs.bounds_violations;
    s.last_violation = now;
  }

  const Verdict before = s.obs.verdict;

  if (s.contract.max_rate > 0) {
    // Token bucket: refill at the contracted rate, spend per packet.
    const TimeNs elapsed = now - s.last_refill;
    if (elapsed > 0) {
      s.tokens += to_seconds(elapsed) *
                  static_cast<double>(s.contract.max_rate) / 8.0;
      s.tokens = std::min(
          s.tokens, static_cast<double>(s.contract.burst_bytes));
      s.last_refill = now;
    }
    if (s.tokens >= static_cast<double>(bytes)) {
      s.tokens -= static_cast<double>(bytes);
    } else {
      ++s.obs.rate_violations;
      s.last_violation = now;
    }
  }
  refresh_verdict(s);
  trace_verdict_change(tenant, s, before, now);
}

void Monitor::record_admission_drop(TenantId tenant, std::int32_t bytes,
                                    TimeNs now) {
  (void)bytes;  // the offered bytes were already tallied by observe()
  State* sp = track(tenant);
  if (sp == nullptr) {
    count_untracked(tenant);
    return;
  }
  State& s = *sp;
  if (s.contract.tenant == kInvalidTenant) s.contract.tenant = tenant;
  const Verdict before = s.obs.verdict;
  ++s.obs.admission_drops;
  s.last_violation = now;
  refresh_verdict(s);
  trace_verdict_change(tenant, s, before, now);
  if (tracer_ != nullptr && tracer_->enabled(obs::TraceCategory::kRuntime) &&
      (s.obs.admission_drops == 1 ||
       (s.obs.admission_drops & 0xfff) == 0)) {
    // First drop and every 4096th after: enough to see the throttle
    // engage on a timeline without flooding the trace ring.
    tracer_->instant(obs::TraceCategory::kRuntime, "admission:throttled",
                     now, /*tid=*/0, "tenant", tenant);
  }
}

void Monitor::trace_verdict_change(TenantId tenant, const State& s,
                                   Verdict before, TimeNs now) const {
  if (tracer_ == nullptr || s.obs.verdict == before ||
      !tracer_->enabled(obs::TraceCategory::kRuntime)) {
    return;
  }
  const char* name = s.obs.verdict == Verdict::kAdversarial
                         ? "verdict:adversarial"
                     : s.obs.verdict == Verdict::kSuspect
                         ? "verdict:suspect"
                         : "verdict:clean";
  tracer_->instant(obs::TraceCategory::kRuntime, name, now, /*tid=*/0,
                   "tenant", tenant);
}

void Monitor::export_metrics(obs::Registry& reg,
                             const std::string& prefix) const {
  for (const auto& [id, s] : tenants_) {
    const std::string tp = prefix + ".tenant." + std::to_string(id);
    reg.counter_view(tp + ".packets", &s.obs.packets);
    reg.counter_view(tp + ".bytes", &s.obs.bytes);
    reg.counter_view(tp + ".bounds_violations", &s.obs.bounds_violations);
    reg.counter_view(tp + ".rate_violations", &s.obs.rate_violations);
    reg.counter_view(tp + ".admission_drops", &s.obs.admission_drops);
    reg.set_gauge(tp + ".verdict", static_cast<double>(s.obs.verdict));
  }
  reg.counter_view(prefix + ".untracked_observations", &untracked_);
  for (std::size_t g = 0; g < group_untracked_.size(); ++g) {
    reg.counter_view(prefix + ".group." + std::to_string(g) + ".untracked",
                     &group_untracked_[g]);
  }
}

void Monitor::refresh_verdict(State& s) const {
  if (s.obs.packets < min_packets_) {
    s.obs.verdict = Verdict::kClean;
    return;
  }
  const double packets = static_cast<double>(s.obs.packets);
  const double violation_frac =
      static_cast<double>(s.obs.bounds_violations + s.obs.rate_violations +
                          s.obs.admission_drops) /
      packets;
  if (violation_frac >= adversarial_threshold_) {
    s.obs.verdict = Verdict::kAdversarial;
  } else if (violation_frac >= suspect_threshold_) {
    s.obs.verdict = Verdict::kSuspect;
  } else {
    s.obs.verdict = Verdict::kClean;
  }
}

Verdict Monitor::verdict(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? Verdict::kClean : it->second.obs.verdict;
}

const TenantObservation& Monitor::observation(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? kEmptyObservation : it->second.obs;
}

bool Monitor::has_contract(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.registered;
}

const TenantContract* Monitor::contract(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second.contract;
}

TimeNs Monitor::last_violation_at(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? -1 : it->second.last_violation;
}

std::vector<TenantId> Monitor::adversarial() const {
  std::vector<TenantId> out;
  for (const auto& [id, s] : tenants_) {
    if (s.obs.verdict == Verdict::kAdversarial) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Monitor::reset(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  const TenantContract contract = it->second.contract;
  const bool registered = it->second.registered;
  it->second = State{};
  it->second.contract = contract;
  it->second.registered = registered;
  it->second.tokens = static_cast<double>(contract.burst_bytes);
}

}  // namespace qv::qvisor
