#include "qvisor/rank_distribution.hpp"

#include <algorithm>
#include <cassert>

namespace qv::qvisor {

RankDistEstimator::RankDistEstimator(std::size_t window) : ring_(window) {
  assert(window > 0);
}

RankDistEstimator RankDistEstimator::sketched(control::RankDigestConfig config,
                                              std::size_t time_window,
                                              std::uint32_t decay_every) {
  RankDistEstimator est(std::max<std::size_t>(1, time_window));
  est.digest_.emplace(config);
  est.decay_every_ = decay_every;
  return est;
}

std::size_t RankDistEstimator::byte_size() const {
  return sizeof(*this) + ring_.size() * sizeof(Entry) +
         (digest_ ? digest_->byte_size() : 0);
}

void RankDistEstimator::observe(Rank r, TimeNs now) {
  ring_[head_] = Entry{r, now};
  head_ = (head_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  last_seen_ = now;
  if (digest_) {
    digest_->observe(r);
    if (decay_every_ != 0 && ++since_decay_ >= decay_every_) {
      digest_->decay();
      since_decay_ = 0;
    }
  }
}

sched::RankBounds RankDistEstimator::bounds() const {
  if (digest_) {
    if (digest_->empty()) return {0, 0};
    return {digest_->min(), digest_->max()};
  }
  sched::RankBounds b{kMaxRank, 0};
  for (std::size_t i = 0; i < count_; ++i) {
    b.min = std::min(b.min, ring_[i].rank);
    b.max = std::max(b.max, ring_[i].rank);
  }
  if (count_ == 0) return {0, 0};
  return b;
}

Rank RankDistEstimator::quantile(double q) const {
  if (digest_) return digest_->quantile(q);
  if (count_ == 0) return 0;
  assert(q >= 0.0 && q <= 1.0);
  std::vector<Rank> ranks;
  ranks.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) ranks.push_back(ring_[i].rank);
  std::sort(ranks.begin(), ranks.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(ranks.size() - 1));
  return ranks[idx];
}

double RankDistEstimator::rate_pps(TimeNs now) const {
  if (count_ == 0) return 0.0;
  TimeNs oldest = kTimeMax;
  for (std::size_t i = 0; i < count_; ++i) {
    oldest = std::min(oldest, ring_[i].at);
  }
  const TimeNs span = now - oldest;
  if (span <= 0) return 0.0;
  return static_cast<double>(count_) / to_seconds(span);
}

void RankDistEstimator::reset() {
  head_ = 0;
  count_ = 0;
  last_seen_ = 0;
  if (digest_) {
    digest_->reset();
    since_decay_ = 0;
  }
}

}  // namespace qv::qvisor
