#include "qvisor/admission.hpp"

#include <algorithm>
#include <utility>

namespace qv::qvisor {

const char* admit_result_name(AdmitResult r) {
  switch (r) {
    case AdmitResult::kAdmit: return "admit";
    case AdmitResult::kRateDrop: return "rate";
    case AdmitResult::kShareDrop: return "share";
    case AdmitResult::kQuantileDrop: return "quantile";
  }
  return "?";
}

AdmissionGuard::AdmissionGuard(AdmissionConfig config)
    : config_(std::move(config)) {
  states_.reserve(config_.tenants.size());
  TenantId dense_max = 0;
  for (const auto& tc : config_.tenants) {
    if (tc.tenant < kSlotLimit) dense_max = std::max(dense_max, tc.tenant);
  }
  slot_.assign(static_cast<std::size_t>(dense_max) + 1, kNoSlot);
  for (const auto& tc : config_.tenants) {
    TenantState s;
    s.cfg = tc;
    s.tokens = tc.burst_bytes;
    if (config_.rank_window > 0) {
      if (config_.sketch) {
        s.digest.emplace(config_.sketch_config);
      } else {
        s.window.resize(config_.rank_window);
      }
    }
    const auto idx = static_cast<std::uint32_t>(states_.size());
    if (tc.tenant < kSlotLimit) {
      slot_[tc.tenant] = idx;
    } else {
      spill_slots_.emplace(tc.tenant, idx);
    }
    states_.push_back(std::move(s));
  }
  unknown_.cfg = config_.unknown;
  unknown_.cfg.tenant = kInvalidTenant;
  unknown_.tokens = unknown_.cfg.burst_bytes;
  if (config_.rank_window > 0) {
    if (config_.sketch) {
      unknown_.digest.emplace(config_.sketch_config);
    } else {
      unknown_.window.resize(config_.rank_window);
    }
  }
  police_unknown_ = config_.unknown.policed();
}

std::size_t AdmissionGuard::sketch_bytes() const {
  std::size_t total = 0;
  const auto tally = [&total](const TenantState& s) {
    if (s.digest) {
      total += s.digest->byte_size();
    } else {
      total += s.window.size() * sizeof(Rank);
    }
  };
  for (const auto& s : states_) tally(s);
  tally(unknown_);
  return total;
}

double AdmissionGuard::quantile_of(const TenantState& s, Rank rank) {
  std::uint32_t smaller = 0;
  for (std::uint32_t i = 0; i < s.win_len; ++i) {
    if (s.window[i] < rank) ++smaller;
  }
  return s.win_len == 0
             ? 0.0
             : static_cast<double>(smaller) / static_cast<double>(s.win_len);
}

std::int64_t AdmissionGuard::occupancy_bytes(TenantId tenant) const {
  const TenantState* s = find(tenant);
  if (s == nullptr) {
    if (!police_unknown_) return 0;
    s = &unknown_;
  }
  return s->occupancy;
}

const AdmissionTenantCounters& AdmissionGuard::tenant_counters(
    TenantId tenant) const {
  const TenantState* s = find(tenant);
  if (s == nullptr) {
    if (!police_unknown_) return none_;
    s = &unknown_;
  }
  return s->ctr;
}

AdmissionTenantCounters AdmissionGuard::totals() const {
  AdmissionTenantCounters t;
  const auto add = [&t](const AdmissionTenantCounters& c) {
    t.offered += c.offered;
    t.admitted += c.admitted;
    t.rate_dropped += c.rate_dropped;
    t.share_dropped += c.share_dropped;
    t.quantile_dropped += c.quantile_dropped;
    t.admitted_bytes += c.admitted_bytes;
    t.dropped_bytes += c.dropped_bytes;
  };
  for (const auto& s : states_) add(s.ctr);
  if (police_unknown_) add(unknown_.ctr);
  return t;
}

void AdmissionGuard::export_metrics(obs::Registry& reg,
                                    const std::string& prefix) const {
  const auto views = [&reg](const std::string& base,
                            const AdmissionTenantCounters& c) {
    reg.counter_view(base + ".offered", &c.offered);
    reg.counter_view(base + ".admitted", &c.admitted);
    reg.counter_view(base + ".rate_dropped", &c.rate_dropped);
    reg.counter_view(base + ".share_dropped", &c.share_dropped);
    reg.counter_view(base + ".quantile_dropped", &c.quantile_dropped);
    reg.counter_view(base + ".admitted_bytes", &c.admitted_bytes);
    reg.counter_view(base + ".dropped_bytes", &c.dropped_bytes);
  };
  for (const auto& s : states_) {
    views(prefix + ".tenant." + std::to_string(s.cfg.tenant), s.ctr);
  }
  if (police_unknown_) views(prefix + ".unknown", unknown_.ctr);
  // Guard-wide tallies are summed on read (see totals()); exported as
  // gauges so the snapshot stays consistent with the live tenant rows.
  reg.gauge(prefix + ".offered",
            [this] { return static_cast<double>(totals().offered); });
  reg.gauge(prefix + ".admitted",
            [this] { return static_cast<double>(totals().admitted); });
  reg.gauge(prefix + ".dropped",
            [this] { return static_cast<double>(totals().dropped()); });
  // Memory held by the quantile structures: a config constant (fixed
  // byte budgets), so the gauge doubles as the boundedness assertion.
  reg.gauge(prefix + ".sketch_bytes",
            [this] { return static_cast<double>(sketch_bytes()); });
}

}  // namespace qv::qvisor
