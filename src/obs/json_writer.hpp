// Minimal streaming JSON writer shared by the metrics and trace
// exporters: handles escaping, comma placement, and non-finite doubles
// (emitted as null) so every exporter produces valid JSON by
// construction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qv::obs {

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or begin_*().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Raw pre-rendered JSON (caller guarantees validity).
  JsonWriter& raw(std::string_view json);

 private:
  void separator();

  std::ostream& out_;
  /// One frame per open container: true after the first element.
  std::vector<bool> has_elems_;
  bool after_key_ = false;
};

}  // namespace qv::obs
