#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/json_writer.hpp"

namespace qv::obs {

const char* trace_category_name(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSim:
      return "sim";
    case TraceCategory::kSched:
      return "sched";
    case TraceCategory::kQvisor:
      return "qvisor";
    case TraceCategory::kRuntime:
      return "runtime";
    case TraceCategory::kMgmt:
      return "mgmt";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

const char* Tracer::intern(const std::string& s) {
  for (const std::string& existing : interned_) {
    if (existing == s) return existing.c_str();
  }
  interned_.push_back(s);
  return interned_.back().c_str();
}

void Tracer::set_thread_name(std::uint32_t tid, const std::string& name) {
  thread_names_[tid] = name;
}

void Tracer::clear() {
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t start =
      count_ < ring_.size() ? 0 : next_;  // oldest surviving event
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

/// Chrome trace timestamps are microseconds; keep ns precision with a
/// fixed three-decimal fraction (avoids double rounding for large ts).
void write_us(std::ostream& out, TimeNs ns) {
  out << ns / 1000 << '.';
  const auto frac = static_cast<int>(ns % 1000);
  out << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

}  // namespace

void Tracer::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Process / thread metadata first, so viewers label the lanes.
  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("tid").value(0);
  w.key("name").value("process_name");
  w.key("args").begin_object().key("name").value("qvisor").end_object();
  w.end_object();
  for (const auto& [tid, name] : thread_names_) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("name").value("thread_name");
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  }

  for (const TraceEvent& e : events()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(trace_category_name(e.cat));
    w.key("ph").value(std::string_view(&e.ph, 1));
    w.key("pid").value(1);
    w.key("tid").value(e.tid);
    w.key("ts");
    {
      std::ostringstream ts;
      write_us(ts, e.ts);
      w.raw(ts.str());
    }
    if (e.ph == 'X') {
      w.key("dur");
      std::ostringstream dur;
      write_us(dur, e.dur);
      w.raw(dur.str());
    }
    if (e.ph == 'i') w.key("s").value("t");  // thread-scoped instant
    if (e.arg_name != nullptr) {
      w.key("args").begin_object().key(e.arg_name).value(e.arg).end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.key("otherData").begin_object();
  w.key("dropped_events").value(dropped_);
  w.end_object();
  w.end_object();
  out << "\n";
}

std::string Tracer::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace qv::obs
