// Observability bundle: the registry + tracer + samplers an experiment
// run owns, plus the artifact writers (metrics.json / trace.json).
//
// Components never require one of these: every hook is an optional
// pointer (tracer) or an export call made at teardown (registry), so a
// run without an Observability attached pays nothing on the data path.
#pragma once

#include <string>

#include "obs/artifact.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace qv::obs {

struct Observability {
  Registry registry;
  Tracer tracer;
  SamplerSet samplers;

  /// Cadence for the periodic samplers (experiments wire this into the
  /// simulator via schedule_samplers()).
  TimeNs sample_interval = 100'000;  // 100 us

  explicit Observability(std::size_t trace_capacity = 1u << 16)
      : tracer(trace_capacity) {}
};

/// metrics.json: the registry's JSON snapshot.
void save_metrics_json(const std::string& path, const Registry& registry);

/// trace.json: Chrome trace-event JSON (Perfetto / chrome://tracing).
void save_trace_json(const std::string& path, const Tracer& tracer);

}  // namespace qv::obs
