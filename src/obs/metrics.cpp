#include "obs/metrics.hpp"

#include <sstream>

#include "obs/json_writer.hpp"

namespace qv::obs {

thread_local std::uint64_t Counter::scrap_ = 0;

Counter Registry::counter(const std::string& name) {
  auto it = owned_.find(name);
  if (it == owned_.end()) {
    slab_.push_back(0);
    it = owned_.emplace(name, &slab_.back()).first;
  }
  return Counter(it->second);
}

void Registry::counter_view(const std::string& name,
                            const std::uint64_t* slot) {
  views_[name] = slot;
}

void Registry::gauge(const std::string& name, std::function<double()> read) {
  gauges_[name] = std::move(read);
}

void Registry::set_gauge(const std::string& name, double value) {
  gauges_[name] = [value] { return value; };
}

Log2Histogram& Registry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    hist_slab_.emplace_back();
    it = histograms_.emplace(name, &hist_slab_.back()).first;
  }
  return *it->second;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  if (auto it = owned_.find(name); it != owned_.end()) return *it->second;
  if (auto it = views_.find(name); it != views_.end()) return *it->second;
  return 0;
}

bool Registry::has_counter(const std::string& name) const {
  return owned_.count(name) > 0 || views_.count(name) > 0;
}

double Registry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second();
}

const Log2Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second;
}

std::size_t Registry::metric_count() const {
  return owned_.size() + views_.size() + gauges_.size() +
         histograms_.size();
}

void Registry::freeze() {
  for (const auto& [name, slot] : views_) {
    const std::uint64_t value = *slot;
    slab_.push_back(value);
    owned_[name] = &slab_.back();  // overwrite duplicates, last wins
  }
  views_.clear();
  for (auto& [name, read] : gauges_) {
    const double value = read();
    read = [value] { return value; };
  }
}

std::map<std::string, std::uint64_t> Registry::counter_snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, slot] : owned_) out.emplace(name, *slot);
  for (const auto& [name, slot] : views_) out.emplace(name, *slot);
  return out;
}

std::map<std::string, double> Registry::gauge_snapshot() const {
  std::map<std::string, double> out;
  for (const auto& [name, read] : gauges_) out.emplace(name, read());
  return out;
}

void Registry::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : counter_snapshot()) {
    w.key(name).value(value);
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauge_snapshot()) {
    w.key(name).value(value);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, hist] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(hist->count());
    w.key("sum").value(hist->sum());
    w.key("min").value(hist->min());
    w.key("max").value(hist->max());
    w.key("mean").value(hist->mean());
    w.key("p50").value(hist->quantile(0.5));
    w.key("p90").value(hist->quantile(0.9));
    w.key("p99").value(hist->quantile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      if (hist->bucket_count(i) == 0) continue;
      w.begin_object();
      w.key("lo").value(Log2Histogram::bucket_lo(i));
      w.key("hi").value(Log2Histogram::bucket_hi(i));
      w.key("n").value(hist->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  out << "\n";
}

std::string Registry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace qv::obs
