#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace qv::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elems_.empty()) {
    if (has_elems_.back()) out_ << ',';
    has_elems_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ << '{';
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elems_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ << '[';
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elems_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separator();
  out_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  // Shortest round-trippable form: %.17g always round-trips but is
  // noisy; try %.15g first and fall back when it loses precision.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  separator();
  out_ << json;
  return *this;
}

}  // namespace qv::obs
