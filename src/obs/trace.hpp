// Timeline tracer: a bounded ring buffer of trace events exported as
// Chrome trace-event JSON (load trace.json in Perfetto or
// chrome://tracing).
//
// Design constraints, in order:
//  1. disabled must be near-free — every producer guards with
//     `if (tracer && tracer->enabled(cat))`, so the disabled data plane
//     pays at most one pointer test (usually on a null pointer);
//  2. enabled must never allocate on the hot path — events are POD
//     rows written into a pre-sized ring; when the ring is full the
//     OLDEST event is overwritten (the tail of a run is what you
//     usually want) and `dropped()` counts the loss;
//  3. names are `const char*` and must outlive the tracer — string
//     literals, or dynamic labels pinned once via intern().
//
// Timestamps are SIMULATED time (ns). Spans ('X' events) may carry a
// wall-clock duration instead — the simulator's dispatch spans do, so
// a Perfetto timeline shows where simulated time went AND what each
// event cost to execute; producers say which convention they use.
//
// Events carry a `tid` lane: Perfetto renders one row per tid, so
// per-port queue depth counters and per-port enqueue/drop instants get
// their own labelled swimlanes (set_thread_name). The `tid` is a
// SIMULATED lane, not an OS thread: a Tracer is owned by one run (one
// sweep-worker thread), asserted in debug builds via ThreadAffinity —
// concurrent runs each carry their own ring.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/thread_affinity.hpp"
#include "util/time.hpp"

namespace qv::obs {

enum class TraceCategory : std::uint8_t {
  kSim = 0,      ///< simulator event dispatch
  kSched = 1,    ///< scheduler enqueue/dequeue/drop, queue depth
  kQvisor = 2,   ///< preprocessor / synthesis / plan installs
  kRuntime = 3,  ///< runtime controller, monitor verdicts
  kMgmt = 4,     ///< config store ops, rollout waves/probes/aborts
};

constexpr std::uint32_t trace_bit(TraceCategory c) {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kTraceAll = 0x1F;

const char* trace_category_name(TraceCategory c);

struct TraceEvent {
  const char* name;   ///< must outlive the tracer (literal or interned)
  TraceCategory cat;
  char ph;            ///< 'X' complete, 'i' instant, 'C' counter
  std::uint32_t tid;  ///< swimlane (0 = the simulator itself)
  TimeNs ts;          ///< simulated time
  TimeNs dur;         ///< 'X' only; producers may record wall-clock ns
  const char* arg_name;  ///< nullptr = no args payload
  std::uint64_t arg;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1u << 16);

  /// Category filter. Disabled (mask 0) by default: attaching a tracer
  /// is explicit opt-in per category.
  bool enabled(TraceCategory c) const { return (mask_ & trace_bit(c)) != 0; }
  void set_mask(std::uint32_t mask) { mask_ = mask; }
  std::uint32_t mask() const { return mask_; }
  void enable_all() { mask_ = kTraceAll; }
  void disable() { mask_ = 0; }

  // Producers are expected to have checked enabled(cat) already (that
  // is the cheap guard); these re-check nothing.
  void instant(TraceCategory cat, const char* name, TimeNs ts,
               std::uint32_t tid = 0, const char* arg_name = nullptr,
               std::uint64_t arg = 0) {
    push({name, cat, 'i', tid, ts, 0, arg_name, arg});
  }
  void complete(TraceCategory cat, const char* name, TimeNs ts, TimeNs dur,
                std::uint32_t tid = 0, const char* arg_name = nullptr,
                std::uint64_t arg = 0) {
    push({name, cat, 'X', tid, ts, dur, arg_name, arg});
  }
  void counter(TraceCategory cat, const char* name, TimeNs ts,
               std::uint64_t value, std::uint32_t tid = 0) {
    push({name, cat, 'C', tid, ts, 0, "value", value});
  }

  /// Pin a dynamically-built label for the tracer's lifetime (per-port
  /// names). Setup-time only; interning the same string twice returns
  /// the first copy.
  const char* intern(const std::string& s);

  /// Label a tid swimlane (emitted as trace metadata).
  void set_thread_name(std::uint32_t tid, const std::string& name);

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...],...}.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  void push(const TraceEvent& e) {
    affinity_.check();  // single-owner; compiles away under NDEBUG
    ring_[next_] = e;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint32_t mask_ = 0;
  std::deque<std::string> interned_;
  std::map<std::uint32_t, std::string> thread_names_;
  [[no_unique_address]] ThreadAffinity affinity_;
};

}  // namespace qv::obs
