// Log2Histogram: a fixed-size, allocation-free histogram whose buckets
// are powers of two — bucket i counts values v with bit_width(v) == i,
// i.e. [2^(i-1), 2^i). 65 slots cover the whole uint64_t range, so
// add() is one bit_width plus three increments regardless of the value
// distribution, and two histograms merge by adding their arrays.
//
// Quantiles are estimated by linear interpolation inside the selected
// bucket and clamped to the exact observed [min, max]; because each
// bucket spans at most a factor of two, the estimate is always within
// 2x of the exact quantile (tests/obs/log2_histogram_test.cpp checks
// this against the exact Sample class).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace qv::obs {

class Log2Histogram {
 public:
  /// bucket_of(v) for uint64_t is in [0, 64]; 65 buckets total.
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index of `v`: 0 holds only v == 0, bucket i >= 1 holds
  /// [2^(i-1), 2^i).
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive lower edge of bucket `i`.
  static constexpr std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  /// Exclusive upper edge of bucket `i` (saturates for the last bucket).
  static constexpr std::uint64_t bucket_hi(std::size_t i) {
    if (i == 0) return 1;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return std::uint64_t{1} << i;
  }

  void add(std::uint64_t v, std::uint64_t weight = 1) {
    counts_[bucket_of(v)] += weight;
    count_ += weight;
    sum_ += v * weight;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  void merge(const Log2Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

  /// Estimated quantile, q in [0, 1]. Exact for q = 0 / q = 1 (the
  /// tracked min/max); otherwise within the selected power-of-two
  /// bucket. 0 when empty.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The extremes are tracked exactly; interpolation would otherwise
    // return a bucket edge for them.
    if (q == 0.0) return static_cast<double>(min_);
    if (q == 1.0) return static_cast<double>(max_);
    // Rank in [0, count-1], matching Sample::quantile's convention.
    const double target = q * static_cast<double>(count_ - 1);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      const double first = static_cast<double>(below);
      const double last = static_cast<double>(below + counts_[i] - 1);
      if (target <= last) {
        const double lo = static_cast<double>(bucket_lo(i));
        const double hi = static_cast<double>(bucket_hi(i));
        // Position within the bucket's ranks -> position within its span.
        const double frac =
            counts_[i] > 1 ? (target - first) / static_cast<double>(counts_[i] - 1)
                           : 0.0;
        const double est = lo + frac * (hi - 1 - lo);
        return std::clamp(est, static_cast<double>(min_),
                          static_cast<double>(max_));
      }
      below += counts_[i];
    }
    return static_cast<double>(max_);
  }

  void clear() { *this = Log2Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace qv::obs
