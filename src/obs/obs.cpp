#include "obs/obs.hpp"

namespace qv::obs {

void save_metrics_json(const std::string& path, const Registry& registry) {
  save_artifact(path,
                [&registry](std::ostream& out) { registry.write_json(out); });
}

void save_trace_json(const std::string& path, const Tracer& tracer) {
  save_artifact(path,
                [&tracer](std::ostream& out) { tracer.write_json(out); });
}

}  // namespace qv::obs
