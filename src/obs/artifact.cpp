#include "obs/artifact.hpp"

#include <fstream>
#include <stdexcept>

namespace qv::obs {

void save_artifact(const std::string& path,
                   const std::function<void(std::ostream&)>& write) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write artifact file: " + path);
  write(out);
  out.flush();
  if (!out) throw std::runtime_error("write failed for artifact: " + path);
}

}  // namespace qv::obs
