// The one file-sink used by every artifact exporter (flow CSVs,
// metrics.json, trace.json): open, delegate to a writer callback,
// fail loudly. Keeping a single path here means every exporter agrees
// on error behaviour and none reimplements the ofstream dance.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace qv::obs {

/// Write an artifact file via `write`. Throws std::runtime_error when
/// the file cannot be opened or the stream fails after writing.
void save_artifact(const std::string& path,
                   const std::function<void(std::ostream&)>& write);

}  // namespace qv::obs
