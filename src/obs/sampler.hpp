// Periodic runtime samplers: named callbacks invoked together on a
// fixed cadence, driven by whatever clock owns the experiment (the
// simulator's timer wheel in this repo).
//
// SamplerSet knows nothing about the simulator — schedule_samplers()
// is a template over any scheduler exposing `at(TimeNs, fn)`, which
// keeps obs/ free of a netsim dependency (netsim already depends on
// sched, and sched exports metrics into obs).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace qv::obs {

class SamplerSet {
 public:
  using Fn = std::function<void(TimeNs now)>;

  void add(std::string name, Fn fn) {
    samplers_.push_back({std::move(name), std::move(fn)});
  }

  /// Run every sampler once at `now`.
  void tick(TimeNs now) {
    ++ticks_;
    for (auto& s : samplers_) s.fn(now);
  }

  std::size_t size() const { return samplers_.size(); }
  std::uint64_t ticks() const { return ticks_; }
  const std::string& name(std::size_t i) const { return samplers_[i].name; }

 private:
  struct Sampler {
    std::string name;
    Fn fn;
  };
  std::vector<Sampler> samplers_;
  std::uint64_t ticks_ = 0;
};

/// Pre-schedule sampler ticks every `interval` on (0, end]. `sim` and
/// `samplers` must outlive the scheduled events (experiments own both
/// on the stack for the whole run).
template <typename Sched>
void schedule_samplers(Sched& sim, SamplerSet& samplers, TimeNs interval,
                       TimeNs end) {
  for (TimeNs t = interval; t <= end; t += interval) {
    sim.at(t, [&samplers, t] { samplers.tick(t); });
  }
}

}  // namespace qv::obs
