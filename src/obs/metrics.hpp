// Metrics registry: named counters, gauges, and log2-bucketed
// histograms with allocation-free hot-path updates.
//
// Three metric kinds, chosen by who owns the storage:
//
//  * owned counters — counter(name) hands out a Counter handle wrapping
//    a pointer to a plain uint64_t slot inside the registry's slab
//    (a deque, so slots never move). Counter::inc() is a single
//    indirect increment: no hashing, no branching, no allocation. A
//    default-constructed Counter writes to a per-THREAD scrap slot,
//    so instrumented code needs no "is observability on?" branches.
//
// Thread contract: a Registry and every handle it minted are owned by
// one run (one sweep-worker thread) at a time — the exec engine runs
// many Simulators in one process, each with its own Registry. The
// scrap slot backing detached handles is thread_local precisely so
// concurrent runs' detached increments never share a cache line or
// race (a process-wide slot here was a real TSan-reported data race
// under parallel sweeps; see tests/exec/metrics_threads_test.cpp).
//
//  * counter views — counter_view(name, &slot) registers a read-only
//    pointer to a counter the component already maintains (e.g.
//    SchedulerCounters). The hot path stays exactly as it was; the
//    registry reads the live value at snapshot time. The pointee must
//    outlive the registry or the last snapshot, whichever is first.
//
//  * gauges — gauge(name, fn) samples a callback at snapshot time
//    (queue occupancy, estimator quantiles); set_gauge(name, v) pins a
//    scalar (final experiment results).
//
// snapshot() materializes every metric into a sorted name -> value
// map; write_json() emits the whole registry as one JSON document.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "obs/log2_histogram.hpp"

namespace qv::obs {

class Registry;

/// Hot-path counter handle: one indirect uint64_t increment.
/// Copyable; default-constructed handles hit the constructing thread's
/// scrap slot, so components can be instrumented unconditionally. Like
/// every handle, a detached Counter is single-owner: it must be
/// incremented only on the thread that constructed it (the sweep
/// engine's per-run isolation guarantees this for experiment code).
class Counter {
 public:
  Counter() : slot_(&scrap_) {}

  void inc(std::uint64_t delta = 1) { *slot_ += delta; }
  std::uint64_t value() const { return *slot_; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}

  static thread_local std::uint64_t scrap_;
  std::uint64_t* slot_;
};

class Registry {
 public:
  /// Get-or-create an owned counter slot. Handles stay valid for the
  /// registry's lifetime (slots live in a deque and never move).
  Counter counter(const std::string& name);

  /// Register a live view of an externally-owned counter. The pointee
  /// must outlive every subsequent snapshot of this registry.
  void counter_view(const std::string& name, const std::uint64_t* slot);

  /// Register a gauge sampled at snapshot time. The callback must stay
  /// valid until the last snapshot (or until re-registered).
  void gauge(const std::string& name, std::function<double()> read);

  /// Pin a scalar gauge value (overwrites any previous gauge).
  void set_gauge(const std::string& name, double value);

  /// Get-or-create a histogram. References stay valid for the
  /// registry's lifetime.
  Log2Histogram& histogram(const std::string& name);

  // --- introspection (tests, samplers) --------------------------------
  std::uint64_t counter_value(const std::string& name) const;
  bool has_counter(const std::string& name) const;
  double gauge_value(const std::string& name) const;  ///< 0 if absent
  const Log2Histogram* find_histogram(const std::string& name) const;
  std::size_t metric_count() const;

  /// Every counter (owned + views), evaluated now, sorted by name.
  std::map<std::string, std::uint64_t> counter_snapshot() const;
  /// Every gauge, evaluated now, sorted by name.
  std::map<std::string, double> gauge_snapshot() const;

  /// Materialize every counter view and gauge into plain pinned values.
  /// Call at the end of a run, BEFORE the instrumented objects
  /// (schedulers, hypervisor, estimators) are destroyed — afterwards the
  /// registry is self-contained and can be exported at any time.
  void freeze();

  /// The whole registry as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  std::deque<std::uint64_t> slab_;  ///< owned counter slots (stable)
  std::map<std::string, std::uint64_t*> owned_;
  std::map<std::string, const std::uint64_t*> views_;
  std::map<std::string, std::function<double()>> gauges_;
  std::deque<Log2Histogram> hist_slab_;  ///< stable references
  std::map<std::string, Log2Histogram*> histograms_;
};

}  // namespace qv::obs
