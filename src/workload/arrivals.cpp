#include "workload/arrivals.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qv::workload {

double arrival_rate_per_host(const ArrivalConfig& cfg, const Cdf& cdf) {
  const double mean_bits = cdf.mean() * 8.0;
  assert(mean_bits > 0);
  return cfg.load * static_cast<double>(cfg.access_rate) / mean_bits;
}

std::vector<FlowArrival> generate_poisson_arrivals(const ArrivalConfig& cfg,
                                                   const Cdf& cdf) {
  assert(cfg.num_hosts >= 2);
  assert(cfg.end > cfg.start);
  const double lambda = arrival_rate_per_host(cfg, cdf);
  const double mean_gap_ns = 1e9 / lambda;

  std::vector<FlowArrival> arrivals;
  for (std::size_t h = 0; h < cfg.num_hosts; ++h) {
    // Independent stream per host, derived from the run seed.
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + h);
    TimeNs t = cfg.start;
    while (true) {
      t += static_cast<TimeNs>(std::ceil(rng.next_exponential(mean_gap_ns)));
      if (t >= cfg.end) break;
      FlowArrival a;
      a.at = t;
      a.src_host = h;
      a.dst_host = rng.next_below(cfg.num_hosts - 1);
      if (a.dst_host >= h) ++a.dst_host;  // uniform over hosts != h
      a.size_bytes = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::llround(cdf.sample(rng))));
      arrivals.push_back(a);
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const FlowArrival& a, const FlowArrival& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.src_host < b.src_host;
            });
  return arrivals;
}

}  // namespace qv::workload
