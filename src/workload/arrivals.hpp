// Open-loop flow arrival processes.
//
// FlowArrivalProcess turns a target load into per-host Poisson flow
// arrivals: load L on access links of rate R with mean flow size S
// gives a per-host arrival rate of lambda = L * R / (8 * S) flows/sec.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/random.hpp"
#include "util/time.hpp"
#include "util/units.hpp"
#include "workload/cdf.hpp"

namespace qv::workload {

struct FlowArrival {
  TimeNs at = 0;
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  std::int64_t size_bytes = 0;
};

struct ArrivalConfig {
  double load = 0.5;           ///< fraction of access capacity
  BitsPerSec access_rate = gbps(1);
  std::size_t num_hosts = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  std::uint64_t seed = 1;
};

/// Pre-generate all arrivals for a run: Poisson per-host arrivals with
/// sizes drawn from `cdf` and destinations uniform over other hosts.
/// Deterministic given the seed. Sorted by arrival time.
std::vector<FlowArrival> generate_poisson_arrivals(const ArrivalConfig& cfg,
                                                   const Cdf& cdf);

/// Per-host arrival rate implied by a config (flows per second).
double arrival_rate_per_host(const ArrivalConfig& cfg, const Cdf& cdf);

}  // namespace qv::workload
