// Empirical CDFs with inverse-transform sampling.
//
// A Cdf is a piecewise-linear distribution over flow sizes given as
// (value, cumulative probability) points — the format every data-center
// scheduling paper (pFabric, PIAS, SP-PIFO, AIFO, ...) publishes its
// workloads in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hpp"

namespace qv::workload {

class Cdf {
 public:
  struct Point {
    double value;
    double probability;  ///< cumulative, non-decreasing, last == 1.0
  };

  /// Points must be sorted by probability, start at p >= 0, end at
  /// p == 1.0, and have non-decreasing values. Throws
  /// std::invalid_argument otherwise.
  explicit Cdf(std::vector<Point> points);

  /// Inverse-transform sample.
  double sample(Rng& rng) const;

  /// Linear-interpolated quantile, q in [0, 1].
  double quantile(double q) const;

  /// Analytic mean of the piecewise-linear distribution.
  double mean() const;

  double min() const { return points_.front().value; }
  double max() const { return points_.back().value; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

/// The pFabric data-mining workload (Alizadeh et al. SIGCOMM'13, from
/// the VL2 measurement study): ~80% of flows under 10 KB, heavy tail to
/// tens of MB. Used by the paper's tenant T1 (§4: "a data-mining
/// workload that needs to be scheduled with the pFabric algorithm").
/// `max_bytes` truncates the tail (0 = untruncated) so scaled-down
/// experiments finish within their horizon; truncation is re-normalized.
Cdf data_mining_cdf(double max_bytes = 0);

/// The pFabric web-search workload (DCTCP measurement study): less
/// extreme tail; used by additional examples and ablations.
Cdf web_search_cdf(double max_bytes = 0);

}  // namespace qv::workload
