// CDF file I/O in the Netbench / pFabric format the paper's evaluation
// pipeline uses: one "<value> <cumulative-probability>" pair per line,
// '#' comments and blank lines ignored.
//
// Lets users drop in their own measured flow-size distributions instead
// of the built-in data-mining / web-search tabulations.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/cdf.hpp"

namespace qv::workload {

/// Parse a CDF from a stream. Throws std::invalid_argument on malformed
/// input (bad numbers, decreasing probabilities, missing terminal 1.0).
Cdf read_cdf(std::istream& in);

/// Load from a file path. Throws std::runtime_error if unreadable.
Cdf load_cdf_file(const std::string& path);

/// Serialize in the same format (round-trips through read_cdf).
void write_cdf(std::ostream& out, const Cdf& cdf);
void save_cdf_file(const std::string& path, const Cdf& cdf);

}  // namespace qv::workload
