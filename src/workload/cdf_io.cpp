#include "workload/cdf_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qv::workload {

Cdf read_cdf(std::istream& in) {
  std::vector<Cdf::Point> points;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    double value = 0;
    double probability = 0;
    if (!(fields >> value)) continue;  // blank / comment-only line
    if (!(fields >> probability)) {
      throw std::invalid_argument("cdf line " + std::to_string(line_no) +
                                  ": expected '<value> <probability>'");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::invalid_argument("cdf line " + std::to_string(line_no) +
                                  ": trailing tokens");
    }
    points.push_back(Cdf::Point{value, probability});
  }
  return Cdf(std::move(points));  // Cdf validates monotonicity etc.
}

Cdf load_cdf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open cdf file: " + path);
  return read_cdf(in);
}

void write_cdf(std::ostream& out, const Cdf& cdf) {
  out << "# <value> <cumulative probability>\n";
  for (const auto& p : cdf.points()) {
    out << p.value << " " << p.probability << "\n";
  }
}

void save_cdf_file(const std::string& path, const Cdf& cdf) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write cdf file: " + path);
  write_cdf(out, cdf);
}

}  // namespace qv::workload
