#include "workload/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qv::workload {

Cdf::Cdf(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("Cdf needs at least two points");
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].probability < 0.0 || points_[i].probability > 1.0) {
      throw std::invalid_argument("Cdf probability outside [0, 1]");
    }
    if (i > 0) {
      if (points_[i].probability < points_[i - 1].probability) {
        throw std::invalid_argument("Cdf probabilities must not decrease");
      }
      if (points_[i].value < points_[i - 1].value) {
        throw std::invalid_argument("Cdf values must not decrease");
      }
    }
  }
  if (points_.back().probability != 1.0) {
    throw std::invalid_argument("Cdf must end at probability 1.0");
  }
}

double Cdf::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (q <= points_.front().probability) return points_.front().value;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (q <= points_[i].probability) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double span = b.probability - a.probability;
      if (span <= 0.0) return b.value;
      const double frac = (q - a.probability) / span;
      return a.value + frac * (b.value - a.value);
    }
  }
  return points_.back().value;
}

double Cdf::sample(Rng& rng) const { return quantile(rng.next_double()); }

double Cdf::mean() const {
  // Each linear segment contributes (p_b - p_a) * (v_a + v_b) / 2.
  double m = points_.front().probability * points_.front().value;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    m += (b.probability - a.probability) * (a.value + b.value) / 2.0;
  }
  return m;
}

namespace {

/// Truncate a CDF at `max_bytes` and renormalize the tail mass onto the
/// truncation point.
Cdf truncate(std::vector<Cdf::Point> points, double max_bytes) {
  if (max_bytes <= 0) return Cdf(std::move(points));
  std::vector<Cdf::Point> out;
  for (const auto& p : points) {
    if (p.value < max_bytes) {
      out.push_back(p);
    } else {
      break;
    }
  }
  if (out.empty()) {
    throw std::invalid_argument("Cdf truncation below the smallest value");
  }
  out.push_back(Cdf::Point{max_bytes, 1.0});
  return Cdf(std::move(out));
}

}  // namespace

Cdf data_mining_cdf(double max_bytes) {
  // Tabulation of the pFabric data-mining distribution as published in
  // reproduction repositories (PIAS / SP-PIFO / AIFO); sizes in bytes.
  return truncate(
      {
          {100, 0.0},
          {300, 0.1},
          {500, 0.2},
          {700, 0.3},
          {1000, 0.35},
          {2000, 0.40},
          {7000, 0.50},
          {30000, 0.60},
          {50000, 0.70},
          {80000, 0.80},
          {200000, 0.90},
          {1000000, 0.95},
          {2000000, 0.98},
          {5000000, 0.99},
          {10000000, 0.999},
          {30000000, 1.0},
      },
      max_bytes);
}

Cdf web_search_cdf(double max_bytes) {
  // DCTCP web-search distribution tabulation; sizes in bytes.
  return truncate(
      {
          {6000, 0.0},
          {10000, 0.15},
          {13000, 0.20},
          {19000, 0.30},
          {33000, 0.40},
          {53000, 0.53},
          {133000, 0.60},
          {667000, 0.70},
          {1333000, 0.80},
          {3333000, 0.90},
          {6667000, 0.95},
          {20000000, 1.0},
      },
      max_bytes);
}

}  // namespace qv::workload
