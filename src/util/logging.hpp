// Minimal leveled logger.
//
// Simulation code logs rarely (setup, warnings, errors); per-packet paths
// never log. The level check happens before message formatting.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace qv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit a log record (already formatted). Thread-compatible: the
/// simulator is single-threaded; benches set the level once up front.
void log_message(LogLevel level, std::string_view msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define QV_LOG(level)                                  \
  if (::qv::LogLevel::level < ::qv::log_level()) {     \
  } else                                               \
    ::qv::detail::LogLine(::qv::LogLevel::level)

#define QV_DEBUG QV_LOG(kDebug)
#define QV_INFO QV_LOG(kInfo)
#define QV_WARN QV_LOG(kWarn)
#define QV_ERROR QV_LOG(kError)

}  // namespace qv
