// Minimal leveled logger.
//
// Simulation code logs rarely (setup, warnings, errors); per-packet paths
// never log. The level check happens before message formatting.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace qv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded. The level is
/// atomic so sweep workers can log concurrently; set it once up front
/// (mains), not from inside runs.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit a log record (already formatted). Thread-safe: records go to
/// this thread's capture buffer when one is installed (see
/// ScopedLogCapture), otherwise to stderr in one fprintf.
void log_message(LogLevel level, std::string_view msg);

/// Redirect the CURRENT THREAD's log records into `*out` (appended,
/// one "[LEVEL] msg\n" line each) for this object's lifetime. The
/// sweep engine installs one per cell so concurrent runs' warnings
/// never interleave on stderr — the reducer replays them in grid
/// order. Captures nest (restores the previous sink on destruction).
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(std::string* out);
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

 private:
  std::string* prev_;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define QV_LOG(level)                                  \
  if (::qv::LogLevel::level < ::qv::log_level()) {     \
  } else                                               \
    ::qv::detail::LogLine(::qv::LogLevel::level)

#define QV_DEBUG QV_LOG(kDebug)
#define QV_INFO QV_LOG(kInfo)
#define QV_WARN QV_LOG(kWarn)
#define QV_ERROR QV_LOG(kError)

}  // namespace qv
