// Deterministic, fast PRNG for simulation.
//
// xoshiro256++ seeded via SplitMix64. Header-only so hot paths inline.
// Every stochastic component takes an explicit seed; a run is fully
// reproducible from its seed set.
//
// Thread contract: an Rng is owned by one run (one thread) — parallel
// sweeps give every cell its own seed-derived streams and must never
// share one across cells (asserted in debug builds via ThreadAffinity;
// a shared stream would destroy both determinism and independence).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "util/thread_affinity.hpp"

namespace qv {

/// SplitMix64: used only to expand a user seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    affinity_.check();  // single-owner; compiles away under NDEBUG
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Exponential with the given mean (> 0).
  double next_exponential(double mean) {
    assert(mean > 0);
    double u = next_double();
    // Guard u == 0 (log(0) = -inf).
    while (u <= 0.0) u = next_double();
    return -mean * std::log(u);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  [[no_unique_address]] ThreadAffinity affinity_;
};

}  // namespace qv
