#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace qv {

void Flags::define_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  Def d;
  d.type = Type::kInt;
  d.help = help;
  d.int_value = default_value;
  defs_[name] = std::move(d);
}

void Flags::define_double(const std::string& name, double default_value,
                          const std::string& help) {
  Def d;
  d.type = Type::kDouble;
  d.help = help;
  d.double_value = default_value;
  defs_[name] = std::move(d);
}

void Flags::define_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  Def d;
  d.type = Type::kString;
  d.help = help;
  d.string_value = default_value;
  defs_[name] = std::move(d);
}

void Flags::define_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  Def d;
  d.type = Type::kBool;
  d.help = help;
  d.bool_value = default_value;
  defs_[name] = std::move(d);
}

bool Flags::set_value(const std::string& name, const std::string& value) {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    return false;
  }
  Def& d = it->second;
  try {
    switch (d.type) {
      case Type::kInt:
        d.int_value = std::stoll(value);
        break;
      case Type::kDouble:
        d.double_value = std::stod(value);
        break;
      case Type::kString:
        d.string_value = value;
        break;
      case Type::kBool:
        if (value == "true" || value == "1") {
          d.bool_value = true;
        } else if (value == "false" || value == "0") {
          d.bool_value = false;
        } else {
          std::fprintf(stderr, "bad boolean for --%s: %s\n", name.c_str(),
                       value.c_str());
          return false;
        }
        break;
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad value for --%s: %s\n", name.c_str(),
                 value.c_str());
    return false;
  }
  return true;
}

void Flags::print_usage(const char* prog) const {
  std::fprintf(stderr, "usage: %s [flags]\n", prog);
  for (const auto& [name, d] : defs_) {
    const char* type = "";
    std::string def;
    switch (d.type) {
      case Type::kInt:
        type = "int";
        def = std::to_string(d.int_value);
        break;
      case Type::kDouble:
        type = "double";
        def = std::to_string(d.double_value);
        break;
      case Type::kString:
        type = "string";
        def = d.string_value;
        break;
      case Type::kBool:
        type = "bool";
        def = d.bool_value ? "true" : "false";
        break;
    }
    std::fprintf(stderr, "  --%s (%s, default %s)\n      %s\n", name.c_str(),
                 type, def.c_str(), d.help.c_str());
  }
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      if (!set_value(body.substr(0, eq), body.substr(eq + 1))) return false;
      continue;
    }
    // --no-name for booleans.
    if (body.rfind("no-", 0) == 0) {
      auto it = defs_.find(body.substr(3));
      if (it != defs_.end() && it->second.type == Type::kBool) {
        it->second.bool_value = false;
        continue;
      }
    }
    auto it = defs_.find(body);
    if (it == defs_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", body.c_str());
      return false;
    }
    if (it->second.type == Type::kBool) {
      it->second.bool_value = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag --%s needs a value\n", body.c_str());
      return false;
    }
    if (!set_value(body, argv[++i])) return false;
  }
  return true;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return defs_.at(name).int_value;
}

double Flags::get_double(const std::string& name) const {
  return defs_.at(name).double_value;
}

const std::string& Flags::get_string(const std::string& name) const {
  return defs_.at(name).string_value;
}

bool Flags::get_bool(const std::string& name) const {
  return defs_.at(name).bool_value;
}

}  // namespace qv
