// Streaming summary statistics and exact-percentile samples.
//
// RunningStats keeps O(1) state (Welford) for mean/variance/min/max.
// Sample keeps every value for exact percentiles; experiment runs record
// at most a few hundred thousand flows, which fits comfortably.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qv {

/// O(1)-memory mean / variance / min / max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact quantiles.
class Sample {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }

  /// Exact quantile by linear interpolation, q in [0, 1]. 0 if empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& values() const { return values_; }
  void reserve(std::size_t n) { values_.reserve(n); }
  void clear();

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  RunningStats stats_;
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Render as a fixed-width ASCII bar chart (for example binaries).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace qv
