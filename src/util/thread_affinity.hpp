// Debug-only single-owner assertion for run-local components.
//
// The sweep engine (src/exec/) runs many Simulators in one process,
// one per worker thread. That is only sound because every stateful
// component — RNG streams, tracers, fault injectors, registries — is
// owned by exactly ONE run and therefore touched by exactly one thread
// at a time. ThreadAffinity makes that contract checkable: embed one
// (ideally [[no_unique_address]]) and call check() in the mutating
// entry points. The first check() binds the owner thread; any later
// check() from a different thread asserts.
//
// In NDEBUG builds the class is empty and check() compiles to nothing,
// so release hot paths pay zero. Copies are deliberately unbound (a
// copied RNG or tracer is a new object and may live on a new thread).
#pragma once

#ifndef NDEBUG
#include <atomic>
#include <cassert>
#include <thread>
#endif

namespace qv {

class ThreadAffinity {
 public:
  ThreadAffinity() = default;
  ThreadAffinity(const ThreadAffinity&) {}  // copies start unbound
  ThreadAffinity& operator=(const ThreadAffinity&) { return *this; }

  /// Assert the calling thread owns this object (first call binds).
  void check() const {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id unbound{};
    // Relaxed is enough: this guards a single-owner contract, not data;
    // the atomicity only keeps the checker itself TSan-clean when the
    // contract is being violated.
    if (!owner_.compare_exchange_strong(unbound, self,
                                        std::memory_order_relaxed)) {
      assert(unbound == self &&
             "single-owner object touched from a second thread: each "
             "sweep cell must build its own simulator/RNG/tracer");
    }
#endif
  }

  /// Release ownership (e.g. an object built on the main thread then
  /// handed off to a worker before first use needs nothing; one handed
  /// off AFTER use must rebind explicitly).
  void rebind() {
#ifndef NDEBUG
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
  }

#ifndef NDEBUG
 private:
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace qv
