// Simulation time: a strongly-typed nanosecond tick count.
//
// The whole simulator runs on integer nanoseconds to keep event ordering
// exact and reproducible (no floating-point drift between runs).
#pragma once

#include <cstdint>
#include <limits>

namespace qv {

/// Simulation timestamp / duration in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr TimeNs kTimeMax = std::numeric_limits<TimeNs>::max();

constexpr TimeNs nanoseconds(std::int64_t n) { return n; }
constexpr TimeNs microseconds(std::int64_t us) { return us * 1'000; }
constexpr TimeNs milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr TimeNs seconds(std::int64_t s) { return s * 1'000'000'000; }

constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_milliseconds(TimeNs t) {
  return static_cast<double>(t) * 1e-6;
}
constexpr double to_microseconds(TimeNs t) {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace qv
