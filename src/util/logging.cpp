#include "util/logging.hpp"

#include <cstdio>

namespace qv {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace qv
