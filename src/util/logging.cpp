#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace qv {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Per-thread capture sink; null = stderr. Thread-local so a sweep
/// worker's capture never sees another cell's records.
thread_local std::string* t_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view msg) {
  if (t_sink != nullptr) {
    t_sink->append("[");
    t_sink->append(level_name(level));
    t_sink->append("] ");
    t_sink->append(msg);
    t_sink->append("\n");
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

ScopedLogCapture::ScopedLogCapture(std::string* out) : prev_(t_sink) {
  t_sink = out;
}

ScopedLogCapture::~ScopedLogCapture() { t_sink = prev_; }

}  // namespace qv
