// Bandwidth and size units.
//
// Link rates are stored as bits-per-second (int64) and converted to
// per-byte serialization delays in integer nanoseconds. All conversions
// round up so a link never transmits faster than its configured rate.
#pragma once

#include <cassert>
#include <cstdint>

#include "util/time.hpp"

namespace qv {

/// Link rate in bits per second.
using BitsPerSec = std::int64_t;

constexpr BitsPerSec kbps(std::int64_t v) { return v * 1'000; }
constexpr BitsPerSec mbps(std::int64_t v) { return v * 1'000'000; }
constexpr BitsPerSec gbps(std::int64_t v) { return v * 1'000'000'000; }

constexpr std::int64_t kilobytes(std::int64_t v) { return v * 1'000; }
constexpr std::int64_t megabytes(std::int64_t v) { return v * 1'000'000; }

/// Time to serialize `bytes` onto a link of rate `rate`, rounded up.
constexpr TimeNs serialization_delay(std::int64_t bytes, BitsPerSec rate) {
  assert(rate > 0);
  const std::int64_t bits = bytes * 8;
  // ns = bits * 1e9 / rate, computed without overflow for realistic sizes
  // (bits < 2^43 for a 1 TB flow; 1e9 fits in 2^30; product < 2^73 would
  // overflow, so split into whole seconds + remainder).
  const std::int64_t whole = bits / rate;
  const std::int64_t rem = bits % rate;
  const std::int64_t frac = (rem * 1'000'000'000 + rate - 1) / rate;
  return whole * 1'000'000'000 + frac;
}

/// Bytes fully serializable in `t` at `rate` (rounded down).
constexpr std::int64_t bytes_in(TimeNs t, BitsPerSec rate) {
  return (t / 8) * rate / 1'000'000'000 +
         ((t % 8) * rate / 8) / 1'000'000'000;
}

}  // namespace qv
