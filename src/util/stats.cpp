#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace qv {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Sample::quantile(double q) const {
  if (values_.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= values_.size()) return values_.back();
  const double frac = pos - static_cast<double>(idx);
  return values_[idx] * (1.0 - frac) + values_[idx + 1] * frac;
}

void Sample::clear() {
  values_.clear();
  sorted_ = false;
  stats_ = RunningStats{};
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace qv
