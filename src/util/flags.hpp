// Tiny command-line flag parser for example and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so typos do not silently run
// the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qv {

class Flags {
 public:
  /// Parse argv. Returns false (and prints to stderr) on malformed or
  /// unknown flags; callers should exit non-zero.
  bool parse(int argc, char** argv);

  /// Declare flags before parse(); declaration supplies the default and
  /// the help text printed by `--help`.
  void define_int(const std::string& name, std::int64_t default_value,
                  const std::string& help);
  void define_double(const std::string& name, double default_value,
                     const std::string& help);
  void define_string(const std::string& name, const std::string& default_value,
                     const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if --help was requested; parse() already printed usage.
  bool help_requested() const { return help_requested_; }

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kInt, kDouble, kString, kBool };

  struct Def {
    Type type;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  bool set_value(const std::string& name, const std::string& value);
  void print_usage(const char* prog) const;

  std::map<std::string, Def> defs_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace qv
