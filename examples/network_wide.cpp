// Network-wide scheduling virtualization (paper §5, "Cross-device
// virtualization"): one Fleet keeps a per-switch Hypervisor on every
// leaf and spine of a fabric, deploys the shared policy all-or-nothing,
// and reacts to tenant activity seen ANYWHERE in the network.
//
//   $ ./network_wide
#include <cstdio>
#include <map>
#include <memory>

#include "netsim/topology.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/fleet.hpp"
#include "sched/fifo.hpp"
#include "sched/rank/edf.hpp"
#include "sched/rank/pfabric.hpp"

using namespace qv;
using namespace qv::qvisor;

int main() {
  auto pfabric = std::make_shared<sched::PFabricRanker>(1, 1 << 20);
  auto edf = std::make_shared<sched::EdfRanker>(microseconds(1), 1 << 12);

  std::vector<TenantSpec> tenants;
  tenants.push_back(TenantSpec::make(1, "frontend", pfabric));
  tenants.push_back(TenantSpec::make(2, "realtime", edf));
  tenants.push_back(TenantSpec::make(3, "batch", pfabric));

  const auto parsed = parse_policy("realtime >> frontend >> batch");
  Fleet fleet(std::move(tenants), *parsed.policy,
              std::make_shared<PifoBackend>());

  // One fleet member per switch of a 2x1 leaf-spine; host NICs keep
  // plain FIFOs (hosts are not QVISOR devices).
  netsim::Simulator sim;
  netsim::Network net(sim);
  std::map<std::string, std::size_t> switch_index;
  netsim::SchedulerFactory factory =
      [&](const netsim::PortContext& ctx)
      -> std::unique_ptr<sched::Scheduler> {
    if (ctx.from_host) return std::make_unique<sched::FifoQueue>();
    auto [it, inserted] = switch_index.try_emplace(ctx.node_name, 0);
    if (inserted) it->second = fleet.add_switch(ctx.node_name);
    return fleet.make_port_scheduler(it->second);
  };
  netsim::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = 2;
  topo_cfg.spines = 1;
  topo_cfg.hosts_per_leaf = 2;
  auto fabric = netsim::build_leaf_spine(net, topo_cfg, factory);

  const auto compiled = fleet.compile();
  if (!compiled.ok) {
    std::fprintf(stderr, "fleet compile failed: %s\n",
                 compiled.error.c_str());
    return 1;
  }
  std::printf("fleet: %zu switches under policy '%s'\n",
              fleet.switch_count(), fleet.policy().to_string().c_str());

  // Tenant "frontend" transmits only on leaf0's side; "batch" only
  // crosses the spine from leaf1.
  auto send = [&](std::size_t src, std::size_t dst, TenantId tenant,
                  Rank rank, TimeNs at) {
    sim.at(at, [&, src, dst, tenant, rank] {
      Packet p;
      p.flow = tenant * 100 + src;
      p.tenant = tenant;
      p.rank = rank;
      p.original_rank = rank;
      p.size_bytes = 1500;
      p.src = fabric.hosts[src]->id();
      p.dst = fabric.hosts[dst]->id();
      fabric.hosts[src]->send(p);
    });
  };
  for (int i = 0; i < 50; ++i) {
    send(0, 1, 1, 100, microseconds(10 * i));       // frontend, leaf0 local
    send(2, 0, 3, 5000, microseconds(10 * i + 3));  // batch, cross-fabric
  }
  sim.run_until(milliseconds(2));

  std::printf("\nper-switch tenant observations (packets):\n");
  for (const auto& [name, index] : switch_index) {
    const auto counts = fleet.hypervisor(index).per_tenant_packets();
    std::printf("  %-8s", name.c_str());
    for (const auto& [tenant, count] : std::map<TenantId, std::uint64_t>(
             counts.begin(), counts.end())) {
      std::printf("  tenant %u: %llu", tenant,
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  // Fleet-level adaptation: "realtime" never transmitted, so one tick
  // shrinks every switch's plan to the two active tenants — even on
  // switches that saw only ONE of them.
  RuntimeConfig rc;
  rc.activity_window = milliseconds(10);
  rc.min_reconfig_interval = 0;
  FleetController controller(fleet, rc);
  controller.tick(milliseconds(2));

  std::printf("\nafter fleet tick: active = {");
  for (const auto& name : controller.active_tenants()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(" }, every switch re-programmed:\n");
  for (const auto& [name, index] : switch_index) {
    const auto& plan = fleet.hypervisor(index).plan();
    std::printf("  %-8s plan: ", name.c_str());
    for (const auto& tp : plan.tenants) {
      std::printf("%s[%u,%u] ", tp.name.c_str(), tp.transform.out_min(),
                  tp.transform.out_max());
    }
    std::printf("\n");
  }
  std::printf("\nActivity observed on ANY switch keeps a tenant\n"
              "provisioned EVERYWHERE — the fleet is the §5 'network-\n"
              "wide perspective' on scheduling virtualization.\n");
  return 0;
}
