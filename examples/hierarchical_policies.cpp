// Hierarchical operator policies (paper §5, "Increasing specification
// expressivity"): the extended policy language with parentheses and
// weights, deployed EXACTLY on a PIFO tree and APPROXIMATELY flattened
// onto a single PIFO — with QVISOR reporting what the flattening loses.
//
//   $ ./hierarchical_policies
//   $ ./hierarchical_policies --policy="(gold >> silver) * 2 + bronze"
#include <cstdio>
#include <map>

#include "qvisor/hierarchy.hpp"
#include "qvisor/preprocessor.hpp"
#include "sched/pifo.hpp"
#include "util/flags.hpp"

using namespace qv;
using namespace qv::qvisor;

namespace {

TenantSpec tenant(TenantId id, const std::string& name) {
  TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {0, 99};
  return spec;
}

Packet labeled(TenantId t, Rank rank) {
  Packet p;
  p.tenant = t;
  p.rank = rank;
  p.original_rank = rank;
  p.size_bytes = 100;
  return p;
}

/// Feed an identical backlog through a scheduler and report the share
/// of the first N dequeues per tenant.
void drain_report(sched::Scheduler& q, const char* label) {
  for (int i = 0; i < 60; ++i) {
    q.enqueue(labeled(1, 5), 0);
    q.enqueue(labeled(2, 0), 0);
    q.enqueue(labeled(3, 0), 0);
  }
  std::map<TenantId, int> share;
  for (int i = 0; i < 90; ++i) {
    if (auto p = q.dequeue(0)) ++share[p->tenant];
  }
  std::printf("  %-28s first 90 dequeues: gold=%d silver=%d bronze=%d\n",
              label, share[1], share[2], share[3]);
  while (q.dequeue(0)) {
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("policy", "(gold >> silver) + bronze",
                      "hierarchical policy expression");
  if (!flags.parse(argc, argv)) return 2;
  if (flags.help_requested()) return 0;

  const auto parsed = parse_policy_expr(flags.get_string("policy"));
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error at %zu: %s\n", parsed.error_pos,
                 parsed.error.c_str());
    return 1;
  }
  std::printf("policy      : %s\n", parsed.expr->to_string().c_str());
  std::printf("flat form   : %s\n",
              to_flat_policy(*parsed.expr)
                  ? to_flat_policy(*parsed.expr)->to_string().c_str()
                  : "(none — truly hierarchical)");

  const std::vector<TenantSpec> tenants = {tenant(1, "gold"),
                                           tenant(2, "silver"),
                                           tenant(3, "bronze")};

  // --- exact: PIFO tree -------------------------------------------------
  TreeCompiler compiler;
  const auto tree = compiler.compile(*parsed.expr, tenants);
  if (!tree.ok()) {
    std::fprintf(stderr, "tree compile error: %s\n", tree.error.c_str());
    return 1;
  }
  std::printf("\nPIFO tree (exact deployment):\n%s",
              tree.spec->to_string().c_str());
  for (const auto& note : tree.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // --- approximate: flattened single PIFO --------------------------------
  const auto flat = flatten_to_plan(*parsed.expr, tenants);
  if (!flat.ok()) {
    std::fprintf(stderr, "flatten error: %s\n", flat.error.c_str());
    return 1;
  }
  std::printf("\nflattened bands (single-PIFO deployment):\n");
  for (const auto& tp : flat.plan->tenants) {
    std::printf("  %-8s -> ranks [%u, %u]\n", tp.name.c_str(),
                tp.transform.out_min(), tp.transform.out_max());
  }
  for (const auto& note : flat.approximations) {
    std::printf("  approximation: %s\n", note.c_str());
  }

  // --- behaviour comparison ------------------------------------------------
  std::printf("\nidentical backlog through both deployments (gold ranks 5, "
              "silver/bronze ranks 0):\n");
  auto tree_q = make_tree_scheduler(tree, tenants);
  drain_report(*tree_q, "pifo-tree (exact):");

  Preprocessor pre;
  pre.install(*flat.plan);
  sched::PifoQueue pifo;
  struct FlatQ final : sched::Scheduler {
    Preprocessor& pre;
    sched::PifoQueue& q;
    FlatQ(Preprocessor& p, sched::PifoQueue& pq) : pre(p), q(pq) {}
    bool enqueue(const Packet& p, TimeNs now) override {
      Packet copy = p;
      pre.process(copy);
      return q.enqueue(copy, now);
    }
    std::optional<Packet> dequeue(TimeNs now) override {
      return q.dequeue(now);
    }
    std::size_t size() const override { return q.size(); }
    std::int64_t buffered_bytes() const override {
      return q.buffered_bytes();
    }
    std::string name() const override { return "flat"; }
  } flat_q(pre, pifo);
  drain_report(flat_q, "flattened single PIFO:");

  std::printf("\nOn the tree, the (gold >> silver) pair is ONE sharer and\n"
              "splits the link 50/50 with bronze; flattened, bronze's rank-0\n"
              "packets overtake gold's rank-5 packets inside the shared\n"
              "band — exactly the approximation QVISOR reported above.\n");
  return 0;
}
