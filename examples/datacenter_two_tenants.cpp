// The paper's evaluation scenario (§4) at a single operating point: a
// leaf-spine data center where a data-mining tenant (pFabric) and a
// CBR tenant (EDF) share the fabric under a chosen configuration.
//
//   $ ./datacenter_two_tenants --scheme=qvisor-pfabric-first --load=0.6
//   $ ./datacenter_two_tenants --scheme=fifo --load=0.6 --full
#include <cstdio>
#include <map>
#include <string>

#include "experiments/fig4.hpp"
#include "util/flags.hpp"

using namespace qv;
using namespace qv::experiments;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string(
      "scheme", "qvisor-pfabric-first",
      "one of: fifo, pifo-naive, pifo-ideal, qvisor-edf-first, "
      "qvisor-share, qvisor-pfabric-first");
  flags.define_double("load", 0.6, "pFabric tenant load on access links");
  flags.define_int("seed", 1, "rng seed");
  flags.define_bool("full", false,
                    "paper-scale topology (144 hosts) instead of the "
                    "scaled-down default (16 hosts)");
  flags.define_bool("reliable", false,
                    "pFabric transport with small priority-drop buffers, "
                    "ACKs and retransmissions (the paper's Netbench "
                    "setup) instead of generous buffers");
  if (!flags.parse(argc, argv)) return 2;
  if (flags.help_requested()) return 0;

  const std::map<std::string, Fig4Scheme> schemes = {
      {"fifo", Fig4Scheme::kFifoBoth},
      {"pifo-naive", Fig4Scheme::kPifoNaive},
      {"pifo-ideal", Fig4Scheme::kPifoIdeal},
      {"qvisor-edf-first", Fig4Scheme::kQvisorEdfOverPfabric},
      {"qvisor-share", Fig4Scheme::kQvisorShare},
      {"qvisor-pfabric-first", Fig4Scheme::kQvisorPfabricOverEdf},
  };
  const auto it = schemes.find(flags.get_string("scheme"));
  if (it == schemes.end()) {
    std::fprintf(stderr, "unknown scheme '%s'\n",
                 flags.get_string("scheme").c_str());
    return 2;
  }

  Fig4Config cfg =
      flags.get_bool("full") ? fig4_paper_config() : fig4_scaled_config();
  cfg.scheme = it->second;
  cfg.load = flags.get_double("load");
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.reliable = flags.get_bool("reliable");

  std::printf("scenario : %s\n", fig4_scheme_name(cfg.scheme));
  std::printf("topology : %zu leaves x %zu spines, %zu hosts, "
              "%.0f/%.0f Gb/s\n",
              cfg.topo.leaves, cfg.topo.spines, cfg.topo.total_hosts(),
              static_cast<double>(cfg.topo.access_rate) / 1e9,
              static_cast<double>(cfg.topo.fabric_rate) / 1e9);
  std::printf("load     : %.2f (+ %zu CBR flows at %.1f Gb/s under EDF)\n\n",
              cfg.load, cfg.cbr_flows,
              static_cast<double>(cfg.cbr_rate) / 1e9);

  const Fig4Result r = run_fig4(cfg);

  std::printf("pFabric tenant, flows started in the measurement window:\n");
  std::printf("  small flows (0, 100 KB): mean FCT %8.3f ms  "
              "(n=%zu completed, %zu censored; censoring-aware mean "
              "%.3f ms, p99 %.3f ms)\n",
              r.mean_small_ms, r.small_flows, r.small_incomplete,
              r.mean_small_lb_ms, r.p99_small_ms);
  std::printf("  big flows  [1 MB, inf) : mean FCT %8.2f ms  "
              "(n=%zu completed, %zu censored; censoring-aware mean "
              "%.2f ms)\n",
              r.mean_large_ms, r.large_flows, r.large_incomplete,
              r.mean_large_lb_ms);
  std::printf("  all sizes              : mean FCT %8.3f ms (n=%zu)\n",
              r.mean_all_ms, r.all_flows);
  std::printf("\nEDF tenant: %.1f%% of packet deadlines met\n",
              100.0 * r.edf_deadline_met);
  std::printf("drops: %llu   simulator events: %llu\n",
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.events));
  return 0;
}
