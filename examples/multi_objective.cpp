// Multi-objective scheduling (paper §5): one tenant's traffic has BOTH
// an FCT objective and per-packet deadlines. Three rank functions
// compete on the same workload behind one bottleneck:
//
//   pfabric               — pure SRPT (best FCT, deadline-blind)
//   edf                   — pure earliest-deadline (meets deadlines,
//                           poor FCT)
//   lex(urgency, srpt)    — coarse deadline classes decided first,
//                           SRPT inside each class (beats pure EDF on
//                           BOTH axes)
//   blend 30/70           — weighted mix: an intermediate Pareto point
//
//   $ ./multi_objective
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "netsim/network.hpp"
#include "netsim/topology.hpp"
#include "sched/pifo.hpp"
#include "sched/rank/composite.hpp"
#include "sched/rank/edf.hpp"
#include "sched/rank/pfabric.hpp"
#include "telemetry/fct_tracker.hpp"
#include "trafficgen/host_source.hpp"
#include "util/random.hpp"
#include "workload/cdf.hpp"

using namespace qv;

namespace {

struct Outcome {
  double mean_fct_ms = 0;
  double deadline_met = 0;
  std::size_t flows = 0;
};

Outcome run(const sched::RankerPtr& ranker, std::uint64_t seed) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  auto topo = netsim::build_single_switch(
      net, 8, gbps(1), microseconds(1), [](const netsim::PortContext&) {
        return std::make_unique<sched::PifoQueue>();
      });

  telemetry::FctTracker fct;
  telemetry::DeadlineTracker deadlines;
  for (auto* h : topo.hosts) {
    h->set_sink([&](const Packet& p) {
      fct.on_packet_delivered(p, sim.now());
      deadlines.on_packet_delivered(p, sim.now());
    });
  }

  // Every flow must fully arrive within 30 ms of its START: big flows
  // have TIGHT deadlines relative to their size, so SRPT (which starves
  // them) misses exactly where EDF delivers — a real objective conflict.
  std::unordered_map<FlowId, TimeNs> flow_deadline;
  std::vector<std::unique_ptr<trafficgen::HostSource>> sources;
  for (auto* h : topo.hosts) {
    sources.push_back(std::make_unique<trafficgen::HostSource>(
        sim, *h, 1, ranker, gbps(1)));
    sources.back()->set_decorator([&flow_deadline](Packet& p, TimeNs) {
      p.deadline = flow_deadline.at(p.flow);
    });
  }

  // All hosts send flows with sizes from the web-search distribution
  // and a per-flow deadline proportional to its size, converging on
  // host 0 (incast bottleneck).
  const workload::Cdf cdf = workload::web_search_cdf(2e6);
  Rng rng(seed);
  FlowId next_flow = 1;
  for (TimeNs t = 0; t < milliseconds(50); t += microseconds(2000)) {
    const auto src = 1 + rng.next_below(7);
    const auto size = static_cast<std::int64_t>(cdf.sample(rng));
    const FlowId flow = next_flow++;
    sim.at(t, [&, src, size, flow] {
      fct.on_flow_start(flow, 1, size, sim.now());
      flow_deadline[flow] = sim.now() + milliseconds(30);
      sources[src]->start_flow(flow, topo.hosts[0]->id(), size);
    });
  }
  sim.run_until(milliseconds(250));

  Outcome out;
  telemetry::FlowFilter all;
  const auto sample = fct.fct_ms(all);
  out.mean_fct_ms = sample.mean();
  out.flows = sample.count();
  out.deadline_met = deadlines.met_fraction();
  return out;
}

}  // namespace

int main() {
  // Bounds tight to the actual workload (2 MB flows, 30 ms deadlines)
  // so composition weights are meaningful.
  auto pfabric = std::make_shared<sched::PFabricRanker>(1, 2'000'001);
  auto edf = std::make_shared<sched::EdfRanker>(microseconds(10), 3001);
  // Coarse deadline classes (5 ms buckets) decided first; SRPT breaks
  // ties inside each urgency class.
  auto coarse_edf =
      std::make_shared<sched::EdfRanker>(milliseconds(5), 7);

  const std::vector<std::pair<std::string, sched::RankerPtr>> contenders = {
      {"pfabric (pure SRPT)", pfabric},
      {"edf (pure deadline)", edf},
      {"lex(urgency class, srpt)",
       std::make_shared<sched::LexicographicRanker>(coarse_edf, pfabric,
                                                    4096)},
      {"blend 30% srpt, 70% edf",
       std::make_shared<sched::WeightedRanker>(
           std::vector<sched::WeightedRanker::Component>{{pfabric, 0.3},
                                                         {edf, 0.7}},
           1u << 16)},
  };

  std::printf("%-26s | %-14s | %s\n", "rank function", "mean FCT (ms)",
              "deadlines met");
  for (const auto& [name, ranker] : contenders) {
    const Outcome out = run(ranker, 11);
    std::printf("%-26s | %14.3f | %12.1f%%  (n=%zu flows)\n", name.c_str(),
                out.mean_fct_ms, 100.0 * out.deadline_met, out.flows);
  }
  std::printf(
      "\nComposite rank functions trade the two objectives against each\n"
      "other without touching the scheduler — §5's multi-objective\n"
      "direction expressed inside QVISOR's existing rank abstraction.\n");
  return 0;
}
