// QVISOR on existing schedulers (paper §3.4): the same tenant policies
// and operator specification deployed onto five different hardware
// targets, from an ideal PIFO down to a plain FIFO.
//
// For each backend the example prints the capability descriptor, the
// guarantees report, and a measured ordering-quality score (fraction of
// adjacent dequeue pairs in correct plan order) for an identical
// arrival trace — showing how the guarantees degrade with the hardware.
//
//   $ ./existing_scheduler
#include <cstdio>
#include <memory>
#include <vector>

#include "qvisor/backend.hpp"
#include "qvisor/qvisor.hpp"
#include "util/random.hpp"

using namespace qv;
using namespace qv::qvisor;

namespace {

TenantSpec tenant(TenantId id, const std::string& name, Rank lo, Rank hi) {
  TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {lo, hi};
  return spec;
}

struct Quality {
  double ordered_pairs = 0;   ///< adjacent dequeues in rank order
  double tier_violations = 0; ///< lower-tier packet before higher-tier
};

Quality measure(Hypervisor& hv) {
  auto port = hv.make_port_scheduler();
  Rng rng(42);

  // Identical arrival trace across backends: bursts of 64, drain 32.
  std::vector<Packet> out;
  for (int round = 0; round < 64; ++round) {
    for (int i = 0; i < 64; ++i) {
      Packet p;
      p.tenant = 1 + static_cast<TenantId>(rng.next_below(3));
      p.rank = static_cast<Rank>(rng.next_below(100));
      p.original_rank = p.rank;
      p.size_bytes = 1500;
      port->enqueue(p, round);
    }
    for (int i = 0; i < 32; ++i) {
      if (auto p = port->dequeue(round)) out.push_back(*p);
    }
  }
  while (auto p = port->dequeue(0)) out.push_back(*p);

  Quality q;
  std::size_t ordered = 0;
  std::size_t tier_bad = 0;
  const auto tier_of = [&](const Packet& p) {
    const auto* tp = hv.plan().find(p.tenant);
    return tp != nullptr ? tp->tier : std::size_t{99};
  };
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].rank <= out[i + 1].rank) ++ordered;
  }
  // Tier violations: count dequeues of a lower tier while a higher tier
  // packet arrived earlier and is still buffered — approximated here by
  // adjacent-pair tier inversions.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (tier_of(out[i]) > tier_of(out[i + 1])) ++tier_bad;
  }
  q.ordered_pairs = static_cast<double>(ordered) /
                    static_cast<double>(out.size() - 1);
  q.tier_violations = static_cast<double>(tier_bad) /
                      static_cast<double>(out.size() - 1);
  return q;
}

}  // namespace

int main() {
  const std::vector<TenantSpec> tenants = {
      tenant(1, "gold", 0, 99),
      tenant(2, "silver", 0, 99),
      tenant(3, "bronze", 0, 99),
  };
  const auto parsed = parse_policy("gold >> silver > bronze");
  std::printf("policy: %s\n\n", parsed.policy->to_string().c_str());

  const std::vector<BackendPtr> backends = {
      std::make_shared<PifoBackend>(),
      std::make_shared<SpPifoBackend>(8),
      std::make_shared<StrictPriorityBackend>(8),
      std::make_shared<AifoBackend>(4 * 1500 * 64),
      std::make_shared<FifoBackend>(),
  };

  for (const auto& backend : backends) {
    Hypervisor hv(tenants, *parsed.policy, backend);
    const auto compiled = hv.compile();
    std::printf("=== backend: %-16s %s\n", backend->name().c_str(),
                backend->capabilities().describe().c_str());
    if (!compiled.ok) {
      std::printf("    compile failed: %s\n", compiled.error.c_str());
      continue;
    }
    for (const auto& g : compiled.guarantees) {
      std::printf("    guarantee: %s\n", g.c_str());
    }
    const Quality q = measure(hv);
    std::printf("    measured : %.1f%% adjacent pairs in rank order, "
                "%.2f%% tier inversions\n\n",
                100.0 * q.ordered_pairs, 100.0 * q.tier_violations);
  }

  std::printf(
      "The PIFO backend is exact; SP-PIFO approximates it; the strict-\n"
      "priority backend keeps '>>' exact through dedicated queues but\n"
      "coarsens intra-tier order; AIFO only biases admission; FIFO\n"
      "enforces nothing — matching each backend's printed guarantees.\n");
  return 0;
}
