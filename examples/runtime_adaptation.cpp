// The paper's Fig. 2 timeline: tenants activate and deactivate over
// time and QVISOR's runtime controller re-synthesizes the joint policy
// as the active set changes (§2, Idea 2).
//
// Phase 1 (0-20 ms) : T1 (interactive/pFabric) + T2 (deadline/EDF)
// Phase 2 (20-40 ms): T3 (background/Fair Queuing) alone
//
//   $ ./runtime_adaptation
#include <cstdio>
#include <memory>

#include "netsim/network.hpp"
#include "netsim/topology.hpp"
#include "qvisor/backend.hpp"
#include "qvisor/qvisor.hpp"
#include "qvisor/runtime.hpp"
#include "sched/rank/edf.hpp"
#include "sched/rank/pfabric.hpp"
#include "sched/rank/stfq.hpp"
#include "trafficgen/cbr_source.hpp"
#include "trafficgen/host_source.hpp"

using namespace qv;
using namespace qv::qvisor;

int main() {
  netsim::Simulator sim;

  auto pfabric = std::make_shared<sched::PFabricRanker>(1, 1 << 24);
  auto edf = std::make_shared<sched::EdfRanker>(microseconds(1), 1 << 16);
  auto fq = std::make_shared<sched::StfqRanker>(1, 1 << 16);

  std::vector<TenantSpec> tenants;
  tenants.push_back(TenantSpec::make(1, "interactive", pfabric));
  tenants.push_back(TenantSpec::make(2, "deadline", edf));
  tenants.push_back(TenantSpec::make(3, "background", fq));

  const auto parsed =
      parse_policy("interactive + deadline >> background");
  Hypervisor hv(std::move(tenants), *parsed.policy,
                std::make_shared<PifoBackend>());
  hv.compile();

  netsim::Network net(sim);
  auto topo = netsim::build_single_switch(
      net, 4, gbps(1), microseconds(1),
      [&](const netsim::PortContext&) { return hv.make_port_scheduler(); });

  // Phase 1 traffic.
  trafficgen::HostSource interactive(sim, *topo.hosts[0], 1, pfabric,
                                     gbps(1));
  trafficgen::CbrSource deadline(sim, *topo.hosts[1], topo.hosts[2]->id(),
                                 900, 2, edf, mbps(300), milliseconds(2),
                                 0, milliseconds(20));
  for (TimeNs t = milliseconds(1); t < milliseconds(18);
       t += milliseconds(4)) {
    sim.at(t, [&] {
      interactive.start_flow(static_cast<FlowId>(sim.now()),
                             topo.hosts[3]->id(), 50'000);
    });
  }

  // Phase 2 traffic.
  trafficgen::HostSource background(sim, *topo.hosts[2], 3, fq, gbps(1));
  sim.at(milliseconds(20), [&] {
    background.start_flow(2000, topo.hosts[0]->id(), 2'500'000);
  });

  RuntimeConfig rc;
  rc.activity_window = milliseconds(3);
  rc.min_reconfig_interval = 0;
  RuntimeController controller(hv, rc);

  std::printf("%-8s %-28s %s\n", "t (ms)", "active tenants", "plan");
  for (TimeNs t = milliseconds(1); t <= milliseconds(38);
       t += milliseconds(1)) {
    sim.at(t, [&, t] {
      const bool adapted = controller.tick(t);
      if (!adapted) return;
      std::string active;
      for (const auto& name : controller.active_tenants()) {
        if (!active.empty()) active += ",";
        active += name;
      }
      std::printf("%-8.0f %-28s %s   [re-synthesized, #%llu]\n",
                  to_milliseconds(t), active.c_str(),
                  hv.plan().policy.to_string().c_str(),
                  static_cast<unsigned long long>(controller.adaptations()));
      for (const auto& tp : hv.plan().tenants) {
        std::printf("         - %-12s -> ranks [%u, %u]\n",
                    tp.name.c_str(), tp.transform.out_min(),
                    tp.transform.out_max());
      }
    });
  }

  sim.run_until(milliseconds(40));

  std::printf("\ntotal adaptations: %llu  (compile count %llu)\n",
              static_cast<unsigned long long>(controller.adaptations()),
              static_cast<unsigned long long>(hv.compile_count()));
  std::printf("When interactive+deadline go quiet at t=20ms, the\n"
              "controller hands the whole rank space to background —\n"
              "the multiplexing-over-time insight of paper §1.\n");
  return 0;
}
