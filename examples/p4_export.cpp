// Compile a QVISOR plan into a P4_16 program (paper §3.4 / §5
// "Compiling scheduling policies into hardware").
//
//   $ ./p4_export                              # print to stdout
//   $ ./p4_export --policy="gold >> silver + bronze" --out=qvisor.p4
#include <cstdio>
#include <fstream>

#include "qvisor/p4gen.hpp"
#include "util/flags.hpp"

using namespace qv;
using namespace qv::qvisor;

namespace {

TenantSpec tenant(TenantId id, const std::string& name, Rank lo, Rank hi) {
  TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {lo, hi};
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("policy", "gold >> silver + bronze",
                      "operator policy (flat grammar)");
  flags.define_string("out", "", "output file (empty = stdout)");
  flags.define_int("levels", 64, "quantization levels per band");
  flags.define_int("table-budget", 1024, "max table entries per tenant");
  if (!flags.parse(argc, argv)) return 2;
  if (flags.help_requested()) return 0;

  const auto parsed = parse_policy(flags.get_string("policy"));
  if (!parsed.ok()) {
    std::fprintf(stderr, "policy error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::vector<TenantSpec> tenants;
  TenantId next_id = 1;
  for (const auto& name : parsed.policy->tenant_names()) {
    tenants.push_back(tenant(next_id, name, 0, 1 << 16));
    ++next_id;
  }

  SynthesizerConfig cfg;
  cfg.levels_per_group =
      static_cast<std::uint32_t>(flags.get_int("levels"));
  Synthesizer synth(cfg);
  auto plan = synth.synthesize(tenants, *parsed.policy);
  if (!plan.ok()) {
    std::fprintf(stderr, "synthesis error: %s\n", plan.error.c_str());
    return 1;
  }

  P4GenOptions options;
  options.max_entries_per_tenant =
      static_cast<std::size_t>(flags.get_int("table-budget"));
  const auto result = generate_p4(*plan.plan, options);

  std::fprintf(stderr, "policy   : %s\n",
               parsed.policy->to_string().c_str());
  std::fprintf(stderr, "entries  : %zu range-match rules across %zu "
               "tenants\n", result.entries.size(), tenants.size());
  for (const auto& note : result.notes) {
    std::fprintf(stderr, "note     : %s\n", note.c_str());
  }

  const std::string out_path = flags.get_string("out");
  if (out_path.empty()) {
    std::fwrite(result.program.data(), 1, result.program.size(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << result.program;
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", out_path.c_str(),
                 result.program.size());
  }
  return 0;
}
