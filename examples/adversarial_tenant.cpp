// Adversarial-workload detection and quarantine (paper §2, Idea 2:
// "prevent adversarial workloads from potentially malicious tenants").
//
// Tenant "mallory" declares ranks in [0, 100] but stamps everything
// with rank 0 to jump the queue. The monitor flags the lie; the runtime
// controller demotes mallory to a strictly-lowest quarantine tier.
//
//   $ ./adversarial_tenant
#include <cstdio>
#include <memory>

#include "qvisor/backend.hpp"
#include "qvisor/qvisor.hpp"
#include "qvisor/runtime.hpp"

using namespace qv;
using namespace qv::qvisor;

namespace {

TenantSpec tenant(TenantId id, const std::string& name, Rank lo, Rank hi) {
  TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {lo, hi};
  return spec;
}

Packet labeled(TenantId t, Rank rank) {
  Packet p;
  p.tenant = t;
  p.rank = rank;
  p.original_rank = rank;
  p.size_bytes = 1500;
  return p;
}

void show_plan(const Hypervisor& hv, const char* when) {
  std::printf("%s\n", when);
  for (const auto& tp : hv.plan().tenants) {
    std::printf("  %-8s tier %zu: ranks [%u, %u]\n", tp.name.c_str(),
                tp.tier, tp.transform.out_min(), tp.transform.out_max());
  }
}

}  // namespace

int main() {
  std::vector<TenantSpec> tenants = {
      tenant(1, "alice", 50, 150),
      tenant(2, "mallory", 0, 100),
  };
  const auto parsed = parse_policy("mallory + alice");
  Hypervisor hv(std::move(tenants), *parsed.policy,
                std::make_shared<PifoBackend>());
  hv.compile();
  show_plan(hv, "initial plan (mallory and alice share):");

  auto port = hv.make_port_scheduler();
  RuntimeConfig cfg;
  cfg.activity_window = milliseconds(100);
  cfg.min_reconfig_interval = 0;
  cfg.quarantine_adversarial = true;
  RuntimeController controller(hv, cfg);

  // Both tenants transmit; mallory's ranks sit far outside its declared
  // bounds (every packet claims rank 9999).
  for (int i = 0; i < 500; ++i) {
    port->enqueue(labeled(1, 50 + static_cast<Rank>(i % 100)),
                  microseconds(i));
    port->enqueue(labeled(2, 9999), microseconds(i));
  }
  while (port->dequeue(milliseconds(1))) {
  }

  const auto& obs = hv.monitor().observation(2);
  std::printf("\nmonitor after 500 packets/tenant:\n");
  std::printf("  mallory: %llu bounds violations of %llu packets -> %s\n",
              static_cast<unsigned long long>(obs.bounds_violations),
              static_cast<unsigned long long>(obs.packets),
              hv.monitor().verdict(2) == Verdict::kAdversarial
                  ? "ADVERSARIAL"
                  : "clean");
  std::printf("  alice  : %llu bounds violations -> %s\n",
              static_cast<unsigned long long>(
                  hv.monitor().observation(1).bounds_violations),
              hv.monitor().verdict(1) == Verdict::kClean ? "clean"
                                                         : "flagged");

  const bool adapted = controller.tick(milliseconds(1));
  std::printf("\ncontroller tick -> %s (%llu quarantine action)\n",
              adapted ? "re-synthesized" : "no change",
              static_cast<unsigned long long>(controller.quarantines()));
  show_plan(hv, "plan after quarantine (mallory demoted below alice):");
  return 0;
}
