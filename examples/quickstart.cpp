// Quickstart: the paper's Fig. 3 example, end to end.
//
// Three tenants program their scheduling policies (pFabric, EDF, Fair
// Queuing) as rank functions; the operator writes "T1 >> T2 + T3";
// QVISOR synthesizes rank transformations, verifies them statically,
// and the pre-processor + PIFO reproduce the figure's output sequence.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "qvisor/backend.hpp"
#include "qvisor/qvisor.hpp"

using namespace qv;
using namespace qv::qvisor;

namespace {

TenantSpec tenant(TenantId id, const std::string& name, Rank lo, Rank hi) {
  TenantSpec spec;
  spec.id = id;
  spec.name = name;
  spec.declared_bounds = {lo, hi};
  return spec;
}

Packet labeled(TenantId t, Rank rank) {
  Packet p;
  p.tenant = t;
  p.rank = rank;
  p.original_rank = rank;
  p.size_bytes = 1500;
  return p;
}

}  // namespace

int main() {
  // --- inputs (paper §3.1) --------------------------------------------
  // Tenants: the tuple {traffic subset, scheduling algorithm}; here the
  // algorithms are represented by the rank ranges of Fig. 3.
  std::vector<TenantSpec> tenants = {
      tenant(1, "T1", 7, 9),  // pFabric ranks {7,8,9}
      tenant(2, "T2", 1, 3),  // EDF ranks {1,3}
      tenant(3, "T3", 3, 5),  // Fair Queuing ranks {3,5}
  };

  // Operator policy: T1 strictly above; T2 and T3 share.
  const auto parsed = parse_policy("T1 >> T2 + T3");
  if (!parsed.ok()) {
    std::fprintf(stderr, "policy error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("operator policy : %s\n", parsed.policy->to_string().c_str());

  // --- synthesize + verify (paper §3.2 + §2 Idea 2) ---------------------
  SynthesizerConfig cfg;
  cfg.levels_per_group = 3;  // Fig. 3 uses 3-level bands
  cfg.share_stagger = 1;     // and staggers the sharing tenants

  Hypervisor hv(tenants, *parsed.policy,
                std::make_shared<PifoBackend>(), cfg);
  const auto compiled = hv.compile();
  if (!compiled.ok) {
    std::fprintf(stderr, "compile error: %s\n", compiled.error.c_str());
    return 1;
  }

  std::printf("\nsynthesized transforms:\n");
  for (const auto& tp : hv.plan().tenants) {
    std::printf("  %-3s tier %zu: %s\n", tp.name.c_str(), tp.tier,
                tp.transform.to_string().c_str());
  }

  std::printf("\nstatic analysis:\n%s", compiled.report.to_string().c_str());
  std::printf("backend guarantees:\n");
  for (const auto& g : compiled.guarantees) {
    std::printf("  - %s\n", g.c_str());
  }

  // --- data plane (paper §3.3) -----------------------------------------
  auto port = hv.make_port_scheduler();

  // The figure's arrival sequence.
  const std::vector<std::pair<TenantId, Rank>> arrivals = {
      {2, 1}, {3, 3}, {1, 8}, {2, 3}, {3, 5}, {1, 7}, {1, 9},
  };
  std::printf("\narrivals (tenant:rank) : ");
  for (const auto& [t, r] : arrivals) {
    std::printf("T%u:%u ", t, r);
    port->enqueue(labeled(t, r), 0);
  }

  std::printf("\npifo output            : ");
  while (auto p = port->dequeue(0)) {
    std::printf("T%u:%u(->%u) ", p->tenant, p->original_rank, p->rank);
  }
  std::printf("\n\nT1 drains first in rank order; T2 and T3 interleave "
              "fairly — exactly Fig. 3.\n");
  return 0;
}
